//! Quickstart: run one workload on the baseline and on Avatar, and print
//! the headline numbers the paper reports — speedup, speculation accuracy
//! and coverage, and the Fig 16 outcome mix.
//!
//! Usage: `cargo run --release --example quickstart [ABBR] [SCALE]`
//! (default: SSSP at scale 0.25 on a reduced 16-SM GPU so it finishes in
//! seconds).

use avatar_gpu::core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_gpu::workloads::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let abbr = args.next().unwrap_or_else(|| "SSSP".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let workload = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload '{abbr}'; known: Table III + ML abbreviations");
        std::process::exit(1);
    });
    let opts = RunOptions { scale, sms: Some(16), warps: Some(32), ..RunOptions::default() };

    println!(
        "workload {} ({}, class {:?}, {:.0}MB working set at scale {scale})",
        workload.abbr,
        workload.name,
        workload.class,
        workload.scaled_working_set(scale) as f64 / (1 << 20) as f64,
    );

    let base = run(&workload, SystemConfig::Baseline, &opts);
    println!(
        "baseline: {} cycles, {} loads, L1 TLB miss rate {:.1}%, {} page walks",
        base.cycles,
        base.loads,
        base.l1_tlb_miss_rate() * 100.0,
        base.page_walks
    );

    let avatar = run(&workload, SystemConfig::Avatar, &opts);
    let o = &avatar.outcomes;
    println!(
        "avatar:   {} cycles  =>  speedup {:.3}x",
        avatar.cycles,
        speedup(&base, &avatar)
    );
    println!(
        "  speculation: accuracy {:.1}%, coverage {:.1}% ({} attempts)",
        avatar.spec_accuracy() * 100.0,
        avatar.spec_coverage() * 100.0,
        avatar.speculations
    );
    println!(
        "  outcomes: Fast_Translation {:.1}%  L1D_hit {:.1}%  L1D_merge {:.1}%  L1D_miss {:.1}%",
        o.fraction(o.fast_translation) * 100.0,
        o.fraction(o.l1d_hit) * 100.0,
        o.fraction(o.l1d_merge) * 100.0,
        o.fraction(o.l1d_miss) * 100.0
    );
    println!(
        "  EAF: {} fills, {} early releases, {} aborted walks, {} cross-SM fills",
        avatar.eaf_fills, avatar.eaf_releases, avatar.walks_aborted, avatar.eaf_cross_sm_fills
    );
    println!(
        "  page walks {} (baseline {}), DRAM traffic {:.1}MB (baseline {:.1}MB)",
        avatar.page_walks,
        base.page_walks,
        avatar.dram_bytes() as f64 / (1 << 20) as f64,
        base.dram_bytes() as f64 / (1 << 20) as f64
    );
}
