//! Memory oversubscription (paper §IV-B6): size GPU memory below the
//! working set and watch chunk evictions erode the prior techniques'
//! TLB reach while Avatar's speculation stays effective.
//!
//! Usage: `cargo run --release --example oversubscription [ABBR] [FACTOR]`
//! (default SPMV at 130%).

use avatar_gpu::core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_gpu::workloads::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let abbr = args.next().unwrap_or_else(|| "SPMV".to_string());
    let factor: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.3);

    let workload = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload '{abbr}'");
        std::process::exit(1);
    });
    let base_opts = RunOptions { scale: 0.5, sms: Some(16), warps: Some(32), ..RunOptions::default() };
    let over_opts = RunOptions { oversubscription: Some(factor), ..base_opts.clone() };

    println!(
        "workload {} ({:.0}MB working set, {}% oversubscription)\n",
        workload.abbr,
        workload.scaled_working_set(base_opts.scale) as f64 / (1 << 20) as f64,
        (factor * 100.0) as u32
    );

    for (label, opts) in [("fits in memory", &base_opts), ("oversubscribed", &over_opts)] {
        let baseline = run(&workload, SystemConfig::Baseline, opts);
        println!(
            "--- {label}: baseline {} cycles, {} chunk evictions, {} TLB shootdowns",
            baseline.cycles, baseline.chunks_evicted, baseline.tlb_shootdowns
        );
        for cfg in [SystemConfig::Promotion, SystemConfig::Colt, SystemConfig::Avatar] {
            let s = run(&workload, cfg, opts);
            println!(
                "    {:<10} speedup {:.3}x  (promotions {}, splinters {}, spec accuracy {:.0}%)",
                cfg.label(),
                speedup(&baseline, &s),
                s.promotions,
                s.splinters,
                s.spec_accuracy() * 100.0
            );
        }
    }
    println!("\npaper: under oversubscription Avatar keeps a >=14.3% lead over prior techniques");
}
