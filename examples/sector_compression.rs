//! CAVA's compression substrate, end to end on real bytes:
//! compress 32-byte sectors with BPC, embed page information in the
//! reclaimed space, and validate a speculative translation the way the
//! memory controller does.
//!
//! Usage: `cargo run --example sector_compression`

use avatar_gpu::bpc::{bpc, classify, embed_sector, inspect, PageInfo, Permissions, SectorClass};
use avatar_gpu::workloads::Workload;

fn main() {
    // A structured sector from the GEMM content model (shared-exponent
    // floats) and a high-entropy one from SC.
    let gemm = Workload::by_abbr("GEMM").expect("Table III").content();
    let sc = Workload::by_abbr("SC").expect("Table III").content();

    for (name, bytes) in [("GEMM sector", gemm.bytes(42)), ("SC sector", sc.bytes(12345))] {
        let compressed = bpc::compress(&bytes);
        println!(
            "{name}: {} bits ({} bytes), ratio {:.2}, fits 22B: {}",
            compressed.size_bits(),
            compressed.size_bytes(),
            compressed.ratio(),
            compressed.fits(176),
        );
        assert_eq!(bpc::decompress(&compressed), bytes, "codec must be exact");
    }

    // Embed page info into a compressible sector: the stored 32 bytes now
    // carry the VPN, and the Attaché CID signature marks them compressed.
    let data = gemm.bytes(42);
    let info = PageInfo::new(0xAB_CDEF, Permissions::READ_WRITE, 1);
    let stored = embed_sector(&data, info);
    println!(
        "\nstored sector class: {:?} (compressed: {})",
        classify(stored.bytes()),
        stored.is_compressed()
    );

    // The rapid-validation check: compare the embedded VPN with the
    // requested one.
    let view = inspect(stored.bytes()).expect("carries page info");
    for requested in [0xAB_CDEFu64, 0xAB_CDE0] {
        let verdict = if view.page_info.vpn == requested { "VALIDATED" } else { "MIS-SPECULATION" };
        println!("request vpn {requested:#x} vs embedded {:#x} -> {verdict}", view.page_info.vpn);
    }
    assert_eq!(view.data, data, "decompressed payload matches original data");

    // Incompressible sectors stay raw and carry no page info: CAVA falls
    // back to the background page walk for those.
    let raw = embed_sector(&sc.bytes(12345), info);
    println!(
        "\nincompressible sector class: {:?} (page info: {:?})",
        classify(raw.bytes()),
        raw.page_info()
    );
    assert_ne!(classify(raw.bytes()), SectorClass::Compressed);
}
