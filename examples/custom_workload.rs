//! Bring your own kernel: implement `WarpProgram` (the address stream) and
//! `SectorCompression` (the data contents) and run it through the full
//! Avatar system — the same way the built-in Table III suite plugs in.
//!
//! The example models a tiled 2D convolution: each warp reads an input
//! tile, a filter (hot, shared), and writes... reads an output tile, with
//! float-like compressible data.
//!
//! Usage: `cargo run --release --example custom_workload`

use avatar_gpu::core::AvatarPolicy;
use avatar_gpu::sim::addr::{VirtAddr, Vpn};
use avatar_gpu::sim::config::GpuConfig;
use avatar_gpu::sim::engine::Engine;
use avatar_gpu::sim::hooks::{NoSpeculation, SectorCompression};
use avatar_gpu::sim::sm::{WarpOp, WarpProgram};
use avatar_gpu::sim::tlb::{BaseTlb, TlbModel};

const INPUT_BYTES: u64 = 96 << 20;
const FILTER_BYTES: u64 = 64 << 10;
const TILES_PER_WARP: u32 = 24;

/// A tiled convolution-like kernel.
#[derive(Clone)]
struct Conv2d {
    warps_per_sm: usize,
    progress: Vec<u32>,
}

impl Conv2d {
    fn new(num_sms: usize, warps_per_sm: usize) -> Self {
        Self { warps_per_sm, progress: vec![0; num_sms * warps_per_sm] }
    }
}

impl WarpProgram for Conv2d {
    fn clone_box(&self) -> Box<dyn WarpProgram> {
        Box::new(self.clone())
    }

    fn next_op(&mut self, sm: usize, warp: usize) -> Option<WarpOp> {
        let slot = sm * self.warps_per_sm + warp;
        let step = self.progress[slot];
        if step >= TILES_PER_WARP * 4 {
            return None;
        }
        self.progress[slot] += 1;
        let tile = u64::from(step / 4);
        let global = slot as u64;
        Some(match step % 4 {
            0 => WarpOp::Load {
                pc: 0x100,
                addrs: (0..32)
                    .map(|t| VirtAddr(((global * 31 + tile * 977) * 4096 + t * 4) % INPUT_BYTES))
                    .collect(),
            },
            1 => WarpOp::Load {
                pc: 0x110,
                addrs: (0..32)
                    .map(|t| VirtAddr(INPUT_BYTES + (tile * 128 + t * 4) % FILTER_BYTES))
                    .collect(),
            },
            2 => WarpOp::Load {
                pc: 0x120,
                addrs: (0..32)
                    .map(|t| {
                        VirtAddr(
                            INPUT_BYTES
                                + FILTER_BYTES
                                + ((global * 17 + tile * 511) * 4096 + t * 4) % INPUT_BYTES,
                        )
                    })
                    .collect(),
            },
            _ => WarpOp::Compute { cycles: 60 },
        })
    }
}

/// Float-like contents: ~70% of sectors compress below 22 bytes.
#[derive(Debug)]
struct ConvData;

impl SectorCompression for ConvData {
    fn compressible(&mut self, vpn: Vpn, sector: u32) -> bool {
        let x = vpn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(sector).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        (x >> 8) % 100 < 70
    }
}

fn run_once(avatar: bool) -> avatar_gpu::sim::Stats {
    let mut cfg = GpuConfig::rtx3070();
    cfg.num_sms = 8;
    cfg.warps_per_sm = 24;
    cfg.uvm.promotion = true;
    cfg.uvm.embed_page_info = avatar;
    let l1s: Vec<Box<dyn TlbModel>> = (0..cfg.num_sms)
        .map(|_| {
            Box::new(BaseTlb::new(cfg.l1_tlb.base_entries, cfg.l1_tlb.large_entries, 0, 1))
                as Box<dyn TlbModel>
        })
        .collect();
    let l2 = Box::new(BaseTlb::new(cfg.l2_tlb.base_entries, cfg.l2_tlb.large_entries, 8, 1));
    let policy: Box<dyn avatar_gpu::sim::hooks::TranslationAccel> = if avatar {
        Box::new(AvatarPolicy::avatar(cfg.num_sms, 32, 2))
    } else {
        Box::new(NoSpeculation)
    };
    let program = Conv2d::new(cfg.num_sms, cfg.warps_per_sm);
    Engine::new(cfg, l1s, l2, policy, Box::new(ConvData), Box::new(program)).run()
}

fn main() {
    let base = run_once(false);
    let avatar = run_once(true);
    println!("custom conv2d kernel ({} loads each run)", base.loads);
    println!("  baseline: {} cycles, load latency {:.0}", base.cycles, base.load_latency.value());
    println!(
        "  avatar:   {} cycles, load latency {:.0}  => speedup {:.3}x",
        avatar.cycles,
        avatar.load_latency.value(),
        base.cycles as f64 / avatar.cycles as f64
    );
    println!(
        "  speculation: {:.1}% accuracy, {:.1}% coverage; {} rapid validations",
        avatar.spec_accuracy() * 100.0,
        avatar.spec_coverage() * 100.0,
        avatar.outcomes.fast_translation
    );
}
