//! **avatar-gpu** — a from-scratch Rust reproduction of *“A Case for
//! Speculative Address Translation with Rapid Validation for GPUs”*
//! (MICRO 2024).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: CAST speculation (MOD / VPN-T
//!   predictors), CAVA in-cache validation, EAF early TLB fill, and the
//!   [`core::system`] assembly of every evaluated configuration.
//! * [`sim`] — the GPU memory-system simulator substrate (SMs, sectored
//!   caches, TLB hierarchy, page walkers, GDDR6 DRAM, UVM paging).
//! * [`bpc`] — Bit-Plane Compression and the Attaché/CAVA sector layout.
//! * [`baselines`] — CoLT and SnakeByte prior-work TLB designs.
//! * [`workloads`] — the synthetic Table III + ML workload suites.
//!
//! # Quick start
//!
//! ```
//! use avatar_gpu::core::system::{run, RunOptions, SystemConfig};
//! use avatar_gpu::workloads::Workload;
//!
//! let w = Workload::by_abbr("SSSP").expect("Table III workload");
//! let opts = RunOptions { scale: 0.02, sms: Some(2), warps: Some(4), ..RunOptions::default() };
//! let base = run(&w, SystemConfig::Baseline, &opts);
//! let avatar = run(&w, SystemConfig::Avatar, &opts);
//! println!(
//!     "Avatar speedup {:.2}x, speculation accuracy {:.1}%",
//!     avatar_gpu::core::system::speedup(&base, &avatar),
//!     avatar.spec_accuracy() * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use avatar_baselines as baselines;
pub use avatar_bpc as bpc;
pub use avatar_core as core;
pub use avatar_sim as sim;
pub use avatar_workloads as workloads;
