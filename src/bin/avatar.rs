//! `avatar` — command-line front end for the reproduction.
//!
//! ```text
//! avatar list                          show workloads and configurations
//! avatar run <ABBR> [flags]            run one workload on one config
//! avatar compare <ABBR> [flags]        run the Fig 15 configuration set
//! avatar trace <ABBR> [--out FILE]     dump the workload's warp trace
//! avatar replay <FILE> [flags]         run a trace file through the system
//!
//! flags: --config <name>  (baseline|ideal|promotion|colt|snakebyte|
//!                          cast|avatar|avatar-noeaf|ideal-valid|vpnt)
//!        --scale <f> --sms <n> --warps <n> --oversub <f>
//!        --compress <f>   (replay only: sector compressibility 0..1)
//! ```

use avatar_gpu::core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_gpu::core::AvatarPolicy;
use avatar_gpu::sim::config::GpuConfig;
use avatar_gpu::sim::engine::Engine;
use avatar_gpu::sim::hooks::UniformCompression;
use avatar_gpu::sim::tlb::{BaseTlb, TlbModel};
use avatar_gpu::workloads::{FileProgram, Workload};
use std::process::ExitCode;

fn parse_config(name: &str) -> Option<SystemConfig> {
    Some(match name {
        "baseline" => SystemConfig::Baseline,
        "ideal" => SystemConfig::IdealTlb,
        "promotion" => SystemConfig::Promotion,
        "colt" => SystemConfig::Colt,
        "snakebyte" => SystemConfig::SnakeByte,
        "cast" => SystemConfig::CastOnly,
        "avatar" => SystemConfig::Avatar,
        "avatar-noeaf" => SystemConfig::AvatarNoEaf,
        "ideal-valid" => SystemConfig::CastIdealValid,
        "vpnt" => SystemConfig::AvatarVpnT,
        _ => return None,
    })
}

struct Flags {
    config: SystemConfig,
    opts: RunOptions,
    out: Option<String>,
    compress: f64,
    rest: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        config: SystemConfig::Avatar,
        opts: RunOptions { scale: 0.25, sms: Some(16), warps: Some(32), ..RunOptions::default() },
        out: None,
        compress: 0.675,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--config" => {
                let v = next("--config")?;
                f.config = parse_config(&v).ok_or_else(|| format!("unknown config '{v}'"))?;
            }
            "--scale" => f.opts.scale = next("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--sms" => f.opts.sms = Some(next("--sms")?.parse().map_err(|e| format!("{e}"))?),
            "--warps" => f.opts.warps = Some(next("--warps")?.parse().map_err(|e| format!("{e}"))?),
            "--oversub" => {
                f.opts.oversubscription =
                    Some(next("--oversub")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out" => f.out = Some(next("--out")?),
            "--compress" => f.compress = next("--compress")?.parse().map_err(|e| format!("{e}"))?,
            other => f.rest.push(other.to_string()),
        }
    }
    Ok(f)
}

fn summarize(label: &str, s: &avatar_gpu::sim::Stats) {
    println!(
        "{label}: {} cycles | {} loads, {} stores | L1 TLB miss {:.1}% | {} walks | \
         spec acc {:.1}% cov {:.1}% | DRAM {:.1}MB",
        s.cycles,
        s.loads,
        s.stores,
        s.l1_tlb_miss_rate() * 100.0,
        s.page_walks,
        s.spec_accuracy() * 100.0,
        s.spec_coverage() * 100.0,
        s.dram_bytes() as f64 / (1 << 20) as f64,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: avatar <list|run|compare|trace|replay> ...");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "list" => {
            println!("workloads (Table III):");
            for w in Workload::all() {
                println!(
                    "  {:<5} {:<12} class {:?} {:?} {:?} {}MB",
                    w.abbr,
                    w.name,
                    w.class,
                    w.data_type,
                    w.pattern,
                    w.working_set >> 20
                );
            }
            println!("ML workloads (Fig 23):");
            for w in Workload::ml_suite() {
                println!("  {:<6} {}", w.abbr, w.name);
            }
            println!("configs: baseline ideal promotion colt snakebyte cast avatar avatar-noeaf ideal-valid vpnt");
            ExitCode::SUCCESS
        }
        "run" | "compare" | "trace" => {
            let Some(abbr) = flags.rest.first() else {
                eprintln!("usage: avatar {cmd} <ABBR> [flags]");
                return ExitCode::FAILURE;
            };
            let Some(w) = Workload::by_abbr(abbr) else {
                eprintln!("unknown workload '{abbr}' (try `avatar list`)");
                return ExitCode::FAILURE;
            };
            match cmd.as_str() {
                "run" => {
                    let s = run(&w, flags.config, &flags.opts);
                    summarize(flags.config.label(), &s);
                }
                "compare" => {
                    let base = run(&w, SystemConfig::Baseline, &flags.opts);
                    summarize("Baseline", &base);
                    for cfg in SystemConfig::FIG15 {
                        let s = run(&w, cfg, &flags.opts);
                        println!("{:<18} speedup {:.3}x", cfg.label(), speedup(&base, &s));
                    }
                }
                _ => {
                    let sms = flags.opts.sms.unwrap_or(16);
                    let warps = flags.opts.warps.unwrap_or(32);
                    let mut program = w.program(sms, warps, flags.opts.scale);
                    let result = match &flags.out {
                        Some(path) => {
                            let file = match std::fs::File::create(path) {
                                Ok(f) => f,
                                Err(e) => {
                                    eprintln!("cannot create {path}: {e}");
                                    return ExitCode::FAILURE;
                                }
                            };
                            avatar_gpu::workloads::write_trace(&mut program, sms, warps, file)
                        }
                        None => avatar_gpu::workloads::write_trace(
                            &mut program,
                            sms,
                            warps,
                            std::io::stdout().lock(),
                        ),
                    };
                    if let Err(e) = result {
                        eprintln!("trace write failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "replay" => {
            let Some(path) = flags.rest.first() else {
                eprintln!("usage: avatar replay <FILE> [flags]");
                return ExitCode::FAILURE;
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match FileProgram::from_reader(file) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut cfg = GpuConfig::rtx3070();
            cfg.num_sms = flags.opts.sms.unwrap_or(16);
            cfg.warps_per_sm = flags.opts.warps.unwrap_or(32);
            let avatar_mode = matches!(
                flags.config,
                SystemConfig::Avatar | SystemConfig::AvatarNoEaf | SystemConfig::AvatarVpnT
            );
            cfg.uvm.promotion = flags.config.uses_promotion();
            cfg.uvm.embed_page_info = avatar_mode;
            cfg.ideal_tlb = flags.config == SystemConfig::IdealTlb;
            let l1s: Vec<Box<dyn TlbModel>> = (0..cfg.num_sms)
                .map(|_| {
                    Box::new(BaseTlb::new(
                        cfg.l1_tlb.base_entries,
                        cfg.l1_tlb.large_entries,
                        0,
                        1,
                    )) as Box<dyn TlbModel>
                })
                .collect();
            let l2 = Box::new(BaseTlb::new(cfg.l2_tlb.base_entries, cfg.l2_tlb.large_entries, 8, 1));
            let policy: Box<dyn avatar_gpu::sim::hooks::TranslationAccel> = if avatar_mode {
                Box::new(AvatarPolicy::avatar(cfg.num_sms, 32, 2))
            } else {
                Box::new(avatar_gpu::sim::hooks::NoSpeculation)
            };
            let stats = Engine::new(
                cfg,
                l1s,
                l2,
                policy,
                Box::new(UniformCompression { fraction: flags.compress }),
                Box::new(program),
            )
            .run();
            summarize(flags.config.label(), &stats);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'");
            ExitCode::FAILURE
        }
    }
}
