//! Shape tests: small-scale versions of the paper's key experimental
//! claims. These are the "does the reproduction still reproduce" canaries
//! — they run reduced configurations, so they check *direction*, not
//! magnitude.

use avatar_gpu::core::system::{run, RunOptions, SystemConfig};
use avatar_gpu::workloads::{Class, Workload};

fn opts() -> RunOptions {
    RunOptions { scale: 0.25, sms: Some(8), warps: Some(16), ..RunOptions::default() }
}

#[test]
fn fig3_translation_overhead_direction() {
    // The ideal TLB must beat the baseline, and by more on class-H
    // workloads than class-L ones.
    let loss = |abbr: &str| {
        let w = Workload::by_abbr(abbr).unwrap();
        let base = run(&w, SystemConfig::Baseline, &opts());
        let ideal = run(&w, SystemConfig::IdealTlb, &opts());
        1.0 - ideal.cycles as f64 / base.cycles as f64
    };
    let low = loss("LMD");
    let high = loss("XSB");
    assert!(high > 0.0, "class H must lose to ideal");
    assert!(high > low, "translation overhead must grow with TLB pressure: L={low} H={high}");
}

#[test]
fn fig15_avatar_beats_baseline_on_tlb_heavy_workloads() {
    for abbr in ["SSSP", "GC", "XSB"] {
        let w = Workload::by_abbr(abbr).unwrap();
        let base = run(&w, SystemConfig::Baseline, &opts());
        let avatar = run(&w, SystemConfig::Avatar, &opts());
        assert!(
            avatar.cycles < base.cycles,
            "{abbr}: Avatar {} must beat baseline {}",
            avatar.cycles,
            base.cycles
        );
    }
}

#[test]
fn fig15_avatar_beats_cast_only() {
    // Rapid validation must add value over bare speculation. Individual
    // workloads are marginal at this reduced scale, so assert the claim
    // where the paper makes it: across the irregular walk-bound set.
    let mut ratio = 1.0;
    for abbr in ["SSSP", "CC", "XSB"] {
        let w = Workload::by_abbr(abbr).unwrap();
        let cast = run(&w, SystemConfig::CastOnly, &opts());
        let avatar = run(&w, SystemConfig::Avatar, &opts());
        ratio *= avatar.cycles as f64 / cast.cycles as f64;
    }
    let gmean = ratio.powf(1.0 / 3.0);
    assert!(gmean < 1.0, "Avatar must beat CAST-only on irregular workloads: gmean {gmean:.4}");
}

#[test]
fn fig16_outcomes_follow_compressibility() {
    // High-compressibility workloads validate (Fast_Translation); the
    // low-compressibility outlier (SC, 13.5%) must rely on hit/merge.
    let o = opts();
    let sssp = run(&Workload::by_abbr("SSSP").unwrap(), SystemConfig::Avatar, &o);
    let sc = run(&Workload::by_abbr("SC").unwrap(), SystemConfig::Avatar, &o);
    let ft = |s: &avatar_gpu::sim::Stats| s.outcomes.fraction(s.outcomes.fast_translation);
    assert!(
        ft(&sssp) > ft(&sc),
        "SSSP (85% compressible) must fast-translate more than SC (13.5%): {} vs {}",
        ft(&sssp),
        ft(&sc)
    );
}

#[test]
fn fig17_eaf_cuts_walks_versus_promotion() {
    let w = Workload::by_abbr("CC").unwrap();
    let promo = run(&w, SystemConfig::Promotion, &opts());
    let avatar = run(&w, SystemConfig::Avatar, &opts());
    assert!(
        avatar.page_walks < promo.page_walks,
        "EAF must reduce completed walks: {} vs {}",
        avatar.page_walks,
        promo.page_walks
    );
}

#[test]
fn fig18_accuracy_in_band() {
    // Across a sample of the suite, MOD accuracy must sit in the
    // high-80s-to-high-90s band the paper reports (90.3% average).
    let mut accs = Vec::new();
    for abbr in ["GEMM", "PAF", "SSSP", "XSB"] {
        let w = Workload::by_abbr(abbr).unwrap();
        let s = run(&w, SystemConfig::Avatar, &opts());
        if s.speculations > 100 {
            accs.push(s.spec_accuracy());
        }
    }
    assert!(!accs.is_empty());
    let avg = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!((0.75..=1.0).contains(&avg), "accuracy band check failed: {avg}");
}

#[test]
fn fig22_vpnt_coverage_depends_on_entry_adequacy() {
    // Paper §IV-C2: VPN-T offers higher coverage *when the entry count is
    // adequate* for the footprint (it needs one entry per live 2MB
    // region); on huge irregular footprints its 32 entries thrash.
    let small = Workload::by_abbr("GEMM").unwrap(); // ~10 chunks at this scale
    let m = run(&small, SystemConfig::Avatar, &opts());
    let v = run(&small, SystemConfig::AvatarVpnT, &opts());
    assert!(
        v.spec_coverage() >= m.spec_coverage() * 0.95,
        "with adequate entries VPN-T must at least match MOD: {} vs {}",
        v.spec_coverage(),
        m.spec_coverage()
    );
    // Both predictors must function on the big irregular footprint too.
    let big = Workload::by_abbr("BET").unwrap();
    let vb = run(&big, SystemConfig::AvatarVpnT, &opts());
    assert!(vb.spec_coverage() > 0.1);
}

#[test]
fn fig23_fp32_compresses_better_than_fp16() {
    for model in ["OPT", "RES", "VGG", "EFF"] {
        let fp16 = Workload::by_abbr(&format!("{model}16")).unwrap();
        let fp32 = Workload::by_abbr(&format!("{model}32")).unwrap();
        let frac = |w: &Workload| {
            let c = w.content();
            let fit = (0..2000)
                .filter(|i| c.compressed_bits(i * 977) <= 176)
                .count();
            fit as f64 / 2000.0
        };
        assert!(frac(&fp32) > frac(&fp16), "{model}: FP32 must compress better");
    }
}

#[test]
fn class_tlb_pressure_ordering_emerges() {
    // Table III: TLB pressure per unit of memory work must rise from
    // class L to class H on the baseline. (Absolute MPMI values are not
    // comparable to the paper's — our compute ops stand for many real
    // instructions — so we normalize per sector request.)
    let pressure = |class: Class, abbr: &str| {
        let w = Workload::by_abbr(abbr).unwrap();
        assert_eq!(w.class, class);
        let s = run(&w, SystemConfig::Baseline, &opts());
        (s.l2_tlb_lookups - s.l2_tlb_hits) as f64 / s.sector_requests as f64
    };
    let l = pressure(Class::L, "GEMM");
    let h = pressure(Class::H, "XSB");
    assert!(h > l, "class H must out-miss class L per access: L={l:.4} H={h:.4}");
}
