//! Cross-crate correctness invariants: speculation must never change
//! architectural behaviour, runs must be deterministic, and the accounting
//! must be conserved across configurations.

use avatar_gpu::core::system::{run, RunOptions, SystemConfig};
use avatar_gpu::workloads::Workload;

fn opts() -> RunOptions {
    RunOptions { scale: 0.05, sms: Some(4), warps: Some(8), ..RunOptions::default() }
}

const ALL_CONFIGS: [SystemConfig; 9] = [
    SystemConfig::Baseline,
    SystemConfig::IdealTlb,
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::SnakeByte,
    SystemConfig::CastOnly,
    SystemConfig::Avatar,
    SystemConfig::CastIdealValid,
    SystemConfig::AvatarVpnT,
];

#[test]
fn every_configuration_completes_every_issued_access() {
    // The engine debug-asserts internally that all sector requests
    // complete; here we check the visible accounting across configs.
    let w = Workload::by_abbr("SSSP").unwrap();
    for cfg in ALL_CONFIGS {
        let s = run(&w, cfg, &opts());
        assert!(s.loads > 0, "{}: no loads issued", cfg.label());
        assert_eq!(
            s.sector_latency.count(),
            s.sector_requests,
            "{}: every sector request must record a completion latency",
            cfg.label()
        );
        assert_eq!(
            s.load_latency.count(),
            s.loads + s.stores,
            "{}: every warp memory instruction must complete",
            cfg.label()
        );
    }
}

#[test]
fn speculation_does_not_change_the_work_performed() {
    // The same workload must issue identical instruction/load/sector
    // counts under every configuration — speculation accelerates, it must
    // not add or drop architectural work.
    let w = Workload::by_abbr("GC").unwrap();
    let base = run(&w, SystemConfig::Baseline, &opts());
    for cfg in ALL_CONFIGS {
        let s = run(&w, cfg, &opts());
        assert_eq!(s.instructions, base.instructions, "{}", cfg.label());
        assert_eq!(s.loads, base.loads, "{}", cfg.label());
        assert_eq!(s.sector_requests, base.sector_requests, "{}", cfg.label());
    }
}

#[test]
fn runs_are_deterministic() {
    let w = Workload::by_abbr("XSB").unwrap();
    for cfg in [SystemConfig::Avatar, SystemConfig::Colt, SystemConfig::SnakeByte] {
        let a = run(&w, cfg, &opts());
        let b = run(&w, cfg, &opts());
        assert_eq!(a.cycles, b.cycles, "{}", cfg.label());
        assert_eq!(a.speculations, b.speculations, "{}", cfg.label());
        assert_eq!(a.page_walks, b.page_walks, "{}", cfg.label());
        assert_eq!(a.dram_read_bytes, b.dram_read_bytes, "{}", cfg.label());
        assert_eq!(a.stall_cycles, b.stall_cycles, "{}", cfg.label());
    }
}

#[test]
fn accuracy_and_coverage_are_probabilities() {
    for abbr in ["GEMM", "SSSP", "SC"] {
        let w = Workload::by_abbr(abbr).unwrap();
        let s = run(&w, SystemConfig::Avatar, &opts());
        assert!((0.0..=1.0).contains(&s.spec_accuracy()), "{abbr}");
        assert!((0.0..=1.0).contains(&s.spec_coverage()), "{abbr}");
        assert!(s.spec_correct <= s.speculations, "{abbr}");
        let o = &s.outcomes;
        assert!(
            o.total() <= s.spec_correct + s.speculations,
            "{abbr}: outcomes only for speculative accesses"
        );
    }
}

#[test]
fn ideal_tlb_never_walks_or_misses() {
    let w = Workload::by_abbr("KM").unwrap();
    let s = run(&w, SystemConfig::IdealTlb, &opts());
    assert_eq!(s.page_walks, 0);
    assert_eq!(s.l1_tlb_lookups, 0, "ideal TLB bypasses the hierarchy");
    assert_eq!(s.speculations, 0);
}

#[test]
fn cast_only_never_fast_translates_and_avatar_does() {
    let w = Workload::by_abbr("SSSP").unwrap();
    let cast = run(&w, SystemConfig::CastOnly, &opts());
    assert!(cast.speculations > 0);
    assert_eq!(cast.outcomes.fast_translation, 0);
    assert_eq!(cast.eaf_fills, 0);
    assert_eq!(cast.spec_compressed, 0, "CAST-only never inspects sectors");

    let avatar = run(&w, SystemConfig::Avatar, &opts());
    assert!(avatar.outcomes.fast_translation > 0);
    assert!(avatar.eaf_fills > 0);
}

#[test]
fn eaf_reduces_page_walks() {
    let w = Workload::by_abbr("SSSP").unwrap();
    let no_eaf = run(&w, SystemConfig::AvatarNoEaf, &opts());
    let avatar = run(&w, SystemConfig::Avatar, &opts());
    assert!(
        avatar.page_walks + avatar.walks_aborted <= no_eaf.page_walks + no_eaf.walks_aborted + no_eaf.page_walks / 2,
        "EAF must not inflate walk work: avatar {}+{} vs no-eaf {}",
        avatar.page_walks,
        avatar.walks_aborted,
        no_eaf.page_walks
    );
    assert!(avatar.walks_aborted > 0, "EAF must abort in-flight walks");
}

#[test]
fn dram_traffic_is_conserved() {
    // Reads cover the fetched sectors and eviction flushes; writes cover
    // the migrated pages. Both must be nonzero and sane.
    let w = Workload::by_abbr("MD").unwrap();
    let s = run(&w, SystemConfig::Baseline, &opts());
    assert!(s.dram_read_bytes > 0);
    assert_eq!(
        s.dram_write_bytes,
        s.pages_migrated * 4096,
        "migration writes account 4KB per page"
    );
}

#[test]
fn oversubscription_only_evicts_under_pressure() {
    let w = Workload::by_abbr("XSB").unwrap();
    let unlimited = run(&w, SystemConfig::Baseline, &opts());
    assert_eq!(unlimited.chunks_evicted, 0, "no pressure, no evictions");
    // A strongly constrained capacity guarantees churn regardless of how
    // much of the footprint the reduced trace touches.
    let constrained = run(
        &w,
        SystemConfig::Baseline,
        &RunOptions { oversubscription: Some(1.3), scale: 0.25, ..opts() },
    );
    assert!(constrained.chunks_evicted > 0);
    assert_eq!(constrained.tlb_shootdowns, constrained.chunks_evicted);
}

#[test]
fn mis_speculation_is_detected_not_consumed() {
    // CAVA mismatches plus false speculations must stay within attempted
    // speculations, and Avatar must remain architecturally equivalent (all
    // loads complete — checked by the engine) despite them.
    let w = Workload::by_abbr("SC").unwrap();
    let s = run(&w, SystemConfig::Avatar, &RunOptions { scale: 0.25, ..opts() });
    assert!(s.speculations > 0);
    assert!(s.cava_mismatches <= s.speculations);
    assert!(s.spec_false <= s.speculations);
}

#[test]
fn multi_tenancy_isolates_address_spaces() {
    // Two tenants spatially share the GPU: each sees its own copy of the
    // workload in an isolated address space. Speculation must stay
    // accurate (no cross-tenant aliasing in the shared TLB hierarchy) and
    // validation must never accept another tenant's page (ASID check).
    let w = Workload::by_abbr("SSSP").unwrap();
    let single = run(
        &w,
        SystemConfig::Avatar,
        &RunOptions { tenants: 1, scale: 0.1, sms: Some(8), warps: Some(8), ..RunOptions::default() },
    );
    let dual = run(
        &w,
        SystemConfig::Avatar,
        &RunOptions { tenants: 2, scale: 0.1, sms: Some(8), warps: Some(8), ..RunOptions::default() },
    );
    assert!(dual.loads > 0);
    assert_eq!(dual.load_latency.count(), dual.loads + dual.stores);
    assert!(dual.speculations > 0, "both tenants speculate");
    // Isolation: accuracy must not collapse under sharing.
    assert!(
        dual.spec_accuracy() > single.spec_accuracy() - 0.15,
        "tenant sharing must not poison prediction: {} vs {}",
        dual.spec_accuracy(),
        single.spec_accuracy()
    );
}

#[test]
fn multi_tenancy_is_deterministic() {
    let w = Workload::by_abbr("GEMM").unwrap();
    let opts = RunOptions { tenants: 2, scale: 0.05, sms: Some(4), warps: Some(4), ..RunOptions::default() };
    let a = run(&w, SystemConfig::Avatar, &opts);
    let b = run(&w, SystemConfig::Avatar, &opts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.speculations, b.speculations);
}
