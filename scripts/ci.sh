#!/usr/bin/env bash
# Tier-1 verification + a quick throughput smoke run with a regression gate.
#
# Fails if the build breaks, clippy reports any warning, any test fails, a
# scenario cell panics during the throughput grid (the harness exits
# non-zero on a failed cell), or single-thread events/sec regresses more
# than AVATAR_TP_TOLERANCE percent (default 20) below the checked-in
# BENCH_throughput.json baseline.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace -q

echo "== throughput smoke + regression gate (--quick) =="
tp_json=$(mktemp /tmp/avatar-throughput.XXXXXX.json)
trap 'rm -f "$tp_json"' EXIT
cargo run --release -p avatar-bench --bin throughput -- --quick --json "$tp_json"

# The first entry of each file is the single-thread pass; its
# events_per_sec is the gated metric. Wall-clock noise on shared runners is
# why the tolerance is generous; tighten with AVATAR_TP_TOLERANCE=<pct>.
extract_eps() {
    awk -F': ' '/"events_per_sec"/ { gsub(/,/, "", $2); print $2; exit }' "$1"
}
baseline_eps=$(extract_eps BENCH_throughput.json)
current_eps=$(extract_eps "$tp_json")
tolerance="${AVATAR_TP_TOLERANCE:-20}"
awk -v base="$baseline_eps" -v cur="$current_eps" -v tol="$tolerance" 'BEGIN {
    floor = base * (1 - tol / 100);
    printf "events/sec: current %.0f vs baseline %.0f (floor %.0f at -%s%%)\n",
           cur, base, floor, tol;
    if (cur < floor) {
        print "THROUGHPUT REGRESSION: below floor" > "/dev/stderr";
        exit 1;
    }
}'

echo "== OK =="
