#!/usr/bin/env bash
# Tier-1 verification + a quick throughput smoke run.
#
# Fails if the build breaks, any test fails, or a scenario cell panics
# during the throughput grid (the harness exits non-zero on a failed
# cell).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test --workspace -q

echo "== throughput smoke (--quick) =="
cargo run --release -p avatar-bench --bin throughput -- --quick

echo "== OK =="
