#!/usr/bin/env bash
# Tier-1 verification + a quick throughput smoke run with a regression gate.
#
# Fails if the build breaks, avatar-lint reports any deny finding (local
# rules plus the workspace-semantic rules: shard-reachability,
# digest/checkpoint field parity, map-iteration determinism), the lint
# cache fails its warm re-lint gate (a repeat scan into a fresh cache
# file must replay as a hit and beat the AVATAR_LINT_SPEEDUP_MIN floor,
# default 5x), clippy
# reports any warning, any test fails (including the probes-off build and
# the checked-mode `--features invariants` suite), the inline-hit fast
# path changes any simulated statistic (the on/off digest differential),
# the observability layer changes any simulated statistic (probe-sink
# differential + latency-conservation tests), the fig15 grid diverges
# between the default, invariants, or probes-compiled-out builds, the
# sharded calendar changes any figure result (fig15 byte-diff at
# --shards 4, plus the checked-mode suite re-run under AVATAR_SHARDS=4),
# the policy registry assembles a different system than the enum-era
# SystemConfig path (fig15 byte-diff between the default column set and
# the same set spelled as --policies registry names), the policy_sweep
# harness drops a default-set policy or its GMEAN row,
# the parallel shard worker pool changes any figure result (fig15
# byte-diff at --shards 4 with AVATAR_SHARD_WORKERS=4), the worker pool
# fails to scale on a host that can measure it (4-worker pass must beat
# the serial pass by AVATAR_SCALING_MIN x, default 1.5, armed only when
# the box has >= 4 CPUs),
# the result cache fails its warm-sweep gate (a repeat fig15 run into a
# fresh cache directory must replay every cell, match the cold pass
# byte-for-byte modulo the cache section, and beat the
# AVATAR_CACHE_SPEEDUP_MIN floor, default 5x),
# a scenario cell panics during the throughput grid (the harness exits
# non-zero on a failed cell, and on any shard/thread digest divergence),
# or single-thread events/sec — measured with probes compiled out and
# shards 1, the shipping hot path — regresses more than
# AVATAR_TP_TOLERANCE percent (default 2) below the checked-in
# BENCH_throughput.json baseline.
#
# To iterate locally with a known-noisy rule, downgrade it instead of
# editing the gate: AVATAR_LINT_ALLOW=<rule,rule> scripts/ci.sh
# (`lint:allow(<rule>)` comments are the per-site escape; the env var is
# deliberately not set here so CI always runs the full rule set).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== avatar-lint (semantic deny gate) =="
# The JSON report (per-rule counts + wall time) is archived next to the
# throughput baseline so a CI failure leaves a machine-readable artifact
# (exit is non-zero on any deny finding; `allowed` sites are still
# listed in the report), and the SARIF dump under target/ is the
# code-scanning upload artifact. The scan runs into a fresh cache file
# so the warm re-lint below exercises a true cold-then-hit pair.
lint_cache=$(mktemp -u /tmp/avatar-lint-cache.XXXXXX.txt)
lint_warm_json=$(mktemp /tmp/avatar-lint-warm.XXXXXX.json)
cargo run --release -q -p avatar-lint -- \
    --json BENCH_lint.json --sarif target/avatar-lint.sarif \
    --cache "$lint_cache" --show-allowed

echo "== avatar-lint warm re-lint gate (content-addressed cache) =="
# Same sources, same allow set, same binary: the second scan must replay
# from the cache (status "hit") and come in at least
# AVATAR_LINT_SPEEDUP_MIN times faster than the cold pass (default 5;
# the warm path reads sources and verifies the key but skips the lexer,
# item graph, and call graph entirely).
cargo run --release -q -p avatar-lint -- \
    --json "$lint_warm_json" --cache "$lint_cache" --quiet
grep -q '"cache": "hit"' "$lint_warm_json" || {
    echo "LINT CACHE GATE: warm re-lint did not replay from cache" >&2
    exit 1
}
lint_wall_ms() { grep -o '"wall_ms": [0-9]*' "$1" | head -1 | grep -o '[0-9]*'; }
awk -v cold="$(lint_wall_ms BENCH_lint.json)" \
    -v warm="$(lint_wall_ms "$lint_warm_json")" \
    -v min="${AVATAR_LINT_SPEEDUP_MIN:-5}" 'BEGIN {
    if (warm < 1) warm = 1;
    ratio = cold / warm;
    printf "lint warm re-lint: cold %d ms, warm %d ms, speedup %.1fx (floor %sx)\n",
           cold, warm, ratio, min;
    if (ratio < min) {
        print "LINT CACHE GATE: warm re-lint below the speedup floor" > "/dev/stderr";
        exit 1;
    }
}'
rm -f "$lint_cache" "$lint_warm_json"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (workspace: probes on via avatar-bench default) =="
cargo test --workspace -q

echo "== tests with probes compiled out (sim + core, shipping hot path) =="
cargo test -q -p avatar-sim -p avatar-core

echo "== checked-mode invariants (audits + negative tests) =="
cargo test -q -p avatar-sim --features invariants
cargo test -q -p avatar-sim --features invariants,probes

echo "== checked-mode invariants under the sharded calendar (AVATAR_SHARDS=4) =="
# Every engine audit (slab accounting, exchange conservation, monotone
# shard clocks) must also hold when the calendar defaults to four
# domains; the suite's own digests are shard-invariant by the parity
# gate, so any failure here is a sharding bug, not a flaky test.
AVATAR_SHARDS=4 cargo test -q -p avatar-sim --features invariants

echo "== observability differential + conservation gate (release) =="
# Attaching a probe sink must change no simulated statistic, and the
# per-phase latency breakdown must attribute every sector cycle exactly
# once (crates/core/tests/observability.rs).
cargo test --release -q -p avatar-core --features probes --test observability

echo "== fast-path differential gate (inline vs evented, all figure configs) =="
# The inline hit fast path is a host-side speed knob: Stats::digest()
# must be identical with it on and off for every figure-bin system
# configuration. The sweep lives in crates/core/tests/fast_path.rs; it
# already ran once inside the workspace test pass above, so this release
# re-run guards against opt-level-dependent divergence.
cargo test --release -q -p avatar-core --test fast_path

echo "== invariants/probes builds must not perturb results (fig15 byte-diff) =="
# The differential gates run with --no-cache: replaying one build's cached
# results under another build's label would defeat the exact divergence
# these byte-diffs exist to catch.
fig_default=$(mktemp /tmp/avatar-fig15-default.XXXXXX.json)
fig_checked=$(mktemp /tmp/avatar-fig15-checked.XXXXXX.json)
fig_noprobes=$(mktemp /tmp/avatar-fig15-noprobes.XXXXXX.json)
fig_sharded=$(mktemp /tmp/avatar-fig15-sharded.XXXXXX.json)
fig_workers=$(mktemp /tmp/avatar-fig15-workers.XXXXXX.json)
fig_cold=$(mktemp /tmp/avatar-fig15-cold.XXXXXX.json)
fig_warm=$(mktemp /tmp/avatar-fig15-warm.XXXXXX.json)
fig_named=$(mktemp /tmp/avatar-fig15-named.XXXXXX.json)
sweep_json=$(mktemp /tmp/avatar-policy-sweep.XXXXXX.json)
cache_dir=$(mktemp -d /tmp/avatar-cache-gate.XXXXXX)
tp_json=$(mktemp /tmp/avatar-throughput.XXXXXX.json)
trap 'rm -f "$fig_default" "$fig_checked" "$fig_noprobes" "$fig_sharded" "$fig_workers" "$fig_cold" "$fig_warm" "$fig_named" "$sweep_json" "$tp_json"; rm -rf "$cache_dir"' EXIT
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --no-cache --json "$fig_default"
cargo run --release -q -p avatar-bench --features invariants --bin fig15_performance -- --quick --no-cache --json "$fig_checked"
cargo run --release -q -p avatar-bench --no-default-features --bin fig15_performance -- --quick --no-cache --json "$fig_noprobes"
if ! diff -q "$fig_default" "$fig_checked"; then
    echo "INVARIANTS DIVERGENCE: fig15 JSON differs between default and --features invariants builds" >&2
    exit 1
fi
if ! diff -q "$fig_default" "$fig_noprobes"; then
    echo "PROBES DIVERGENCE: fig15 JSON differs between probes-on (default) and probes-compiled-out builds" >&2
    exit 1
fi

echo "== policy registry must not perturb results (fig15 byte-diff, enum vs --policies) =="
# The name-keyed policy registry replaced the enum-era SystemConfig
# assembly. The default fig15 run (enum aliases) and the same column set
# spelled as parsed registry names must produce byte-identical JSON —
# any divergence means the registry builds a different system than the
# enum did.
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --no-cache \
    --policies "promotion,colt,snakebyte,cast,avatar,cast-ideal" --json "$fig_named"
if ! diff -q "$fig_default" "$fig_named"; then
    echo "REGISTRY DIVERGENCE: fig15 JSON differs between enum aliases and parsed policy names" >&2
    exit 1
fi

echo "== policy_sweep smoke (cross-policy comparison, Revelator + dead-entry) =="
# The cross-policy harness must run its full default set — the paper
# baselines plus the post-paper Revelator and dead-entry designs — and
# emit a row per workload plus the GMEAN row. Exercises the registry's
# novel-policy builds end to end (no byte-reference: these columns are
# new in this harness).
cargo run --release -q -p avatar-bench --bin policy_sweep -- --quick --no-cache --json "$sweep_json"
for p in baseline colt snakebyte avatar revelator "avatar+dead"; do
    if ! grep -q "\"policy\": \"$p\"" "$sweep_json"; then
        echo "POLICY SWEEP GATE: policy '$p' missing from the sweep dump" >&2
        exit 1
    fi
done
grep -q '"workload": "GMEAN"' "$sweep_json" || {
    echo "POLICY SWEEP GATE: GMEAN row missing from the sweep dump" >&2
    exit 1
}

echo "== sharded calendar must not perturb results (fig15 byte-diff at --shards 4) =="
# The bounded-lag sharded calendar is a host-side structure knob: the
# full figure grid must be byte-identical to the serial calendar's.
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --shards 4 --no-cache --json "$fig_sharded"
if ! diff -q "$fig_default" "$fig_sharded"; then
    echo "SHARDING DIVERGENCE: fig15 JSON differs between --shards 4 and the serial calendar" >&2
    exit 1
fi

echo "== parallel shard workers must not perturb results (fig15 at --shards 4, AVATAR_SHARD_WORKERS=4) =="
# The worker pool drains shard lanes on real threads between horizon
# barriers; the exchange is delivered in deterministic lane order, so
# the full figure grid must stay byte-identical to the serial calendar
# regardless of how many workers the host actually has.
AVATAR_SHARD_WORKERS=4 cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --shards 4 --no-cache --json "$fig_workers"
if ! diff -q "$fig_default" "$fig_workers"; then
    echo "WORKER DIVERGENCE: fig15 JSON differs between the 4-worker shard pool and the serial calendar" >&2
    exit 1
fi

echo "== result-cache warm-sweep gate (fig15 cold vs warm) =="
# The same sweep into a fresh cache directory, twice. The warm pass must
# (a) replay every cell — zero misses — and come in at least
# AVATAR_CACHE_SPEEDUP_MIN times faster (default 5; the paper-scale win
# is far larger, --quick pays proportionally more process overhead), and
# (b) produce byte-identical rows. Only the trailing "section": "cache"
# object may differ between the passes (hits vs misses), so both dumps
# are compared with it stripped.
t0=$(date +%s%N)
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --cache "$cache_dir" --json "$fig_cold"
t1=$(date +%s%N)
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --cache "$cache_dir" --json "$fig_warm"
t2=$(date +%s%N)
if ! grep -q '"cache_misses": 0' "$fig_warm"; then
    echo "CACHE GATE: warm fig15 pass re-ran cells (expected zero misses)" >&2
    grep -A5 '"section": "cache"' "$fig_warm" >&2 || true
    exit 1
fi
# The cache section is the last array element; strip from its marker to
# EOF in both dumps and byte-diff the remaining rows.
strip_cache_section() { sed '/"section": "cache"/,$d' "$1"; }
if ! diff -q <(strip_cache_section "$fig_cold") <(strip_cache_section "$fig_warm"); then
    echo "CACHE DIVERGENCE: warm fig15 rows differ from the cold pass" >&2
    exit 1
fi
awk -v cold="$((t1 - t0))" -v warm="$((t2 - t1))" \
    -v min="${AVATAR_CACHE_SPEEDUP_MIN:-5}" 'BEGIN {
    ratio = cold / warm;
    printf "cache warm-sweep: cold %.2fs, warm %.2fs, speedup %.1fx (floor %sx)\n",
           cold / 1e9, warm / 1e9, ratio, min;
    if (ratio < min) {
        print "CACHE GATE: warm sweep below the speedup floor" > "/dev/stderr";
        exit 1;
    }
}'

echo "== throughput smoke + regression gate (--quick, probes compiled out) =="
# The gate measures the shipping hot path: probes erased at compile time.
# This is also what pins the tentpole's zero-overhead-when-off promise —
# the baseline predates the probe layer, so a slowdown here means the
# instrumentation leaked into the off path.
# --no-cache is belt-and-braces here: the throughput bin already pins the
# result cache off (a timing harness must never replay), and this makes
# the intent visible in the gate itself.
cargo run --release -p avatar-bench --no-default-features --bin throughput -- --quick --no-cache --json "$tp_json"

# events/sec is measured on the fully serial pass; select the JSON entry
# whose "threads", "shards", and "workers" fields are all 1 rather than
# trusting entry order (the shard and worker sweeps also run on one
# runner thread). Widen for noisy shared runners with
# AVATAR_TP_TOLERANCE=<pct>.
extract_eps() {
    awk -F': ' '
        /"threads"/ { v = $2; gsub(/,/, "", v); serial = (v == 1) }
        /"shards"/  { v = $2; gsub(/,/, "", v); oneshard = (v == 1) }
        /"workers"/ { v = $2; gsub(/,/, "", v); onewkr = (v == 1) }
        serial && oneshard && onewkr && /"events_per_sec"/ { gsub(/,/, "", $2); print $2; exit }
    ' "$1"
}
baseline_eps=$(extract_eps BENCH_throughput.json)
current_eps=$(extract_eps "$tp_json")
tolerance="${AVATAR_TP_TOLERANCE:-2}"
awk -v base="$baseline_eps" -v cur="$current_eps" -v tol="$tolerance" 'BEGIN {
    floor = base * (1 - tol / 100);
    printf "events/sec: current %.0f vs baseline %.0f (floor %.0f at -%s%%)\n",
           cur, base, floor, tol;
    if (cur < floor) {
        print "THROUGHPUT REGRESSION: below floor" > "/dev/stderr";
        exit 1;
    }
}'

echo "== worker-scaling gate (4 intra-engine workers vs serial) =="
# At 4 workers the parallel shard engine must beat the serial pass by
# AVATAR_SCALING_MIN x (default 1.5). Armed only on hosts with >= 4
# CPUs: a serialized box measures scheduler noise, and the throughput
# bin marks its entries scaling_measured: false for the same reason.
cpus=$(nproc 2>/dev/null || echo 1)
if [ "$cpus" -ge 4 ]; then
    worker_scaling=$(awk -F': ' '
        /"threads"/ { v = $2; gsub(/,/, "", v); serial = (v == 1) }
        /"workers"/ { v = $2; gsub(/,/, "", v); four = (v == 4) }
        serial && four && /"scaling":/ { gsub(/,/, "", $2); print $2; exit }
    ' "$tp_json")
    awk -v s="$worker_scaling" -v min="${AVATAR_SCALING_MIN:-1.5}" 'BEGIN {
        printf "worker scaling at 4 workers: %.2fx (floor %sx)\n", s, min;
        if (s == "" || s + 0 < min + 0) {
            print "SCALING REGRESSION: 4-worker pass below the scaling floor" > "/dev/stderr";
            exit 1;
        }
    }'
else
    echo "worker-scaling gate: dormant ($cpus CPU(s) < 4; entries carry scaling_measured: false)"
fi

echo "== OK =="
