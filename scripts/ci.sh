#!/usr/bin/env bash
# Tier-1 verification + a quick throughput smoke run with a regression gate.
#
# Fails if the build breaks, avatar-lint reports any deny finding, clippy
# reports any warning, any test fails (including the checked-mode
# `--features invariants` suite), the inline-hit fast path changes any
# simulated statistic (the on/off digest differential), the fig15 grid
# diverges between the default and invariants builds, a scenario cell
# panics during the throughput grid (the harness exits non-zero on a
# failed cell), or single-thread events/sec regresses more than
# AVATAR_TP_TOLERANCE percent (default 20) below the checked-in
# BENCH_throughput.json baseline.
#
# To iterate locally with a known-noisy rule, downgrade it instead of
# editing the gate: AVATAR_LINT_ALLOW=<rule,rule> scripts/ci.sh
# (`lint:allow(<rule>)` comments are the per-site escape; the env var is
# deliberately not set here so CI always runs the full rule set).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== avatar-lint (deny gate) =="
# The JSON report is archived next to the throughput baseline so a CI
# failure leaves a machine-readable artifact (exit is non-zero on any
# deny finding; `allowed` sites are still listed in the report).
cargo run --release -q -p avatar-lint -- --json BENCH_lint.json --show-allowed

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace -q

echo "== checked-mode invariants (audits + negative tests) =="
cargo test -q -p avatar-sim --features invariants

echo "== fast-path differential gate (inline vs evented, all figure configs) =="
# The inline hit fast path is a host-side speed knob: Stats::digest()
# must be identical with it on and off for every figure-bin system
# configuration. The sweep lives in crates/core/tests/fast_path.rs; it
# already ran once inside the workspace test pass above, so this release
# re-run guards against opt-level-dependent divergence.
cargo test --release -q -p avatar-core --test fast_path

echo "== invariants build must not perturb results (fig15 byte-diff) =="
fig_default=$(mktemp /tmp/avatar-fig15-default.XXXXXX.json)
fig_checked=$(mktemp /tmp/avatar-fig15-checked.XXXXXX.json)
tp_json=$(mktemp /tmp/avatar-throughput.XXXXXX.json)
trap 'rm -f "$fig_default" "$fig_checked" "$tp_json"' EXIT
cargo run --release -q -p avatar-bench --bin fig15_performance -- --quick --json "$fig_default"
cargo run --release -q -p avatar-bench --features invariants --bin fig15_performance -- --quick --json "$fig_checked"
if ! diff -q "$fig_default" "$fig_checked"; then
    echo "INVARIANTS DIVERGENCE: fig15 JSON differs between default and --features invariants builds" >&2
    exit 1
fi

echo "== throughput smoke + regression gate (--quick) =="
cargo run --release -p avatar-bench --bin throughput -- --quick --json "$tp_json"

# events/sec is measured on the single-thread pass; select the JSON entry
# whose "threads" field is 1 rather than trusting entry order. Wall-clock
# noise on shared runners is why the tolerance is generous; tighten with
# AVATAR_TP_TOLERANCE=<pct>.
extract_eps() {
    awk -F': ' '
        /"threads"/ { v = $2; gsub(/,/, "", v); serial = (v == 1) }
        serial && /"events_per_sec"/ { gsub(/,/, "", $2); print $2; exit }
    ' "$1"
}
baseline_eps=$(extract_eps BENCH_throughput.json)
current_eps=$(extract_eps "$tp_json")
tolerance="${AVATAR_TP_TOLERANCE:-20}"
awk -v base="$baseline_eps" -v cur="$current_eps" -v tol="$tolerance" 'BEGIN {
    floor = base * (1 - tol / 100);
    printf "events/sec: current %.0f vs baseline %.0f (floor %.0f at -%s%%)\n",
           cur, base, floor, tol;
    if (cur < floor) {
        print "THROUGHPUT REGRESSION: below floor" > "/dev/stderr";
        exit 1;
    }
}'

echo "== OK =="
