//! Component bench: the simulator's hot structures — TLB models, the
//! sectored cache directory, the DRAM timing model, and the page-walk
//! system. These dominate whole-run simulation time.

use avatar_baselines::{ColtTlb, SnakeByteTlb};
use avatar_sim::addr::{PhysAddr, Ppn, Vpn};
use avatar_sim::cache::{SectorCache, SectorFlags};
use avatar_sim::config::GpuConfig;
use avatar_sim::dram::{Dram, DramOp};
use avatar_sim::page_table::PageTable;
use avatar_sim::tlb::{BaseTlb, TlbFill, TlbModel};
use avatar_sim::walker::PageWalkSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tlbs(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb_lookup");
    let fills: Vec<TlbFill> = (0..1024)
        .map(|i| TlbFill { vpn: Vpn(i * 3), ppn: Ppn(i * 3 + 512), pages: 1, run: None })
        .collect();

    let mut base = BaseTlb::new(1024, 128, 8, 1);
    let mut colt = ColtTlb::new(1024, 128, 8);
    let mut snake = SnakeByteTlb::new(1152);
    for f in &fills {
        base.fill(f);
        colt.fill(f);
        snake.fill(f);
    }
    let mut v = 0u64;
    g.bench_function("base", |b| {
        b.iter(|| {
            v = (v + 7) % 3072;
            black_box(base.lookup(Vpn(v)))
        })
    });
    g.bench_function("colt", |b| {
        b.iter(|| {
            v = (v + 7) % 3072;
            black_box(colt.lookup(Vpn(v)))
        })
    });
    g.bench_function("snakebyte", |b| {
        b.iter(|| {
            v = (v + 7) % 3072;
            black_box(snake.lookup(Vpn(v)))
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut cache = SectorCache::new(cfg.l2_cache.lines(), cfg.l2_cache.assoc);
    let flags = SectorFlags { valid: true, compressed: false, guaranteed: true, dirty: false };
    for i in 0..32_768u64 {
        cache.fill(PhysAddr(i * 128), flags);
    }
    let mut a = 0u64;
    c.bench_function("l2_cache_probe", |b| {
        b.iter(|| {
            a = (a + 131) % 65_536;
            black_box(cache.probe(PhysAddr(a * 128)))
        })
    });
    c.bench_function("l2_cache_fill", |b| {
        b.iter(|| {
            a = (a + 131) % 131_072;
            black_box(cache.fill(PhysAddr(a * 128), flags))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = Dram::new(GpuConfig::default().dram);
    let mut t = 0u64;
    let mut a = 0u64;
    c.bench_function("dram_access", |b| {
        b.iter(|| {
            a = a.wrapping_add(0x1243) & 0xFF_FFFF;
            t += 1;
            black_box(dram.access(PhysAddr(a * 32), DramOp::Read, t, 32))
        })
    });
}

fn bench_walks(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for i in 0..4096u64 {
        pt.map_page(Vpn(i), Ppn(i + 512));
    }
    c.bench_function("page_walk_dispatch_step", |b| {
        let mut ws = PageWalkSystem::new(GpuConfig::default().walker);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 4096;
            let id = ws.enqueue(Vpn(v), pt.walk_levels(Vpn(v)), 0).expect("buffer space");
            ws.dispatch().expect("walker free");
            while let avatar_sim::walker::WalkProgress::Access(_) =
                ws.step(id).expect("live")
            {}
        })
    });
}

criterion_group!(benches, bench_tlbs, bench_cache, bench_dram, bench_walks);
criterion_main!(benches);
