//! Component bench: the simulator's hot structures — TLB models, the
//! sectored cache directory, the DRAM timing model, the event calendar,
//! and the page-walk system. These dominate whole-run simulation time.

use avatar_baselines::{ColtTlb, SnakeByteTlb};
use avatar_bench::timer::{bench, group};
use avatar_sim::addr::{PhysAddr, Ppn, Vpn};
use avatar_sim::cache::{SectorCache, SectorFlags};
use avatar_sim::config::GpuConfig;
use avatar_sim::dram::{Dram, DramOp};
use avatar_sim::event::EventQueue;
use avatar_sim::page_table::PageTable;
use avatar_sim::tlb::{BaseTlb, TlbFill, TlbModel};
use avatar_sim::walker::PageWalkSystem;

fn main() {
    group("tlb_lookup");
    let fills: Vec<TlbFill> = (0..1024)
        .map(|i| TlbFill { vpn: Vpn(i * 3), ppn: Ppn(i * 3 + 512), pages: 1, run: None })
        .collect();
    let mut base = BaseTlb::new(1024, 128, 8, 1);
    let mut colt = ColtTlb::new(1024, 128, 8);
    let mut snake = SnakeByteTlb::new(1152);
    for f in &fills {
        base.fill(f);
        colt.fill(f);
        snake.fill(f);
    }
    let mut v = 0u64;
    bench("base", || {
        v = (v + 7) % 3072;
        base.lookup(Vpn(v))
    });
    bench("colt", || {
        v = (v + 7) % 3072;
        colt.lookup(Vpn(v))
    });
    bench("snakebyte", || {
        v = (v + 7) % 3072;
        snake.lookup(Vpn(v))
    });

    group("l2_cache");
    let cfg = GpuConfig::default();
    let mut cache = SectorCache::new(cfg.l2_cache.lines(), cfg.l2_cache.assoc);
    let flags = SectorFlags { valid: true, compressed: false, guaranteed: true, dirty: false };
    for i in 0..32_768u64 {
        cache.fill(PhysAddr(i * 128), flags);
    }
    let mut a = 0u64;
    bench("l2_cache_probe", || {
        a = (a + 131) % 65_536;
        cache.probe(PhysAddr(a * 128))
    });
    bench("l2_cache_fill", || {
        a = (a + 131) % 131_072;
        cache.fill(PhysAddr(a * 128), flags)
    });

    group("dram");
    let mut dram = Dram::new(GpuConfig::default().dram);
    let mut t = 0u64;
    let mut a = 0u64;
    bench("dram_access", || {
        a = a.wrapping_add(0x1243) & 0xFF_FFFF;
        t += 1;
        dram.access(PhysAddr(a * 32), DramOp::Read, t, 32)
    });

    group("event_calendar");
    // Steady-state schedule/pop churn at a realistic queue depth, with a
    // mix of near-future (ring) and far-future (overflow) horizons.
    let mut q: EventQueue<u32> = EventQueue::new();
    for i in 0..4096u64 {
        q.schedule(i % 512, i as u32);
    }
    let mut k = 0u64;
    bench("event_schedule_pop", || {
        let (t, ev) = q.pop().expect("queue stays non-empty");
        k = k.wrapping_add(1);
        let horizon = if k.is_multiple_of(64) { 5000 } else { k % 128 };
        q.schedule(t + 1 + horizon, ev);
        ev
    });

    group("page_walks");
    let mut pt = PageTable::new();
    for i in 0..4096u64 {
        pt.map_page(Vpn(i), Ppn(i + 512));
    }
    let mut ws = PageWalkSystem::new(GpuConfig::default().walker);
    let mut v = 0u64;
    bench("page_walk_dispatch_step", || {
        v = (v + 1) % 4096;
        let id = ws.enqueue(Vpn(v), pt.walk_levels(Vpn(v)), 0).expect("buffer space");
        ws.dispatch().expect("walker free");
        while let avatar_sim::walker::WalkProgress::Access(_) = ws.step(id).expect("live") {}
    });
}
