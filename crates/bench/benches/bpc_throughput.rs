//! Component bench: BPC codec throughput on representative sector
//! contents — the (de)compression engines Avatar adds to each memory
//! controller must keep up with channel bandwidth, so codec cost matters.

use avatar_bpc::{compress, decompress, embed_sector, inspect, PageInfo, Permissions};
use avatar_workloads::Workload;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn sectors_of(abbr: &str, n: u64) -> Vec<[u8; 32]> {
    let w = Workload::by_abbr(abbr).expect("workload");
    let c = w.content();
    (0..n).map(|i| c.bytes(i * 31)).collect()
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpc_compress");
    for abbr in ["GEMM", "SSSP", "SC", "XSB"] {
        let sectors = sectors_of(abbr, 256);
        g.bench_function(abbr, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % sectors.len();
                black_box(compress(&sectors[i]))
            })
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let sectors = sectors_of("GEMM", 256);
    let compressed: Vec<_> = sectors.iter().map(compress).collect();
    c.bench_function("bpc_decompress", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % compressed.len();
            black_box(decompress(&compressed[i]))
        })
    });
}

fn bench_embed_inspect(c: &mut Criterion) {
    let sectors = sectors_of("SSSP", 256);
    let info = PageInfo::new(0xABCD, Permissions::READ_WRITE, 1);
    c.bench_function("cava_embed", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sectors.len();
            black_box(embed_sector(&sectors[i], info))
        })
    });
    let stored: Vec<_> = sectors.iter().map(|s| embed_sector(s, info)).collect();
    c.bench_function("cava_inspect", |b| {
        b.iter_batched(
            || 0usize,
            |mut i| {
                i = (i + 1) % stored.len();
                black_box(inspect(stored[i].bytes()))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_compress, bench_roundtrip, bench_embed_inspect);
criterion_main!(benches);
