//! Component bench: BPC codec throughput on representative sector
//! contents — the (de)compression engines Avatar adds to each memory
//! controller must keep up with channel bandwidth, so codec cost matters.

use avatar_bench::timer::{bench, group};
use avatar_bpc::{compress, decompress, embed_sector, inspect, PageInfo, Permissions};
use avatar_workloads::Workload;

fn sectors_of(abbr: &str, n: u64) -> Vec<[u8; 32]> {
    let w = Workload::by_abbr(abbr).expect("workload");
    let c = w.content();
    (0..n).map(|i| c.bytes(i * 31)).collect()
}

fn main() {
    group("bpc_compress");
    for abbr in ["GEMM", "SSSP", "SC", "XSB"] {
        let sectors = sectors_of(abbr, 256);
        let mut i = 0;
        bench(abbr, || {
            i = (i + 1) % sectors.len();
            compress(&sectors[i])
        });
    }

    group("bpc_decompress");
    let sectors = sectors_of("GEMM", 256);
    let compressed: Vec<_> = sectors.iter().map(compress).collect();
    let mut i = 0;
    bench("bpc_decompress", || {
        i = (i + 1) % compressed.len();
        decompress(&compressed[i])
    });

    group("cava_embed_inspect");
    let sectors = sectors_of("SSSP", 256);
    let info = PageInfo::new(0xABCD, Permissions::READ_WRITE, 1);
    let mut i = 0;
    bench("cava_embed", || {
        i = (i + 1) % sectors.len();
        embed_sector(&sectors[i], info)
    });
    let stored: Vec<_> = sectors.iter().map(|s| embed_sector(s, info)).collect();
    let mut i = 0;
    bench("cava_inspect", || {
        i = (i + 1) % stored.len();
        inspect(stored[i].bytes())
    });
}
