//! Component bench: MOD and VPN-T predictor hot paths — these sit on the
//! L1-TLB-miss critical path, so per-lookup cost must be table-lookup
//! cheap.

use avatar_bench::timer::{bench, group};
use avatar_core::{ModTable, VpnTable};
use avatar_sim::addr::Vpn;

fn main() {
    group("mod");
    let mut table = ModTable::new(32, 2);
    // Pre-train 16 PCs.
    for pc in 0..16u64 {
        for _ in 0..3 {
            table.train(0x1000 + pc * 16, 512 + pc as i64);
        }
    }
    let mut pc = 0u64;
    bench("mod_predict_hit", || {
        pc = (pc + 1) % 16;
        table.predict(0x1000 + pc * 16)
    });
    bench("mod_predict_miss", || table.predict(0xDEAD_BEEF));
    let mut pc = 0u64;
    bench("mod_train", || {
        pc = (pc + 1) % 48; // includes replacement churn
        table.train(0x2000 + pc * 16, pc as i64);
    });

    group("vpnt");
    let mut table = VpnTable::new(32);
    for chunk in 0..16u64 {
        table.train(Vpn(chunk * 512), 512);
    }
    let mut v = 0u64;
    bench("vpnt_predict_hit", || {
        v = (v + 17) % (16 * 512);
        table.predict(Vpn(v))
    });
    let mut v = 0u64;
    bench("vpnt_train", || {
        v = (v + 512) % (64 * 512);
        table.train(Vpn(v), v as i64);
    });
}
