//! Component bench: MOD and VPN-T predictor hot paths — these sit on the
//! L1-TLB-miss critical path, so per-lookup cost must be table-lookup
//! cheap.

use avatar_core::{ModTable, VpnTable};
use avatar_sim::addr::Vpn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mod(c: &mut Criterion) {
    let mut table = ModTable::new(32, 2);
    // Pre-train 16 PCs.
    for pc in 0..16u64 {
        for _ in 0..3 {
            table.train(0x1000 + pc * 16, 512 + pc as i64);
        }
    }
    c.bench_function("mod_predict_hit", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 1) % 16;
            black_box(table.predict(0x1000 + pc * 16))
        })
    });
    c.bench_function("mod_predict_miss", |b| {
        b.iter(|| black_box(table.predict(0xDEAD_BEEF)))
    });
    c.bench_function("mod_train", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 1) % 48; // includes replacement churn
            table.train(0x2000 + pc * 16, pc as i64);
        })
    });
}

fn bench_vpnt(c: &mut Criterion) {
    let mut table = VpnTable::new(32);
    for chunk in 0..16u64 {
        table.train(Vpn(chunk * 512), 512);
    }
    c.bench_function("vpnt_predict_hit", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 17) % (16 * 512);
            black_box(table.predict(Vpn(v)))
        })
    });
    c.bench_function("vpnt_train", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 512) % (64 * 512);
            table.train(Vpn(v), v as i64);
        })
    });
}

criterion_group!(benches, bench_mod, bench_vpnt);
criterion_main!(benches);
