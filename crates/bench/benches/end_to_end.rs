//! Component bench: small end-to-end simulations per configuration —
//! tracks the simulator's own throughput (simulated work per wall-clock
//! second) so regressions in the engine's hot paths are visible.

use avatar_bench::timer::{bench, group};
use avatar_core::system::{run, RunOptions, SystemConfig};
use avatar_workloads::Workload;

fn opts() -> RunOptions {
    RunOptions { scale: 0.02, sms: Some(2), warps: Some(8), ..RunOptions::default() }
}

fn main() {
    group("end_to_end_small (SSSP)");
    let w = Workload::by_abbr("SSSP").expect("workload");
    for cfg in [
        SystemConfig::Baseline,
        SystemConfig::Promotion,
        SystemConfig::Colt,
        SystemConfig::SnakeByte,
        SystemConfig::Avatar,
    ] {
        bench(cfg.label(), || run(&w, cfg, &opts()));
    }

    group("end_to_end_avatar");
    for abbr in ["GEMM", "PAF", "XSB"] {
        let w = Workload::by_abbr(abbr).expect("workload");
        bench(abbr, || run(&w, SystemConfig::Avatar, &opts()));
    }
}
