//! Component bench: small end-to-end simulations per configuration —
//! tracks the simulator's own throughput (simulated work per wall-clock
//! second) so regressions in the engine's hot paths are visible.

use avatar_core::system::{run, RunOptions, SystemConfig};
use avatar_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn opts() -> RunOptions {
    RunOptions { scale: 0.02, sms: Some(2), warps: Some(8), ..RunOptions::default() }
}

fn bench_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_small");
    g.sample_size(10);
    let w = Workload::by_abbr("SSSP").expect("workload");
    for cfg in [
        SystemConfig::Baseline,
        SystemConfig::Promotion,
        SystemConfig::Colt,
        SystemConfig::SnakeByte,
        SystemConfig::Avatar,
    ] {
        g.bench_function(cfg.label(), |b| b.iter(|| black_box(run(&w, cfg, &opts()))));
    }
    g.finish();
}

fn bench_workload_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_avatar");
    g.sample_size(10);
    for abbr in ["GEMM", "PAF", "XSB"] {
        let w = Workload::by_abbr(abbr).expect("workload");
        g.bench_function(abbr, |b| b.iter(|| black_box(run(&w, SystemConfig::Avatar, &opts()))));
    }
    g.finish();
}

criterion_group!(benches, bench_configs, bench_workload_classes);
criterion_main!(benches);
