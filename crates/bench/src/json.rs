//! A minimal JSON value, emitter, and parser.
//!
//! The harness binaries dump machine-readable rows for EXPERIMENTS.md
//! bookkeeping. The crates.io registry is unreachable from the build
//! environment, so instead of serde this module provides the ~few dozen
//! lines the harnesses actually need: a [`Json`] value tree, `From`
//! conversions for the row field types, and a deterministic pretty
//! printer. Determinism matters beyond aesthetics — the runner's
//! 1-thread-vs-N-thread test asserts byte-identical dumps.
//!
//! [`Json::parse`] is the emitter's inverse, added for the result cache
//! ([`crate::cache`]): cache entries are stored as JSON and must be read
//! back with hard errors on malformed input, never silent defaults.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted with a decimal point or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved in the output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        // Row counters comfortably fit i64; saturate rather than wrap.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Pretty-prints with two-space indentation and a trailing newline,
    /// matching the layout of the previously committed result dumps.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document. Object field order is preserved (matching
    /// the emitter); duplicate keys are rejected. Any syntax error —
    /// including trailing garbage — is a hard error: the one caller that
    /// parses untrusted bytes (the result cache) must treat a mangled
    /// entry as corruption, not best-effort data.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Looks up an object field by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` ([`Json::Int`] or [`Json::Float`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursion guard for [`Json::parse`]: cache entries nest two levels
/// deep, so anything approaching this bound is hostile or corrupt input.
const MAX_PARSE_DEPTH: u32 = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&want) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", want as char, self.i))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err("nesting exceeds parser depth limit".to_string());
        }
        match self.b.get(self.i) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields: Vec<(String, Json)> = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate object key '{key}'"));
                    }
                    self.ws();
                    self.expect_byte(b':')?;
                    self.ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("malformed literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("non-UTF-8 number at offset {start}"))?;
        if text.is_empty() {
            return Err(format!("expected a value at offset {start}"));
        }
        // Rust's f64 parser accepts forms JSON forbids (`+5`, `1.`,
        // `.5`, `05`, `inf`), so the scanned token is validated against
        // the JSON grammar first — the cache's corruption detection
        // depends on every syntax deviation being a hard error.
        if !is_json_number(text.as_bytes()) {
            return Err(format!("malformed number '{text}' at offset {start}"));
        }
        if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(format!("malformed number '{text}' at offset {start}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.b.get(self.i) == Some(&b'\\')
                                    && self.b.get(self.i + 1) == Some(&b'u')
                                {
                                    self.i += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + low.checked_sub(0xdc00).ok_or("bad low surrogate")?;
                                    char::from_u32(combined).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(code).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#04x} in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "non-UTF-8 string payload".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .b
            .get(self.i..self.i + 4)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or("truncated \\u escape")?;
        self.i += 4;
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))
    }
}

/// JSON number grammar: `-? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?`.
fn is_json_number(b: &[u8]) -> bool {
    let mut i = 0;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while b.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !b.get(i).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
    }
    i == b.len()
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep whole-valued floats visibly floats ("2.0", not "2").
        let _ = write!(out, "{v:.1}");
    } else {
        // Rust's shortest-roundtrip formatting: deterministic and exact.
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json::Obj`] with field order as written:
/// `obj! { "workload": w.abbr, "speedup": 1.25 }`.
#[macro_export]
macro_rules! obj {
    ( $( $k:literal : $v:expr ),* $(,)? ) => {
        $crate::json::Json::Obj(vec![
            $( ($k.to_string(), $crate::json::Json::from($v)) ),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::from(2.0).pretty(), "2.0\n");
        assert_eq!(Json::from(0.125).pretty(), "0.125\n");
        assert_eq!(Json::from(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"\n");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::Arr(vec![obj! { "x": 1u64, "y": "z" }, Json::Arr(vec![])]);
        assert_eq!(v.pretty(), "[\n  {\n    \"x\": 1,\n    \"y\": \"z\"\n  },\n  []\n]\n");
    }

    #[test]
    fn obj_macro_preserves_field_order() {
        let v = obj! { "b": 1u64, "a": 2u64 };
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn option_and_vec_convert() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Int(3));
        assert_eq!(Json::from(vec![1u64, 2]), Json::Arr(vec![Json::Int(1), Json::Int(2)]));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || Json::Arr(vec![obj! { "w": "SSSP", "s": 1.5, "n": 42u64 }]);
        assert_eq!(build().pretty(), build().pretty());
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let doc = Json::Arr(vec![
            obj! {
                "s": "a\"b\\c\nd\ttab",
                "i": -42i64,
                "f": 0.125,
                "whole": 2.0,
                "t": true,
                "nothing": None::<u64>,
                "nested": vec![1u64, 2, 3],
            },
            Json::Arr(vec![]),
            obj! {},
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).expect("emitter output parses"), doc);
    }

    #[test]
    fn parse_accessors_extract_fields() {
        let v = Json::parse(r#"{"a": "x", "b": 3, "c": 1.5, "d": [true, null]}"#)
            .expect("valid document");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(1.5));
        let arr = v.get("d").and_then(Json::as_arr).expect("array field");
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_hard_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1 \"b\": 2}",
            "{\"a\": 1} trailing",
            "{\"dup\": 1, \"dup\": 2}",
            "\"unterminated",
            "\"bad escape \\q\"",
            "nul",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn parse_rejects_non_json_number_forms() {
        // f64::from_str is laxer than JSON; the grammar check must catch
        // every deviation it would otherwise wave through.
        for bad in ["+5", "1.", ".5", "05", "-.5", "1e", "1e+", "--1", "1.e5", "inf", "NaN"] {
            assert!(Json::parse(bad).is_err(), "must reject non-JSON number: {bad}");
        }
        for (good, want) in [
            ("0", Json::Int(0)),
            ("-0", Json::Int(0)),
            ("42", Json::Int(42)),
            ("1.25", Json::Float(1.25)),
            ("-0.5e+2", Json::Float(-50.0)),
            ("2E-1", Json::Float(0.2)),
            ("1e9", Json::Float(1e9)),
        ] {
            assert_eq!(Json::parse(good).expect("valid JSON number"), want, "for {good}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = Json::parse(r#""\u00e9 \ud83d\ude00 caf\u00e9""#).expect("escapes parse");
        assert_eq!(v.as_str(), Some("é 😀 café"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn parse_preserves_object_field_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).expect("valid document");
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            _ => unreachable!(),
        }
    }
}
