//! A minimal JSON value and emitter.
//!
//! The harness binaries dump machine-readable rows for EXPERIMENTS.md
//! bookkeeping. The crates.io registry is unreachable from the build
//! environment, so instead of serde this module provides the ~few dozen
//! lines the harnesses actually need: a [`Json`] value tree, `From`
//! conversions for the row field types, and a deterministic pretty
//! printer. Determinism matters beyond aesthetics — the runner's
//! 1-thread-vs-N-thread test asserts byte-identical dumps.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted with a decimal point or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved in the output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        // Row counters comfortably fit i64; saturate rather than wrap.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Pretty-prints with two-space indentation and a trailing newline,
    /// matching the layout of the previously committed result dumps.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep whole-valued floats visibly floats ("2.0", not "2").
        let _ = write!(out, "{v:.1}");
    } else {
        // Rust's shortest-roundtrip formatting: deterministic and exact.
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Json::Obj`] with field order as written:
/// `obj! { "workload": w.abbr, "speedup": 1.25 }`.
#[macro_export]
macro_rules! obj {
    ( $( $k:literal : $v:expr ),* $(,)? ) => {
        $crate::json::Json::Obj(vec![
            $( ($k.to_string(), $crate::json::Json::from($v)) ),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-3).pretty(), "-3\n");
        assert_eq!(Json::from(2.0).pretty(), "2.0\n");
        assert_eq!(Json::from(0.125).pretty(), "0.125\n");
        assert_eq!(Json::from(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"\n");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::Arr(vec![obj! { "x": 1u64, "y": "z" }, Json::Arr(vec![])]);
        assert_eq!(v.pretty(), "[\n  {\n    \"x\": 1,\n    \"y\": \"z\"\n  },\n  []\n]\n");
    }

    #[test]
    fn obj_macro_preserves_field_order() {
        let v = obj! { "b": 1u64, "a": 2u64 };
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn option_and_vec_convert() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Int(3));
        assert_eq!(Json::from(vec![1u64, 2]), Json::Arr(vec![Json::Int(1), Json::Int(2)]));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || Json::Arr(vec![obj! { "w": "SSSP", "s": 1.5, "n": 42u64 }]);
        assert_eq!(build().pretty(), build().pretty());
    }
}
