//! Content-addressed on-disk result cache for sweep cells.
//!
//! A figure sweep is a grid of deterministic simulations: the same
//! `(workload, policy selection, run options, GpuConfig, engine build)`
//! cell always produces the same [`Stats`]. Re-running a 45-minute
//! paper-scale sweep because one workload row changed is pure waste, so
//! the runner consults this cache before spawning cells.
//!
//! **Key derivation.** A cell's cache key is an FNV-1a digest over
//! every input that can influence its result:
//!
//! * `Workload::key_digest()` — every field of the workload spec;
//! * `PolicySelection::key_digest()` — which policy stack is assembled
//!   (registry name + modifiers; `SystemConfig` cells key via their
//!   registry alias);
//! * `RunOptions::key_digest()` — scale, seed, geometry, codec
//!   (trace destinations are excluded: observers, not inputs);
//! * the post-tweak `GpuConfig::key_digest()` — the full hardware
//!   model configuration, after ablation tweaks;
//! * the **engine fingerprint** — a build-time FNV digest over the
//!   source trees of every result-affecting crate (`avatar-sim`,
//!   `avatar-core`, `avatar-workloads`, `avatar-bpc`,
//!   `avatar-baselines`; see [`avatar_sim::engine_fingerprint`]), so
//!   any change to code that can influence a cell's `Stats` — engine,
//!   CAST policy, content model, codec, or baseline TLB — invalidates
//!   every prior entry even if it would happen to keep results stable.
//!
//! All three `key_digest` methods use exhaustive destructuring: adding
//! a field to `Workload`, `RunOptions`, or `GpuConfig` without folding
//! it into the key is a compile error (and the `cache-key-completeness`
//! avatar-lint rule denies `..` rest patterns in those functions).
//!
//! **Entry format.** One JSON file per key (`<dir>/<key:016x>.json`),
//! schema-versioned (`avatar-cache/1`), holding the recorded engine
//! fingerprint, the cell's `Stats::digest()`, its wall time, and the
//! `Stats` payload hex-encoded via the checkpoint [`Writer`]. Writes go
//! through a temp file + atomic rename so concurrent sweeps sharing a
//! cache directory never observe a torn entry.
//!
//! **Trust model.** A replayed entry is *re-verified*: the decoded
//! `Stats::digest()` must equal the recorded digest, and both must be
//! internally consistent. A mismatch is a hard `DETERMINISM` error —
//! never a silent fallback to the cached value, never a silent re-run —
//! because a mangled cache that still parses is exactly how a stale
//! result sneaks into a paper table. A *fingerprint* mismatch, by
//! contrast, is an ordinary miss: the entry was recorded by a different
//! engine build and simply no longer applies.

use crate::json::Json;
use crate::obj;
use avatar_core::policy::PolicySelection;
use avatar_core::system::RunOptions;
use avatar_sim::checkpoint::{Reader, Writer};
use avatar_sim::config::GpuConfig;
use avatar_sim::invariant::Fnv64;
use avatar_sim::Stats;
use avatar_workloads::Workload;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Entry schema identifier; bump on any layout change. A file with a
/// different schema is treated as a miss (old format, not corruption).
pub const SCHEMA: &str = "avatar-cache/1";

/// Default cache directory when neither `--cache` nor `AVATAR_CACHE`
/// names one.
pub const DEFAULT_DIR: &str = "target/avatar-cache";

/// Computes the content-address of one sweep cell. `cfg` must be the
/// *post-tweak* config — the one the engine is actually assembled from.
pub fn cell_key(
    workload: &Workload,
    policy: PolicySelection,
    opts: &RunOptions,
    cfg: &GpuConfig,
) -> u64 {
    cell_key_with_fingerprint(workload, policy, opts, cfg, avatar_sim::engine_fingerprint())
}

/// [`cell_key`] with an explicit engine fingerprint (stale-cache tests).
pub fn cell_key_with_fingerprint(
    workload: &Workload,
    policy: PolicySelection,
    opts: &RunOptions,
    cfg: &GpuConfig,
    fingerprint: &str,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(workload.key_digest());
    h.write_u64(policy.key_digest());
    h.write_u64(opts.key_digest());
    h.write_u64(cfg.key_digest());
    h.write_u64(fingerprint.len() as u64);
    for b in fingerprint.bytes() {
        h.write_u64(u64::from(b));
    }
    h.finish()
}

/// A successfully replayed cache entry.
#[derive(Debug, Clone)]
pub struct CachedCell {
    /// The recorded simulation statistics, digest-re-verified.
    pub stats: Stats,
    /// Wall time the original run took (the time the replay saved).
    pub wall_s: f64,
}

/// A content-addressed result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    fingerprint: String,
}

impl ResultCache {
    /// A cache rooted at `dir`, keyed by this build's engine fingerprint.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_fingerprint(dir, avatar_sim::engine_fingerprint())
    }

    /// A cache with an explicit fingerprint — test hook for proving that
    /// entries recorded by a different engine build are misses.
    pub fn with_fingerprint(dir: impl Into<PathBuf>, fingerprint: &str) -> Self {
        Self { dir: dir.into(), fingerprint: fingerprint.to_string() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file for a key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Looks up a cell. `Ok(None)` is a miss (no entry, old schema, or
    /// an entry recorded under a different engine fingerprint).
    /// `Err` is a hard error: the entry exists, claims to match, and
    /// fails verification — corruption or a determinism violation.
    pub fn load(&self, key: u64) -> Result<Option<CachedCell>, String> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cache entry {} unreadable: {e}", path.display())),
        };
        let doc = Json::parse(&text)
            .map_err(|e| format!("cache entry {} is malformed JSON: {e}", path.display()))?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Ok(None); // older/newer format: a miss, not corruption
        }
        match doc.get("engine_fingerprint").and_then(Json::as_str) {
            Some(fp) if fp == self.fingerprint => {}
            Some(_) => return Ok(None), // recorded by a different engine build
            None => {
                return Err(format!(
                    "cache entry {} has no engine fingerprint",
                    path.display()
                ));
            }
        }
        let field_str = |name: &str| -> Result<&str, String> {
            doc.get(name).and_then(Json::as_str).ok_or_else(|| {
                format!("cache entry {} is missing \"{name}\"", path.display())
            })
        };
        let recorded_key = u64::from_str_radix(field_str("key")?, 16)
            .map_err(|e| format!("cache entry {} has a bad key: {e}", path.display()))?;
        if recorded_key != key {
            return Err(format!(
                "cache entry {} records key {recorded_key:016x} but was addressed as \
                 {key:016x}: the store is corrupt",
                path.display()
            ));
        }
        let recorded_digest = u64::from_str_radix(field_str("stats_digest")?, 16)
            .map_err(|e| format!("cache entry {} has a bad digest: {e}", path.display()))?;
        let wall_s = doc
            .get("wall_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cache entry {} is missing \"wall_s\"", path.display()))?;
        let bytes = decode_hex(field_str("stats_hex")?)
            .map_err(|e| format!("cache entry {} stats payload: {e}", path.display()))?;
        let mut stats = Stats::default();
        let mut r = Reader::new(&bytes);
        stats
            .load_state(&mut r)
            .map_err(|e| format!("cache entry {} stats payload: {e}", path.display()))?;
        if r.remaining() != 0 {
            return Err(format!(
                "cache entry {} stats payload has {} trailing bytes",
                path.display(),
                r.remaining()
            ));
        }
        // The re-verification the whole design hinges on: the decoded
        // statistics must reproduce the digest recorded at store time.
        let digest = stats.digest();
        if digest != recorded_digest {
            return Err(format!(
                "DETERMINISM: cache entry {} decodes to stats digest {digest:#018x} but \
                 records {recorded_digest:#018x}; refusing to replay",
                path.display()
            ));
        }
        Ok(Some(CachedCell { stats, wall_s }))
    }

    /// Records a cell's result. Write errors are returned, not fatal —
    /// a read-only cache directory degrades to a no-op cache.
    pub fn store(&self, key: u64, stats: &Stats, wall_s: f64) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cache dir {}: {e}", self.dir.display()))?;
        let mut w = Writer::new();
        stats.save_state(&mut w);
        let entry = obj! {
            "schema": SCHEMA,
            "engine_fingerprint": self.fingerprint.as_str(),
            "key": format!("{key:016x}"),
            "stats_digest": format!("{:016x}", stats.digest()),
            "wall_s": wall_s,
            "stats_hex": encode_hex(&w.into_bytes()),
        };
        let path = self.entry_path(key);
        // Temp + rename: concurrent sweeps sharing the directory either
        // see the old entry or the complete new one, never a torn write.
        let tmp = self.dir.join(format!(".{key:016x}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, entry.pretty())
            .map_err(|e| format!("cache write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cache rename {}: {e}", path.display())
        })
    }
}

fn encode_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_string());
    }
    let tb = text.as_bytes();
    let mut out = Vec::with_capacity(text.len() / 2);
    for pair in tb.chunks_exact(2) {
        let hex = std::str::from_utf8(pair).map_err(|_| "non-ASCII hex payload".to_string())?;
        out.push(u8::from_str_radix(hex, 16).map_err(|e| format!("bad hex byte '{hex}': {e}"))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Process-global cache handle + hit/miss tallies.
// ---------------------------------------------------------------------------

/// The process-wide cache, set once by [`configure`]. `None` inside the
/// option means "explicitly disabled"; an unset lock means the harness
/// never configured caching (tests, direct library use) — both disable.
static GLOBAL: OnceLock<Option<ResultCache>> = OnceLock::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static MEMOIZED: AtomicU64 = AtomicU64::new(0);
static SKIPPED_WALL_US: AtomicU64 = AtomicU64::new(0);

/// Installs the process-global cache (first caller wins; later calls are
/// no-ops returning `false`). `HarnessArgs::parse_with` calls this from
/// the resolved `--cache`/`--no-cache`/`AVATAR_CACHE` knobs; a harness
/// that must never replay (the throughput timing bin) calls
/// `configure(None)` *before* parsing to pin the cache off.
pub fn configure(cache: Option<ResultCache>) -> bool {
    GLOBAL.set(cache).is_ok()
}

/// The process-global cache, if configured and enabled.
pub fn global() -> Option<&'static ResultCache> {
    GLOBAL.get().and_then(|c| c.as_ref())
}

/// Records a disk hit that skipped `wall_s` seconds of simulation.
pub fn note_hit(wall_s: f64) {
    HITS.fetch_add(1, Ordering::Relaxed);
    note_skipped(wall_s);
}

/// Records a disk miss (the cell will run and be stored).
pub fn note_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records an in-process memoized replay (duplicate cell in one sweep)
/// that skipped `wall_s` seconds of simulation.
pub fn note_memoized(wall_s: f64) {
    MEMOIZED.fetch_add(1, Ordering::Relaxed);
    note_skipped(wall_s);
}

fn note_skipped(wall_s: f64) {
    // Microsecond integer ticks: u64 atomics exist everywhere, f64
    // atomics don't, and sweep wall times don't need sub-µs resolution.
    let us = (wall_s * 1e6).max(0.0).min(u64::MAX as f64) as u64;
    SKIPPED_WALL_US.fetch_add(us, Ordering::Relaxed);
}

/// Snapshot of the process-wide cache counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheTally {
    /// Cells replayed from disk.
    pub hits: u64,
    /// Cells that ran because no valid entry existed.
    pub misses: u64,
    /// Cells replayed from an identical cell earlier in the same sweep.
    pub memoized: u64,
    /// Total simulation wall time the replays skipped, in seconds.
    pub skipped_wall_s: f64,
}

/// Reads the current cache counters (cumulative for the process).
pub fn tally() -> CacheTally {
    CacheTally {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        memoized: MEMOIZED.load(Ordering::Relaxed),
        skipped_wall_s: SKIPPED_WALL_US.load(Ordering::Relaxed) as f64 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avatar_core::system::SystemConfig;
    use std::sync::atomic::AtomicU32;

    /// A fresh scratch directory per test; `std::env::temp_dir` + pid +
    /// counter keeps parallel test threads and parallel CI jobs apart
    /// without wall-clock or OS entropy.
    fn scratch_dir() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("avatar-cache-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> Stats {
        Stats { loads: 1234, cycles: 98765, l1_tlb_hits: 42, ..Stats::default() }
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        let stats = sample_stats();
        cache.store(7, &stats, 1.25).expect("store succeeds");
        let cell = cache.load(7).expect("load succeeds").expect("entry present");
        assert_eq!(cell.stats.digest(), stats.digest());
        assert_eq!(cell.stats.loads, stats.loads);
        assert_eq!(cell.wall_s, 1.25);
        // No temp litter after a successful store.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("cache dir listable")
            .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["0000000000000007.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        assert!(cache.load(99).expect("clean miss").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_engine_fingerprint_is_a_miss_not_an_error() {
        // The stale-cache negative test: an entry recorded by engine
        // build A must be a miss for engine build B, never a replay.
        let dir = scratch_dir();
        let old_engine = ResultCache::with_fingerprint(&dir, "aaaaaaaaaaaaaaaa");
        old_engine.store(7, &sample_stats(), 0.5).expect("store succeeds");
        let new_engine = ResultCache::with_fingerprint(&dir, "bbbbbbbbbbbbbbbb");
        assert!(
            new_engine.load(7).expect("fingerprint mismatch is a clean miss").is_none(),
            "entry from another engine build must not replay"
        );
        // The original build still hits.
        assert!(old_engine.load(7).expect("load succeeds").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_stats_payload_is_a_hard_error() {
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        cache.store(7, &sample_stats(), 0.5).expect("store succeeds");
        // Flip one byte of the hex payload: the decoded stats no longer
        // reproduce the recorded digest.
        let path = cache.entry_path(7);
        let text = std::fs::read_to_string(&path).expect("entry readable");
        let tampered = text.replacen("\"stats_hex\": \"", "\"stats_hex\": \"ff", 1);
        assert_ne!(text, tampered, "tamper must change the payload");
        std::fs::write(&path, tampered).expect("tamper write");
        let err = cache.load(7).expect_err("tampered payload must be a hard error");
        assert!(err.contains("cache entry"), "error names the entry: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_digest_is_a_determinism_error() {
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        let stats = sample_stats();
        cache.store(7, &stats, 0.5).expect("store succeeds");
        let path = cache.entry_path(7);
        let text = std::fs::read_to_string(&path).expect("entry readable");
        let recorded = format!("{:016x}", stats.digest());
        let forged = format!("{:016x}", stats.digest() ^ 1);
        let tampered = text.replacen(&recorded, &forged, 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).expect("tamper write");
        let err = cache.load(7).expect_err("forged digest must be a hard error");
        assert!(err.contains("DETERMINISM"), "error is a determinism violation: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_is_a_miss() {
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        cache.store(7, &sample_stats(), 0.5).expect("store succeeds");
        let path = cache.entry_path(7);
        let text = std::fs::read_to_string(&path).expect("entry readable");
        std::fs::write(&path, text.replace(SCHEMA, "avatar-cache/0")).expect("rewrite");
        assert!(cache.load(7).expect("old schema is a clean miss").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_address_checked() {
        // An entry copied to the wrong address is corruption, not a hit.
        let dir = scratch_dir();
        let cache = ResultCache::with_fingerprint(&dir, "deadbeefdeadbeef");
        cache.store(7, &sample_stats(), 0.5).expect("store succeeds");
        std::fs::copy(cache.entry_path(7), cache.entry_path(8)).expect("copy entry");
        assert!(cache.load(8).is_err(), "mis-addressed entry must hard-error");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_codec_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_hex(&encode_hex(&bytes)).expect("valid hex"), bytes);
        assert!(decode_hex("abc").is_err(), "odd length rejected");
        assert!(decode_hex("zz").is_err(), "non-hex rejected");
    }

    #[test]
    fn cell_key_separates_inputs() {
        let w = Workload::by_abbr("GEMM").expect("workload table contains GEMM");
        let w2 = Workload::by_abbr("SSSP").expect("workload table contains SSSP");
        let opts = RunOptions::default();
        let cfg = GpuConfig::rtx3070();
        let avatar = PolicySelection::parse("avatar").expect("registry name");
        let baseline = PolicySelection::parse("baseline").expect("registry name");
        let avatar_dead = PolicySelection::parse("avatar+dead").expect("registry name");
        let base = cell_key_with_fingerprint(&w, avatar, &opts, &cfg, "fp");
        // Stable.
        assert_eq!(
            base,
            cell_key_with_fingerprint(&w, avatar, &opts, &cfg, "fp")
        );
        // Enum aliases key identically to their registry selection.
        assert_eq!(
            base,
            cell_key_with_fingerprint(&w, SystemConfig::Avatar.into(), &opts, &cfg, "fp")
        );
        // Every key input separates.
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w2, avatar, &opts, &cfg, "fp")
        );
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w, baseline, &opts, &cfg, "fp")
        );
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w, avatar_dead, &opts, &cfg, "fp"),
            "policy modifiers must separate cells"
        );
        let mut opts2 = opts.clone();
        opts2.seed ^= 1;
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w, avatar, &opts2, &cfg, "fp")
        );
        let mut cfg2 = cfg.clone();
        cfg2.num_sms += 1;
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w, avatar, &opts, &cfg2, "fp")
        );
        assert_ne!(
            base,
            cell_key_with_fingerprint(&w, avatar, &opts, &cfg, "fp2")
        );
    }
}
