//! Minimal self-timing harness for the component benches.
//!
//! The `benches/*.rs` targets are plain `harness = false` binaries (the
//! registry is unreachable, so no criterion). Each measurement
//! self-calibrates its batch size, takes the best of several batches (the
//! least-interference estimate), and prints one `ns/iter` line — enough
//! to spot hot-path regressions from run to run.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall time one measured batch must cover.
const BATCH_FLOOR: Duration = Duration::from_millis(10);
/// Batches measured per benchmark (best one is reported).
const BATCHES: u32 = 5;

/// Times `f` and prints `<name>  <ns>/iter`. The closure result is passed
/// through [`black_box`] so the work is not optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: grow the batch until it runs long enough to time reliably
    // (this doubles as warm-up for caches and branch predictors).
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t.elapsed() >= BATCH_FLOOR || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = t.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    if best >= 1e6 {
        println!("{name:<32} {:>12.3} ms/iter ({iters} iters/batch)", best / 1e6);
    } else {
        println!("{name:<32} {best:>12.1} ns/iter ({iters} iters/batch)");
    }
}

/// Prints a section header for a group of related measurements.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Smoke test: a trivial closure must calibrate and finish.
        bench("noop", || 1 + 1);
    }
}
