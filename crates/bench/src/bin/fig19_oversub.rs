//! Fig 19: performance under 130% memory oversubscription, normalized to
//! the (equally oversubscribed) baseline.
//!
//! Paper: prior TLB-reach techniques lose effectiveness because chunk
//! evictions shoot down their merged entries; Avatar stays ≥14.3% ahead.
//! LMD, FW, and GEMM are excluded (working sets too small), as in the
//! paper.

use avatar_bench::{geomean, print_table, HarnessOpts};
use avatar_core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

const EXCLUDED: [&str; 3] = ["LMD", "FW", "GEMM"];

#[derive(Serialize)]
struct Row {
    workload: String,
    speedups: Vec<(String, f64)>,
    evictions: u64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = RunOptions { oversubscription: Some(1.3), ..opts.run_options() };
    let configs = [
        SystemConfig::Promotion,
        SystemConfig::Colt,
        SystemConfig::SnakeByte,
        SystemConfig::Avatar,
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for w in Workload::all() {
        if EXCLUDED.contains(&w.abbr) {
            continue;
        }
        let base = run(&w, SystemConfig::Baseline, &ro);
        let mut cells = vec![w.abbr.to_string()];
        let mut speedups = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let s = run(&w, *cfg, &ro);
            let x = speedup(&base, &s);
            per_config[i].push(x);
            cells.push(format!("{x:.3}"));
            speedups.push((cfg.label().to_string(), x));
        }
        cells.push(base.chunks_evicted.to_string());
        eprintln!("done {}", w.abbr);
        json_rows.push(Row {
            workload: w.abbr.to_string(),
            speedups,
            evictions: base.chunks_evicted,
        });
        rows.push(cells);
    }

    let mut gmean = vec!["GMEAN".to_string()];
    for xs in &per_config {
        gmean.push(format!("{:.3}", geomean(xs)));
    }
    gmean.push("-".into());
    rows.push(gmean);

    let mut headers = vec!["Workload"];
    headers.extend(configs.iter().map(|c| c.label()));
    headers.push("Evictions(base)");
    println!("\nFig 19: speedup over baseline under 130% oversubscription");
    print_table(&headers, &rows);
    println!("\npaper: Avatar keeps a >=14.3% gap over prior techniques under oversubscription");
    opts.dump_json(&json_rows);
}
