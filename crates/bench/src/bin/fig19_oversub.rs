//! Fig 19: performance under 130% memory oversubscription, normalized to
//! the (equally oversubscribed) baseline.
//!
//! Paper: prior TLB-reach techniques lose effectiveness because chunk
//! evictions shoot down their merged entries; Avatar stays ≥14.3% ahead.
//! LMD, FW, and GEMM are excluded (working sets too small), as in the
//! paper.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, obj, print_table, HarnessArgs};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_workloads::Workload;

const EXCLUDED: [&str; 3] = ["LMD", "FW", "GEMM"];

fn main() {
    let opts = HarnessArgs::parse();
    let ro = RunOptions { oversubscription: Some(1.3), ..opts.run_options() };
    let configs = [
        SystemConfig::Promotion,
        SystemConfig::Colt,
        SystemConfig::SnakeByte,
        SystemConfig::Avatar,
    ];
    let workloads: Vec<Workload> =
        Workload::all().into_iter().filter(|w| !EXCLUDED.contains(&w.abbr)).collect();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        for cfg in configs {
            scenarios.push(Scenario::new(cfg.label(), w, cfg, ro.clone()));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = configs.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for (wi, w) in workloads.iter().enumerate() {
        let base = &results[wi * stride];
        let mut cells = vec![w.abbr.to_string()];
        let mut speedups = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let x = speedup_cell(base, &results[wi * stride + 1 + i]);
            if let Some(x) = x {
                per_config[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": cfg.label(), "speedup": x });
        }
        let evictions = base.stats.as_ref().map(|s| s.chunks_evicted).unwrap_or(0);
        cells.push(evictions.to_string());
        json_rows.push(obj! {
            "workload": w.abbr,
            "speedups": Json::Arr(speedups),
            "evictions": evictions,
        });
        rows.push(cells);
    }

    let mut gmean = vec!["GMEAN".to_string()];
    for xs in &per_config {
        gmean.push(format!("{:.3}", geomean(xs)));
    }
    gmean.push("-".into());
    rows.push(gmean);

    let mut headers = vec!["Workload"];
    headers.extend(configs.iter().map(|c| c.label()));
    headers.push("Evictions(base)");
    println!("\nFig 19: speedup over baseline under 130% oversubscription");
    print_table(&headers, &rows);
    println!("\npaper: Avatar keeps a >=14.3% gap over prior techniques under oversubscription");
    opts.dump_json(&json_rows);
}
