//! Ablation and sensitivity studies for Avatar's design choices (beyond
//! the paper's figures): EAF on/off, MOD sizing, confidence threshold,
//! CAVA decompression latency, and the §III-D VIPT/PIPT cache arrangement.
//!
//! `--abbr <ABBR>` selects the workload (default SSSP).

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{obj, print_table, ExtraFlag, HarnessArgs};
use avatar_core::system::{speedup, SystemConfig};
use avatar_sim::config::CacheArrangement;
use avatar_sim::Stats;
use avatar_workloads::Workload;

const MOD_ENTRIES: [usize; 5] = [4, 8, 16, 32, 64];
const THRESHOLDS: [u8; 3] = [1, 2, 3];
const DECOMP_LATENCIES: [u64; 4] = [0, 7, 14, 28];
const MIGRATE_THRESHOLDS: [u32; 3] = [1, 2, 4];
const ARRANGEMENTS: [(&str, CacheArrangement); 2] =
    [("VIPT", CacheArrangement::Vipt), ("PIPT", CacheArrangement::Pipt)];

fn main() {
    let opts = HarnessArgs::parse_with(&[ExtraFlag {
        flag: "--abbr",
        value_name: Some("WL"),
        help: "workload abbreviation to study (default SSSP)",
    }]);
    let abbr = opts.extra_value("--abbr").unwrap_or("SSSP").to_string();
    let w = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload {abbr}");
        std::process::exit(1);
    });
    let ro = opts.run_options();

    // The whole study is one flat grid of independent cells; every sweep
    // variant is a tweak on top of the Avatar configuration.
    let mut scenarios = vec![Scenario::new("Baseline", &w, SystemConfig::Baseline, ro.clone())];
    for (variant, cfg) in [
        ("CAST only", SystemConfig::CastOnly),
        ("CAST+CAVA (no EAF)", SystemConfig::AvatarNoEaf),
        ("full Avatar", SystemConfig::Avatar),
    ] {
        scenarios.push(Scenario::new(variant, &w, cfg, ro.clone()));
    }
    for entries in MOD_ENTRIES {
        scenarios.push(
            Scenario::new(format!("mod-{entries}"), &w, SystemConfig::Avatar, ro.clone())
                .with_tweak(move |c| c.spec.mod_entries = entries),
        );
    }
    for threshold in THRESHOLDS {
        scenarios.push(
            Scenario::new(format!("thr-{threshold}"), &w, SystemConfig::Avatar, ro.clone())
                .with_tweak(move |c| c.spec.confidence_threshold = threshold),
        );
    }
    for lat in DECOMP_LATENCIES {
        scenarios.push(
            Scenario::new(format!("decomp-{lat}"), &w, SystemConfig::Avatar, ro.clone())
                .with_tweak(move |c| c.spec.decompression_latency = lat),
        );
    }
    for threshold in MIGRATE_THRESHOLDS {
        scenarios.push(
            Scenario::new(format!("migrate-{threshold}"), &w, SystemConfig::Avatar, ro.clone())
                .with_tweak(move |c| c.uvm.migration_threshold = threshold),
        );
    }
    for (name, arr) in ARRANGEMENTS {
        scenarios.push(
            Scenario::new(format!("{name}-avatar"), &w, SystemConfig::Avatar, ro.clone())
                .with_tweak(move |c| c.l1_arrangement = arr),
        );
        scenarios.push(
            Scenario::new(format!("{name}-base"), &w, SystemConfig::Baseline, ro.clone())
                .with_tweak(move |c| c.l1_arrangement = arr),
        );
    }

    let results = run_scenarios(opts.threads, scenarios);
    let mut it = results.iter();
    let base = it.next().expect("baseline cell").expect_stats();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    let mut record = |study: &str, variant: &str, x: f64, s: &Stats, starred: bool| {
        rows.push(vec![
            study.to_string(),
            variant.to_string(),
            format!("{:.3}{}", x, if starred { "*" } else { "" }),
            format!("{:.1}%", s.spec_accuracy() * 100.0),
            format!("{:.1}%", s.spec_coverage() * 100.0),
        ]);
        json.push(obj! {
            "study": study,
            "variant": variant,
            "speedup": x,
            "accuracy": s.spec_accuracy(),
            "coverage": s.spec_coverage(),
        });
    };

    // 1) Component ablation.
    for variant in ["CAST only", "CAST+CAVA (no EAF)", "full Avatar"] {
        let s = it.next().expect("components cell").expect_stats();
        record("components", variant, speedup(base, s), s, false);
    }
    // 2) MOD capacity sweep (paper fixes 32).
    for entries in MOD_ENTRIES {
        let s = it.next().expect("mod-entries cell").expect_stats();
        record("mod-entries", &entries.to_string(), speedup(base, s), s, false);
    }
    // 3) Confidence threshold sweep (paper fixes 2).
    for threshold in THRESHOLDS {
        let s = it.next().expect("threshold cell").expect_stats();
        record("threshold", &threshold.to_string(), speedup(base, s), s, false);
    }
    // 4) Decompression latency sweep (paper assumes 7 cycles).
    for lat in DECOMP_LATENCIES {
        let s = it.next().expect("decomp cell").expect_stats();
        record("decomp-latency", &lat.to_string(), speedup(base, s), s, false);
    }
    // 5) Access-counter migration threshold (§III-D): cold pages are
    //    served remotely until they prove hot; MOD only trains on
    //    GPU-mapped regions.
    for threshold in MIGRATE_THRESHOLDS {
        let s = it.next().expect("migrate cell").expect_stats();
        record("migrate-threshold", &threshold.to_string(), speedup(base, s), s, false);
    }
    // 6) Cache arrangement (§III-D): Avatar works under VIPT and PIPT;
    //    speedup is vs the same-arrangement baseline.
    for (name, _) in ARRANGEMENTS {
        let s = it.next().expect("arrangement avatar cell").expect_stats();
        let b = it.next().expect("arrangement baseline cell").expect_stats();
        let rel = b.cycles as f64 / s.cycles as f64;
        record("l1-arrangement", name, rel, s, true);
    }

    println!("\nAblation & sensitivity: {} (speedup vs baseline; * = vs same-arrangement baseline)", w.abbr);
    print_table(&["Study", "Variant", "Speedup", "Accuracy", "Coverage"], &rows);
    opts.dump_json(&json);
}
