//! Ablation and sensitivity studies for Avatar's design choices (beyond
//! the paper's figures): EAF on/off, MOD sizing, confidence threshold,
//! CAVA decompression latency, and the §III-D VIPT/PIPT cache arrangement.
//!
//! `--abbr <ABBR>` selects the workload (default SSSP).

use avatar_bench::{print_table, HarnessOpts};
use avatar_core::system::{run, run_with, speedup, SystemConfig};
use avatar_sim::config::CacheArrangement;
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    study: String,
    variant: String,
    speedup: f64,
    accuracy: f64,
    coverage: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let abbr = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--abbr")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "SSSP".to_string());
    let w = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload {abbr}");
        std::process::exit(1);
    });
    let ro = opts.run_options();
    let base = run(&w, SystemConfig::Baseline, &ro);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json: Vec<Row> = Vec::new();
    fn record(
        rows: &mut Vec<Vec<String>>,
        json: &mut Vec<Row>,
        study: &str,
        variant: &str,
        x: f64,
        s: &avatar_sim::Stats,
        starred: bool,
    ) {
        let row = Row {
            study: study.to_string(),
            variant: variant.to_string(),
            speedup: x,
            accuracy: s.spec_accuracy(),
            coverage: s.spec_coverage(),
        };
        rows.push(vec![
            row.study.clone(),
            row.variant.clone(),
            format!("{:.3}{}", row.speedup, if starred { "*" } else { "" }),
            format!("{:.1}%", row.accuracy * 100.0),
            format!("{:.1}%", row.coverage * 100.0),
        ]);
        json.push(row);
    }

    // 1) Component ablation.
    for (variant, cfg) in [
        ("CAST only", SystemConfig::CastOnly),
        ("CAST+CAVA (no EAF)", SystemConfig::AvatarNoEaf),
        ("full Avatar", SystemConfig::Avatar),
    ] {
        let s = run(&w, cfg, &ro);
        record(&mut rows, &mut json, "components", variant, speedup(&base, &s), &s, false);
        eprintln!("components/{variant} done");
    }

    // 2) MOD capacity sweep (paper fixes 32).
    for entries in [4usize, 8, 16, 32, 64] {
        let s = run_with(&w, SystemConfig::Avatar, &ro, |c| c.spec.mod_entries = entries);
        record(&mut rows, &mut json, "mod-entries", &entries.to_string(), speedup(&base, &s), &s, false);
        eprintln!("mod-entries/{entries} done");
    }

    // 3) Confidence threshold sweep (paper fixes 2).
    for threshold in [1u8, 2, 3] {
        let s = run_with(&w, SystemConfig::Avatar, &ro, |c| c.spec.confidence_threshold = threshold);
        record(&mut rows, &mut json, "threshold", &threshold.to_string(), speedup(&base, &s), &s, false);
        eprintln!("threshold/{threshold} done");
    }

    // 4) Decompression latency sweep (paper assumes 7 cycles).
    for lat in [0u64, 7, 14, 28] {
        let s = run_with(&w, SystemConfig::Avatar, &ro, |c| c.spec.decompression_latency = lat);
        record(&mut rows, &mut json, "decomp-latency", &lat.to_string(), speedup(&base, &s), &s, false);
        eprintln!("decomp/{lat} done");
    }

    // 5) Access-counter migration threshold (§III-D): cold pages are
    //    served remotely until they prove hot; MOD only trains on
    //    GPU-mapped regions.
    for threshold in [1u32, 2, 4] {
        let s = run_with(&w, SystemConfig::Avatar, &ro, |c| c.uvm.migration_threshold = threshold);
        record(&mut rows, &mut json, "migrate-threshold", &threshold.to_string(), speedup(&base, &s), &s, false);
        eprintln!("migrate-threshold/{threshold} done");
    }

    // 6) Cache arrangement (§III-D): Avatar works under VIPT and PIPT.
    for (name, arr) in [("VIPT", CacheArrangement::Vipt), ("PIPT", CacheArrangement::Pipt)] {
        let s = run_with(&w, SystemConfig::Avatar, &ro, |c| c.l1_arrangement = arr);
        let b = run_with(&w, SystemConfig::Baseline, &ro, |c| c.l1_arrangement = arr);
        let rel = b.cycles as f64 / s.cycles as f64;
        record(&mut rows, &mut json, "l1-arrangement", name, rel, &s, true);
        eprintln!("arrangement/{name} done");
    }

    println!("\nAblation & sensitivity: {} (speedup vs baseline; * = vs same-arrangement baseline)", w.abbr);
    print_table(&["Study", "Variant", "Speedup", "Accuracy", "Coverage"], &rows);
    opts.dump_json(&json);
}
