//! Cross-policy comparison sweep: every registry translation policy of
//! interest, side by side, over the Fig-15 workload grid.
//!
//! Where `fig15_performance` reproduces the paper's fixed column set,
//! this harness compares *policies as peers*: the paper baselines
//! (CoLT, SnakeByte), the full Avatar stack, the post-paper Revelator
//! rival (hash-seeded speculation with rapid validation-on-use), and
//! the dead-entry-aware replacement modifier. Speedups are normalized
//! to the shared Baseline system; the Baseline column itself is 1.000
//! by construction (its cell memoizes the reference run, so it costs
//! nothing extra).
//!
//! `--policy NAME` / `--policies LIST` replace the default set with any
//! registry selections; `--json` dumps machine-readable rows.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, obj, print_table, HarnessArgs};
use avatar_core::policy::PolicySelection;
use avatar_workloads::Workload;

/// The default comparison set: paper baselines, Avatar, and both
/// post-paper designs. Parsed from registry names so the sweep exercises
/// exactly the path `--policies` users take.
const DEFAULT_SET: &str = "baseline,colt,snakebyte,avatar,revelator,avatar+dead";

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let selections: Vec<PolicySelection> = match opts.policies() {
        Some(sels) => sels.to_vec(),
        None => PolicySelection::parse_list(DEFAULT_SET).expect("default set is valid"),
    };
    let labels: Vec<String> = selections.iter().map(|s| s.label()).collect();
    let baseline = PolicySelection::parse("baseline").expect("baseline is in the registry");
    let workloads = Workload::all();

    let shards = opts.shards;
    let sharded = |s: Scenario| match shards {
        Some(n) => s.with_tweak(move |c| c.shards = n),
        None => s,
    };
    let mut scenarios = Vec::new();
    for w in &workloads {
        // The reference cell comes first in each stride; a Baseline
        // column in the comparison set memoizes it (same content
        // address), so listing it costs nothing.
        scenarios.push(sharded(Scenario::new("Baseline", w, baseline, ro.clone())));
        for (sel, label) in selections.iter().zip(&labels) {
            scenarios.push(sharded(Scenario::new(label.clone(), w, *sel, ro.clone())));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = selections.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); selections.len()];

    for (wi, w) in workloads.iter().enumerate() {
        let base = &results[wi * stride];
        let mut cells = vec![w.abbr.to_string(), format!("{:?}", w.class)];
        let mut speedups = Vec::new();
        for (i, sel) in selections.iter().enumerate() {
            let cell = &results[wi * stride + 1 + i];
            let x = speedup_cell(base, cell);
            if let Some(x) = x {
                per_policy[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            // Per-policy mechanism counters ride along so a sweep dump
            // shows *why* a column moved, not just that it did.
            let (installs, evictions, hits) = match &cell.stats {
                Ok(s) => (s.policy_installs, s.policy_evictions, s.policy_hits),
                Err(_) => (0, 0, 0),
            };
            speedups.push(obj! {
                "policy": sel.name(),
                "speedup": x,
                "policy_installs": installs,
                "policy_evictions": evictions,
                "policy_hits": hits,
            });
        }
        json_rows.push(obj! {
            "workload": w.abbr,
            "class": format!("{:?}", w.class),
            "speedups": Json::Arr(speedups),
        });
        rows.push(cells);
    }

    let mut gmean_cells = vec!["GMEAN".to_string(), "-".to_string()];
    let mut gmean_speedups = Vec::new();
    for (sel, xs) in selections.iter().zip(&per_policy) {
        gmean_cells.push(format!("{:.3}", geomean(xs)));
        gmean_speedups.push(obj! { "policy": sel.name(), "speedup": geomean(xs) });
    }
    rows.push(gmean_cells);
    json_rows.push(obj! {
        "workload": "GMEAN",
        "class": "-",
        "speedups": Json::Arr(gmean_speedups),
    });

    let mut headers = vec!["Workload", "Class"];
    headers.extend(labels.iter().map(String::as_str));
    println!(
        "\nPolicy sweep: speedup over baseline (scale {}, {} SMs x {} warps)",
        opts.scale, opts.sms, opts.warps
    );
    print_table(&headers, &rows);
    println!(
        "\npolicies: {}",
        selections.iter().map(|s| s.name()).collect::<Vec<_>>().join(", ")
    );
    opts.dump_json(&json_rows);
}
