//! Multi-tenancy study (paper §III-D): spatially shared GPUs give each
//! tenant an isolated address space; Avatar tags embedded page information
//! with the ASID so speculation never validates across tenants.
//!
//! Reports per-configuration speedups for 1 vs 2 tenants and the isolation
//! diagnostics (accuracy, ASID-mismatch invalidations).

use avatar_bench::{print_table, HarnessOpts};
use avatar_core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    tenants: usize,
    avatar_speedup: f64,
    accuracy: f64,
    cava_mismatches: u64,
}

fn main() {
    let opts = HarnessOpts::from_args();

    let mut rows = Vec::new();
    let mut json: Vec<Row> = Vec::new();
    for abbr in ["GEMM", "PAF", "SSSP", "XSB"] {
        let w = Workload::by_abbr(abbr).expect("known workload");
        for tenants in [1usize, 2] {
            let ro = RunOptions {
                tenants,
                scale: opts.scale,
                sms: Some(opts.sms),
                warps: Some(opts.warps),
                ..RunOptions::default()
            };
            let base = run(&w, SystemConfig::Baseline, &ro);
            let avatar = run(&w, SystemConfig::Avatar, &ro);
            let row = Row {
                workload: abbr.to_string(),
                tenants,
                avatar_speedup: speedup(&base, &avatar),
                accuracy: avatar.spec_accuracy(),
                cava_mismatches: avatar.cava_mismatches,
            };
            eprintln!("{abbr} x{tenants} done");
            rows.push(vec![
                row.workload.clone(),
                row.tenants.to_string(),
                format!("{:.3}", row.avatar_speedup),
                format!("{:.1}%", row.accuracy * 100.0),
                row.cava_mismatches.to_string(),
            ]);
            json.push(row);
        }
    }

    println!("\nMulti-tenancy: Avatar under spatial sharing (speedup vs equally-shared baseline)");
    print_table(&["Workload", "Tenants", "Avatar speedup", "Accuracy", "CAVA mismatches"], &rows);
    println!("\npaper §III-D: ASID-tagged page info keeps speculation correct across isolated address spaces");
    opts.dump_json(&json);
}
