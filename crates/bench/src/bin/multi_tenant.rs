//! Multi-tenancy study (paper §III-D): spatially shared GPUs give each
//! tenant an isolated address space; Avatar tags embedded page information
//! with the ASID so speculation never validates across tenants.
//!
//! Reports per-configuration speedups for 1 vs 2 tenants and the isolation
//! diagnostics (accuracy, ASID-mismatch invalidations).

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{obj, print_table, HarnessArgs};
use avatar_core::system::{speedup, RunOptions, SystemConfig};
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let grid: Vec<(&str, usize)> = ["GEMM", "PAF", "SSSP", "XSB"]
        .into_iter()
        .flat_map(|abbr| [(abbr, 1usize), (abbr, 2)])
        .collect();

    let mut scenarios = Vec::new();
    for &(abbr, tenants) in &grid {
        let w = Workload::by_abbr(abbr).expect("known workload");
        let ro = RunOptions {
            tenants,
            scale: opts.scale,
            sms: Some(opts.sms),
            warps: Some(opts.warps),
            ..RunOptions::default()
        };
        scenarios.push(Scenario::new("Baseline", &w, SystemConfig::Baseline, ro.clone()));
        scenarios.push(Scenario::new("Avatar", &w, SystemConfig::Avatar, ro));
    }
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (gi, &(abbr, tenants)) in grid.iter().enumerate() {
        let base = results[gi * 2].expect_stats();
        let avatar = results[gi * 2 + 1].expect_stats();
        let x = speedup(base, avatar);
        rows.push(vec![
            abbr.to_string(),
            tenants.to_string(),
            format!("{x:.3}"),
            format!("{:.1}%", avatar.spec_accuracy() * 100.0),
            avatar.cava_mismatches.to_string(),
        ]);
        json.push(obj! {
            "workload": abbr,
            "tenants": tenants,
            "avatar_speedup": x,
            "accuracy": avatar.spec_accuracy(),
            "cava_mismatches": avatar.cava_mismatches,
        });
    }

    println!("\nMulti-tenancy: Avatar under spatial sharing (speedup vs equally-shared baseline)");
    print_table(&["Workload", "Tenants", "Avatar speedup", "Accuracy", "CAVA mismatches"], &rows);
    println!("\npaper §III-D: ASID-tagged page info keeps speculation correct across isolated address spaces");
    opts.dump_json(&json);
}
