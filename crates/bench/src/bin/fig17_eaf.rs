//! Fig 17: the impact of EAF on (a) page walks and (b) DRAM traffic.
//!
//! Paper: Avatar performs 19.1% fewer page walks than Promotion on class-H
//! workloads, and its aggressive sector-granularity speculative fetching
//! raises DRAM traffic by only 2.2% over the baseline on average.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::{Class, Workload};

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let workloads = Workload::all();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        scenarios.push(Scenario::new("Promotion", w, SystemConfig::Promotion, ro.clone()));
        scenarios.push(Scenario::new("Avatar", w, SystemConfig::Avatar, ro.clone()));
    }
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut h_walks = Vec::new();
    let mut traffic = Vec::new();

    for (wi, w) in workloads.iter().enumerate() {
        let base = results[wi * 3].expect_stats();
        let promo = results[wi * 3 + 1].expect_stats();
        let avatar = results[wi * 3 + 2].expect_stats();
        let walks_ratio = if promo.page_walks == 0 {
            1.0
        } else {
            avatar.page_walks as f64 / promo.page_walks as f64
        };
        let traffic_ratio = if base.dram_bytes() == 0 {
            1.0
        } else {
            avatar.dram_bytes() as f64 / base.dram_bytes() as f64
        };
        if w.class == Class::H {
            h_walks.push(walks_ratio);
        }
        traffic.push(traffic_ratio);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{:?}", w.class),
            format!("{:+.1}%", (walks_ratio - 1.0) * 100.0),
            format!("{:+.1}%", (traffic_ratio - 1.0) * 100.0),
            avatar.walks_aborted.to_string(),
        ]);
        json_rows.push(obj! {
            "workload": w.abbr,
            "class": format!("{:?}", w.class),
            "walks_vs_promotion": walks_ratio,
            "traffic_vs_baseline": traffic_ratio,
            "walks_aborted": avatar.walks_aborted,
        });
    }

    println!("\nFig 17: EAF impact (Avatar)");
    print_table(
        &["Workload", "Class", "Walks vs Promotion", "DRAM traffic vs baseline", "Walks aborted"],
        &rows,
    );
    println!(
        "\npaper: class-H walks -19.1% vs Promotion, traffic +2.2% vs baseline | measured: class-H walks {:+.1}%, traffic {:+.1}%",
        (mean(&h_walks) - 1.0) * 100.0,
        (mean(&traffic) - 1.0) * 100.0
    );
    opts.dump_json(&json_rows);
}
