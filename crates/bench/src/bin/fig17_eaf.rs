//! Fig 17: the impact of EAF on (a) page walks and (b) DRAM traffic.
//!
//! Paper: Avatar performs 19.1% fewer page walks than Promotion on class-H
//! workloads, and its aggressive sector-granularity speculative fetching
//! raises DRAM traffic by only 2.2% over the baseline on average.

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_core::system::{run, SystemConfig};
use avatar_workloads::{Class, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    class: String,
    walks_vs_promotion: f64,
    traffic_vs_baseline: f64,
    walks_aborted: u64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();

    let mut rows = Vec::new();
    let mut json_rows: Vec<Row> = Vec::new();

    for w in Workload::all() {
        let base = run(&w, SystemConfig::Baseline, &ro);
        let promo = run(&w, SystemConfig::Promotion, &ro);
        let avatar = run(&w, SystemConfig::Avatar, &ro);
        let walks_ratio = if promo.page_walks == 0 {
            1.0
        } else {
            avatar.page_walks as f64 / promo.page_walks as f64
        };
        let traffic_ratio = if base.dram_bytes() == 0 {
            1.0
        } else {
            avatar.dram_bytes() as f64 / base.dram_bytes() as f64
        };
        eprintln!("done {}", w.abbr);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{:?}", w.class),
            format!("{:+.1}%", (walks_ratio - 1.0) * 100.0),
            format!("{:+.1}%", (traffic_ratio - 1.0) * 100.0),
            avatar.walks_aborted.to_string(),
        ]);
        json_rows.push(Row {
            workload: w.abbr.to_string(),
            class: format!("{:?}", w.class),
            walks_vs_promotion: walks_ratio,
            traffic_vs_baseline: traffic_ratio,
            walks_aborted: avatar.walks_aborted,
        });
    }

    let h_walks: Vec<f64> = json_rows
        .iter()
        .zip(Workload::all())
        .filter(|(_, w)| w.class == Class::H)
        .map(|(r, _)| r.walks_vs_promotion)
        .collect();
    let traffic: Vec<f64> = json_rows.iter().map(|r| r.traffic_vs_baseline).collect();

    println!("\nFig 17: EAF impact (Avatar)");
    print_table(
        &["Workload", "Class", "Walks vs Promotion", "DRAM traffic vs baseline", "Walks aborted"],
        &rows,
    );
    println!(
        "\npaper: class-H walks -19.1% vs Promotion, traffic +2.2% vs baseline | measured: class-H walks {:+.1}%, traffic {:+.1}%",
        (mean(&h_walks) - 1.0) * 100.0,
        (mean(&traffic) - 1.0) * 100.0
    );
    opts.dump_json(&json_rows);
}
