//! Fig 3: impact of address translation on GPU performance.
//!
//! (a) stall cycles waiting for memory, baseline normalized to an ideal
//!     TLB — paper average 1.7×, with SSSP/SPMV/XSB ≥ 2×;
//! (b) performance degradation vs the ideal TLB — paper average −34.5%.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{geomean, mean, obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let workloads = Workload::all();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        scenarios.push(Scenario::new("IdealTLB", w, SystemConfig::IdealTlb, ro.clone()));
    }
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut stall_ratios = Vec::new();
    let mut perf = Vec::new();

    for (wi, w) in workloads.iter().enumerate() {
        let base = results[wi * 2].expect_stats();
        let ideal = results[wi * 2 + 1].expect_stats();
        let stall_ratio = if ideal.stall_cycles == 0 {
            base.stall_cycles as f64
        } else {
            base.stall_cycles as f64 / ideal.stall_cycles as f64
        };
        let perf_vs_ideal = ideal.cycles as f64 / base.cycles as f64; // <1: ideal faster
        let degradation = 1.0 - perf_vs_ideal;
        stall_ratios.push(stall_ratio);
        perf.push(perf_vs_ideal);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{stall_ratio:.2}x"),
            format!("{:.1}%", degradation * 100.0),
        ]);
        json_rows.push(obj! {
            "workload": w.abbr,
            "stall_ratio": stall_ratio,
            "perf_vs_ideal": perf_vs_ideal,
        });
    }

    println!("\nFig 3: translation overhead (baseline vs ideal TLB)");
    print_table(&["Workload", "StallCycles vs ideal", "Perf loss vs ideal"], &rows);
    println!(
        "\npaper: stalls 1.7x avg, perf loss 34.5% avg | measured: stalls {:.2}x avg, perf loss {:.1}% avg",
        mean(&stall_ratios),
        (1.0 - geomean(&perf)) * 100.0
    );
    opts.dump_json(&json_rows);
}
