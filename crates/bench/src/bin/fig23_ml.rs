//! Fig 23: ML workloads — (a) compressibility and (b) performance.
//!
//! Paper: average BPC ratio 1.38×, 28.4% of sectors fit 22 bytes (FP32
//! compresses better than FP16); Avatar still beats CoLT (the best prior
//! technique) by 7.1% on average because CAST's fetch/translation overlap
//! does not depend on compressibility.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, mean, obj, print_table, HarnessArgs};
use avatar_bpc::embed::PAYLOAD_BITS;
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

const CONFIGS: [SystemConfig; 4] = [
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::CastOnly,
    SystemConfig::Avatar,
];

/// (a) compressibility, measured with the real codec.
fn compressibility(w: &Workload, samples: u64) -> (f64, f64) {
    let content = w.content();
    let mut bits = 0usize;
    let mut fit = 0u64;
    for i in 0..samples {
        let b = content.compressed_bits(i * 977);
        bits += b.min(256);
        if b <= PAYLOAD_BITS {
            fit += 1;
        }
    }
    (256.0 * samples as f64 / bits as f64, fit as f64 / samples as f64)
}

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let samples = 20_000u64;
    let workloads = Workload::ml_suite();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        for cfg in CONFIGS {
            scenarios.push(Scenario::new(cfg.label(), w, cfg, ro.clone()));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = CONFIGS.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];
    let (mut ratios, mut fits) = (Vec::new(), Vec::new());

    for (wi, w) in workloads.iter().enumerate() {
        let (ratio, fit22) = compressibility(w, samples);
        ratios.push(ratio);
        fits.push(fit22);

        // (b) performance.
        let base = &results[wi * stride];
        let mut cells = vec![
            w.abbr.to_string(),
            format!("{ratio:.2}"),
            format!("{:.1}%", fit22 * 100.0),
        ];
        let mut speedups = Vec::new();
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let x = speedup_cell(base, &results[wi * stride + 1 + i]);
            if let Some(x) = x {
                per_config[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": cfg.label(), "speedup": x });
        }
        json_rows.push(obj! {
            "workload": w.abbr,
            "bpc_ratio": ratio,
            "fit22": fit22,
            "speedups": Json::Arr(speedups),
        });
        rows.push(cells);
    }

    let mut footer = vec![
        "MEAN".to_string(),
        format!("{:.2}", mean(&ratios)),
        format!("{:.1}%", mean(&fits) * 100.0),
    ];
    for xs in &per_config {
        footer.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(footer);

    let mut headers = vec!["Workload", "BPC ratio", "<=22B"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 23: ML workloads — compressibility and speedup over baseline");
    print_table(&headers, &rows);
    println!("\npaper: ratio 1.38x avg, 28.4% fit 22B; Avatar beats CoLT by ~7.1% despite low compressibility");
    opts.dump_json(&json_rows);
}
