//! Fig 23: ML workloads — (a) compressibility and (b) performance.
//!
//! Paper: average BPC ratio 1.38×, 28.4% of sectors fit 22 bytes (FP32
//! compresses better than FP16); Avatar still beats CoLT (the best prior
//! technique) by 7.1% on average because CAST's fetch/translation overlap
//! does not depend on compressibility.

use avatar_bench::{geomean, mean, print_table, HarnessOpts};
use avatar_bpc::embed::PAYLOAD_BITS;
use avatar_core::system::{run, speedup, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

const CONFIGS: [SystemConfig; 4] = [
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::CastOnly,
    SystemConfig::Avatar,
];

#[derive(Serialize)]
struct Row {
    workload: String,
    bpc_ratio: f64,
    fit22: f64,
    speedups: Vec<(String, f64)>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();
    let samples = 20_000u64;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Row> = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];

    for w in Workload::ml_suite() {
        // (a) compressibility, measured with the real codec.
        let content = w.content();
        let mut bits = 0usize;
        let mut fit = 0u64;
        for i in 0..samples {
            let b = content.compressed_bits(i * 977);
            bits += b.min(256);
            if b <= PAYLOAD_BITS {
                fit += 1;
            }
        }
        let ratio = 256.0 * samples as f64 / bits as f64;
        let fit22 = fit as f64 / samples as f64;

        // (b) performance.
        let base = run(&w, SystemConfig::Baseline, &ro);
        let mut cells = vec![
            w.abbr.to_string(),
            format!("{ratio:.2}"),
            format!("{:.1}%", fit22 * 100.0),
        ];
        let mut speedups = Vec::new();
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let s = run(&w, *cfg, &ro);
            let x = speedup(&base, &s);
            per_config[i].push(x);
            cells.push(format!("{x:.3}"));
            speedups.push((cfg.label().to_string(), x));
        }
        eprintln!("done {}", w.abbr);
        json_rows.push(Row { workload: w.abbr.to_string(), bpc_ratio: ratio, fit22, speedups });
        rows.push(cells);
    }

    let mut footer = vec![
        "MEAN".to_string(),
        format!("{:.2}", mean(&json_rows.iter().map(|r| r.bpc_ratio).collect::<Vec<_>>())),
        format!("{:.1}%", mean(&json_rows.iter().map(|r| r.fit22).collect::<Vec<_>>()) * 100.0),
    ];
    for xs in &per_config {
        footer.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(footer);

    let mut headers = vec!["Workload", "BPC ratio", "<=22B"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 23: ML workloads — compressibility and speedup over baseline");
    print_table(&headers, &rows);
    println!("\npaper: ratio 1.38x avg, 28.4% fit 22B; Avatar beats CoLT by ~7.1% despite low compressibility");
    opts.dump_json(&json_rows);
}
