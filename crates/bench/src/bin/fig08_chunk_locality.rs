//! Fig 8: proportion of memory accesses from the same load instruction
//! that access pages within one 2MB memory chunk.
//!
//! Paper: 89.0% on average — the observation motivating MOD's per-PC
//! contiguity tracking. We measure it directly on the generated address
//! streams: for every load PC, the fraction of consecutive accesses that
//! stay within the previously accessed 2MB chunk.

use avatar_bench::json::Json;
use avatar_bench::runner::run_cells;
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_sim::addr::CHUNK_BYTES;
use avatar_sim::fxhash::FxHashMap;
use avatar_sim::sm::{WarpOp, WarpProgram};
use avatar_workloads::Workload;

fn same_chunk_fraction(w: &Workload, sms: usize, warps: usize, scale: f64) -> f64 {
    let mut program = w.program(sms, warps, scale);
    // Per (SM, PC): the chunk last accessed by that instruction on
    // that SM — MOD's viewpoint.
    let mut last: FxHashMap<(usize, u64), u64> = FxHashMap::default();
    let (mut same, mut total) = (0u64, 0u64);
    for sm in 0..sms {
        for warp in 0..warps {
            while let Some(op) = program.next_op(sm, warp) {
                let (pc, addrs) = match op {
                    WarpOp::Load { pc, addrs } | WarpOp::Store { pc, addrs } => (pc, addrs),
                    WarpOp::Compute { .. } => continue,
                };
                for a in &addrs {
                    let chunk = a.0 / CHUNK_BYTES;
                    if let Some(&prev) = last.get(&(sm, pc)) {
                        total += 1;
                        if prev == chunk {
                            same += 1;
                        }
                    }
                    last.insert((sm, pc), chunk);
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

fn main() {
    let opts = HarnessArgs::parse();
    let workloads = Workload::all();

    // Pure trace analysis — no Engine — but the streams are long enough
    // that fanning per-workload jobs across the pool still pays.
    let (sms, warps, scale) = (opts.sms, opts.warps, opts.scale);
    let jobs: Vec<_> = workloads
        .iter()
        .map(|w| {
            let w = w.clone();
            move || same_chunk_fraction(&w, sms, warps, scale)
        })
        .collect();
    let cells = run_cells(opts.threads, jobs);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut fractions = Vec::new();
    for (w, cell) in workloads.iter().zip(&cells) {
        let frac = *cell.outcome.as_ref().expect("trace analysis cell");
        fractions.push(frac);
        rows.push(vec![w.abbr.to_string(), format!("{:.1}%", frac * 100.0)]);
        json_rows.push(obj! { "workload": w.abbr, "same_chunk_fraction": frac });
    }

    rows.push(vec!["AVG".into(), format!("{:.1}%", mean(&fractions) * 100.0)]);
    println!("\nFig 8: same-PC accesses falling in the same 2MB chunk");
    print_table(&["Workload", "Same-chunk fraction"], &rows);
    println!("\npaper average: 89.0%");
    opts.dump_json(&json_rows);
}
