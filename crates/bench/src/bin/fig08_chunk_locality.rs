//! Fig 8: proportion of memory accesses from the same load instruction
//! that access pages within one 2MB memory chunk.
//!
//! Paper: 89.0% on average — the observation motivating MOD's per-PC
//! contiguity tracking. We measure it directly on the generated address
//! streams: for every load PC, the fraction of consecutive accesses that
//! stay within the previously accessed 2MB chunk.

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_sim::addr::CHUNK_BYTES;
use avatar_sim::sm::{WarpOp, WarpProgram};
use avatar_workloads::Workload;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Row {
    workload: String,
    same_chunk_fraction: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut fractions = Vec::new();

    for w in Workload::all() {
        let mut program = w.program(opts.sms, opts.warps, opts.scale);
        // Per (SM, PC): the chunk last accessed by that instruction on
        // that SM — MOD's viewpoint.
        let mut last: HashMap<(usize, u64), u64> = HashMap::new();
        let (mut same, mut total) = (0u64, 0u64);
        for sm in 0..opts.sms {
            for warp in 0..opts.warps {
                while let Some(op) = program.next_op(sm, warp) {
                    let (pc, addrs) = match op {
                        WarpOp::Load { pc, addrs } | WarpOp::Store { pc, addrs } => (pc, addrs),
                        WarpOp::Compute { .. } => continue,
                    };
                    {
                        for a in &addrs {
                            let chunk = a.0 / CHUNK_BYTES;
                            if let Some(&prev) = last.get(&(sm, pc)) {
                                total += 1;
                                if prev == chunk {
                                    same += 1;
                                }
                            }
                            last.insert((sm, pc), chunk);
                        }
                    }
                }
            }
        }
        let frac = if total == 0 { 0.0 } else { same as f64 / total as f64 };
        fractions.push(frac);
        rows.push(vec![w.abbr.to_string(), format!("{:.1}%", frac * 100.0)]);
        json_rows.push(Row { workload: w.abbr.to_string(), same_chunk_fraction: frac });
    }

    rows.push(vec!["AVG".into(), format!("{:.1}%", mean(&fractions) * 100.0)]);
    println!("\nFig 8: same-PC accesses falling in the same 2MB chunk");
    print_table(&["Workload", "Same-chunk fraction"], &rows);
    println!("\npaper average: 89.0%");
    opts.dump_json(&json_rows);
}
