//! Fig 15: overall performance of the evaluated configurations,
//! normalized to the baseline.
//!
//! Paper headline: Avatar +37.2% on average; CAST-only +29.1%;
//! Avatar beats Promotion by 14.9%, CoLT by 10.1%, SnakeByte by 16.3%;
//! CAST+Ideal-Valid exceeds Avatar by 5.8%.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let configs = SystemConfig::FIG15;
    let workloads = Workload::all();

    // One cell per (workload × {Baseline + Fig-15 configs}), fanned across
    // the thread pool; the grid is indexed back by fixed stride. `--shards`
    // applies to every cell (the figure is pinned shard-count invariant:
    // CI byte-diffs this binary's output across shard counts).
    let shards = opts.shards;
    let sharded = |s: Scenario| match shards {
        Some(n) => s.with_tweak(move |c| c.shards = n),
        None => s,
    };
    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(sharded(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone())));
        for cfg in configs {
            scenarios.push(sharded(Scenario::new(cfg.label(), w, cfg, ro.clone())));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = configs.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for (wi, w) in workloads.iter().enumerate() {
        let base = &results[wi * stride];
        let mut cells = vec![w.abbr.to_string(), format!("{:?}", w.class)];
        let mut speedups = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let x = speedup_cell(base, &results[wi * stride + 1 + i]);
            if let Some(x) = x {
                per_config[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": cfg.label(), "speedup": x });
        }
        json_rows.push(obj! {
            "workload": w.abbr,
            "class": format!("{:?}", w.class),
            "speedups": Json::Arr(speedups),
        });
        rows.push(cells);
    }

    let mut gmean_cells = vec!["GMEAN".to_string(), "-".to_string()];
    for xs in &per_config {
        gmean_cells.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(gmean_cells);

    let mut headers = vec!["Workload", "Class"];
    headers.extend(configs.iter().map(|c| c.label()));
    println!(
        "\nFig 15: speedup over baseline (scale {}, {} SMs x {} warps)",
        opts.scale, opts.sms, opts.warps
    );
    print_table(&headers, &rows);

    let avatar_idx = configs.iter().position(|c| *c == SystemConfig::Avatar).expect("Avatar in set");
    println!(
        "\npaper: Avatar 1.372x (avg) | measured GMEAN Avatar {:.3}x",
        geomean(&per_config[avatar_idx])
    );
    opts.dump_json(&json_rows);
}
