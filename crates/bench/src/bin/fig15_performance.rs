//! Fig 15: overall performance of the evaluated configurations,
//! normalized to the baseline.
//!
//! Paper headline: Avatar +37.2% on average; CAST-only +29.1%;
//! Avatar beats Promotion by 14.9%, CoLT by 10.1%, SnakeByte by 16.3%;
//! CAST+Ideal-Valid exceeds Avatar by 5.8%.

use avatar_bench::{geomean, print_table, HarnessOpts};
use avatar_core::system::{run, speedup, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    class: String,
    speedups: Vec<(String, f64)>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();
    let configs = SystemConfig::FIG15;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for w in Workload::all() {
        let base = run(&w, SystemConfig::Baseline, &ro);
        let mut cells = vec![w.abbr.to_string(), format!("{:?}", w.class)];
        let mut speedups = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let s = run(&w, *cfg, &ro);
            let x = speedup(&base, &s);
            per_config[i].push(x);
            cells.push(format!("{x:.3}"));
            speedups.push((cfg.label().to_string(), x));
        }
        eprintln!("done {}", w.abbr);
        json_rows.push(Row {
            workload: w.abbr.to_string(),
            class: format!("{:?}", w.class),
            speedups,
        });
        rows.push(cells);
    }

    let mut gmean_cells = vec!["GMEAN".to_string(), "-".to_string()];
    for xs in &per_config {
        gmean_cells.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(gmean_cells);

    let mut headers = vec!["Workload", "Class"];
    headers.extend(configs.iter().map(|c| c.label()));
    println!("\nFig 15: speedup over baseline (scale {}, {} SMs x {} warps)", opts.scale, opts.sms, opts.warps);
    print_table(&headers, &rows);

    let avatar_idx = configs.iter().position(|c| *c == SystemConfig::Avatar).expect("Avatar in set");
    println!(
        "\npaper: Avatar 1.372x (avg) | measured GMEAN Avatar {:.3}x",
        geomean(&per_config[avatar_idx])
    );
    opts.dump_json(&json_rows);
}
