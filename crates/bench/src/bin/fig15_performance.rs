//! Fig 15: overall performance of the evaluated configurations,
//! normalized to the baseline.
//!
//! Paper headline: Avatar +37.2% on average; CAST-only +29.1%;
//! Avatar beats Promotion by 14.9%, CoLT by 10.1%, SnakeByte by 16.3%;
//! CAST+Ideal-Valid exceeds Avatar by 5.8%.
//!
//! `--policies` swaps the paper's Fig-15 column set for any registry
//! selections (e.g. `--policies "avatar,revelator,avatar+dead"`); the
//! default run is byte-identical to the enum-era output.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, obj, print_table, HarnessArgs};
use avatar_core::policy::PolicySelection;
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let selections: Vec<PolicySelection> = match opts.policies() {
        Some(sels) => sels.to_vec(),
        None => SystemConfig::FIG15.iter().map(|c| c.selection()).collect(),
    };
    let labels: Vec<String> = selections.iter().map(|s| s.label()).collect();
    let baseline = PolicySelection::parse("baseline").expect("baseline is in the registry");
    let workloads = Workload::all();

    // One cell per (workload × {Baseline + column policies}), fanned across
    // the thread pool; the grid is indexed back by fixed stride. `--shards`
    // applies to every cell (the figure is pinned shard-count invariant:
    // CI byte-diffs this binary's output across shard counts).
    let shards = opts.shards;
    let sharded = |s: Scenario| match shards {
        Some(n) => s.with_tweak(move |c| c.shards = n),
        None => s,
    };
    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(sharded(Scenario::new("Baseline", w, baseline, ro.clone())));
        for (sel, label) in selections.iter().zip(&labels) {
            scenarios.push(sharded(Scenario::new(label.clone(), w, *sel, ro.clone())));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = selections.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); selections.len()];

    for (wi, w) in workloads.iter().enumerate() {
        let base = &results[wi * stride];
        let mut cells = vec![w.abbr.to_string(), format!("{:?}", w.class)];
        let mut speedups = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let x = speedup_cell(base, &results[wi * stride + 1 + i]);
            if let Some(x) = x {
                per_policy[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": label.clone(), "speedup": x });
        }
        json_rows.push(obj! {
            "workload": w.abbr,
            "class": format!("{:?}", w.class),
            "speedups": Json::Arr(speedups),
        });
        rows.push(cells);
    }

    let mut gmean_cells = vec!["GMEAN".to_string(), "-".to_string()];
    for xs in &per_policy {
        gmean_cells.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(gmean_cells);

    let mut headers = vec!["Workload", "Class"];
    headers.extend(labels.iter().map(String::as_str));
    println!(
        "\nFig 15: speedup over baseline (scale {}, {} SMs x {} warps)",
        opts.scale, opts.sms, opts.warps
    );
    print_table(&headers, &rows);

    if let Some(avatar_idx) = selections.iter().position(|s| s.label() == "Avatar") {
        println!(
            "\npaper: Avatar 1.372x (avg) | measured GMEAN Avatar {:.3}x",
            geomean(&per_policy[avatar_idx])
        );
    }
    opts.dump_json(&json_rows);
}
