//! Fig 1: the latency page walks add to memory accesses on commodity GPUs.
//!
//! The paper's microbenchmark pointer-chases through GPU memory in two
//! regimes: TLB-friendly (every access hits the TLBs) and TLB-hostile
//! (every access needs a page walk), and reports up to 1.96× higher
//! memory latency (≈ 950–1000 extra cycles) with walks.
//!
//! We regenerate it on the simulated hierarchy: a single warp performs
//! dependent strided loads over (a) a 64KB buffer (TLB-resident) and
//! (b) a multi-GB region with one access per page and a cold-TLB stride,
//! and we report the mean sector latency of each regime.

use avatar_bench::runner::run_cells;
use avatar_bench::{obj, print_table, HarnessArgs};
use avatar_core::system::{attach_trace, RunOptions};
use avatar_sim::addr::VirtAddr;
use avatar_sim::config::GpuConfig;
use avatar_sim::engine::Engine;
use avatar_sim::hooks::{NoSpeculation, UniformCompression};
use avatar_sim::sm::{WarpOp, WarpProgram};
use avatar_sim::tlb::{BaseTlb, TlbModel};

/// A single-warp dependent-load chase with a fixed stride.
#[derive(Clone)]
struct Chase {
    stride: u64,
    span: u64,
    remaining: u32,
    pos: u64,
}

impl WarpProgram for Chase {
    fn clone_box(&self) -> Box<dyn WarpProgram> {
        Box::new(self.clone())
    }

    fn next_op(&mut self, sm: usize, warp: usize) -> Option<WarpOp> {
        if sm > 0 || warp > 0 || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.pos = (self.pos + self.stride) % self.span;
        Some(WarpOp::Load { pc: 0x100, addrs: vec![VirtAddr(self.pos)] })
    }
}

fn run_chase(stride: u64, span: u64, accesses: u32, ideal_tlb: bool, ro: &RunOptions) -> f64 {
    let mut cfg = GpuConfig::rtx3070();
    cfg.num_sms = 1;
    cfg.warps_per_sm = 1;
    cfg.ideal_tlb = ideal_tlb;
    let l1s: Vec<Box<dyn TlbModel>> = vec![Box::new(BaseTlb::new(
        cfg.l1_tlb.base_entries,
        cfg.l1_tlb.large_entries,
        cfg.l1_tlb.assoc,
        1,
    ))];
    let l2 = Box::new(BaseTlb::new(cfg.l2_tlb.base_entries, cfg.l2_tlb.large_entries, cfg.l2_tlb.assoc, 1));
    let mut engine = Engine::new(
        cfg,
        l1s,
        l2,
        Box::new(NoSpeculation),
        Box::new(UniformCompression { fraction: 0.0 }),
        Box::new(Chase { stride, span, remaining: accesses, pos: 0 }),
    );
    attach_trace(&mut engine, ro);
    let stats = engine.run();
    stats.sector_latency.value()
}

fn main() {
    let opts = HarnessArgs::parse();
    let accesses = 4096;

    // Two independent chases; even this two-cell figure goes through the
    // pool so `--threads` overlaps them.
    // This bin assembles its engines by hand, so `--trace-out` is honoured
    // via `attach_trace` with a per-regime tag rather than through `run`.
    let tagged = |tag: &str| {
        let mut ro = opts.run_options();
        ro.trace_tag = Some(tag.to_string());
        ro
    };
    let (ro_hit, ro_walk) = (tagged("hit"), tagged("walk"));
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![
        // Translation-free regime: the chase spans far more than the caches
        // (DRAM-bound, as the paper's microbenchmark on commodity GPUs) but
        // translation is free — this isolates raw memory latency.
        Box::new(move || run_chase(4096 + 256, 256 << 20, accesses, true, &ro_hit)),
        // Page-walk regime: identical memory behaviour, but every access
        // lands in a fresh 2MB region of a multi-GB span, defeating the TLBs
        // and the page-walk cache so a multi-reference walk precedes each
        // access.
        Box::new(move || run_chase((2 << 20) + 4096 + 256, 8 << 30, accesses, false, &ro_walk)),
    ];
    let cells = run_cells(opts.threads, jobs);
    let hit = *cells[0].outcome.as_ref().expect("TLB-hit chase");
    let miss = *cells[1].outcome.as_ref().expect("page-walk chase");

    let rows = vec![
        vec!["TLB hit".to_string(), format!("{hit:.0}")],
        vec!["page walk per access".to_string(), format!("{miss:.0}")],
        vec!["ratio".to_string(), format!("{:.2}x", miss / hit)],
        vec!["extra cycles".to_string(), format!("{:.0}", miss - hit)],
    ];
    println!("\nFig 1: memory access latency with and without page walks");
    print_table(&["Regime", "Mean latency (cycles)"], &rows);
    println!("\npaper: up to 1.96x, ~950-1000 extra cycles on commodity GPUs");
    opts.dump_json(&[
        obj! { "regime": "hit", "latency_cycles": hit },
        obj! { "regime": "walk", "latency_cycles": miss },
    ]);
}
