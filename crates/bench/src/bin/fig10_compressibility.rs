//! Fig 10: BPC compression ratio on 32B sectors and the fraction of
//! sectors compressible to 22 bytes.
//!
//! Paper: most benchmarks exceed the 1.45 ratio needed for 22B; on average
//! 67.5% of sectors compress to 22 bytes. The numbers here are *measured*
//! by running the real BPC codec over the synthesized sector contents of
//! each workload.

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_bpc::embed::PAYLOAD_BITS;
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    ratio: f64,
    fit22: f64,
}

fn measure(w: &Workload, samples: u64) -> Row {
    let model = w.content();
    let mut bits_sum = 0usize;
    let mut fit = 0u64;
    for i in 0..samples {
        // Spread samples across the working set.
        let sector_id = i * 977; // co-prime stride
        let bits = model.compressed_bits(sector_id);
        bits_sum += bits.min(256); // stored raw if it expands
        if bits <= PAYLOAD_BITS {
            fit += 1;
        }
    }
    Row {
        workload: w.abbr.to_string(),
        ratio: 256.0 * samples as f64 / bits_sum as f64,
        fit22: fit as f64 / samples as f64,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let samples = 20_000;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut ratios = Vec::new();
    let mut fits = Vec::new();

    for w in Workload::all() {
        let row = measure(&w, samples);
        ratios.push(row.ratio);
        fits.push(row.fit22);
        rows.push(vec![
            row.workload.clone(),
            format!("{:.2}", row.ratio),
            format!("{:.1}%", row.fit22 * 100.0),
        ]);
        json_rows.push(row);
    }
    rows.push(vec![
        "AVG".into(),
        format!("{:.2}", mean(&ratios)),
        format!("{:.1}%", mean(&fits) * 100.0),
    ]);

    println!("\nFig 10: BPC compression of 32B sectors ({samples} sectors per workload)");
    print_table(&["Workload", "BPC ratio", "Sectors <= 22B"], &rows);
    println!("\npaper: ratio mostly > 1.45, 67.5% of sectors fit 22B on average");
    opts.dump_json(&json_rows);
}
