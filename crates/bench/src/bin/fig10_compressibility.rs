//! Fig 10: BPC compression ratio on 32B sectors and the fraction of
//! sectors compressible to 22 bytes.
//!
//! Paper: most benchmarks exceed the 1.45 ratio needed for 22B; on average
//! 67.5% of sectors compress to 22 bytes. The numbers here are *measured*
//! by running the real BPC codec over the synthesized sector contents of
//! each workload.

use avatar_bench::json::Json;
use avatar_bench::runner::run_cells;
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_bpc::embed::PAYLOAD_BITS;
use avatar_workloads::Workload;

fn measure(w: &Workload, samples: u64) -> (f64, f64) {
    let model = w.content();
    let mut bits_sum = 0usize;
    let mut fit = 0u64;
    for i in 0..samples {
        // Spread samples across the working set.
        let sector_id = i * 977; // co-prime stride
        let bits = model.compressed_bits(sector_id);
        bits_sum += bits.min(256); // stored raw if it expands
        if bits <= PAYLOAD_BITS {
            fit += 1;
        }
    }
    (256.0 * samples as f64 / bits_sum as f64, fit as f64 / samples as f64)
}

fn main() {
    let opts = HarnessArgs::parse();
    let samples = 20_000u64;
    let workloads = Workload::all();

    // One codec sweep per workload, fanned across the pool.
    let jobs: Vec<_> = workloads
        .iter()
        .map(|w| {
            let w = w.clone();
            move || measure(&w, samples)
        })
        .collect();
    let cells = run_cells(opts.threads, jobs);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut ratios = Vec::new();
    let mut fits = Vec::new();

    for (w, cell) in workloads.iter().zip(&cells) {
        let (ratio, fit22) = *cell.outcome.as_ref().expect("codec sweep cell");
        ratios.push(ratio);
        fits.push(fit22);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{ratio:.2}"),
            format!("{:.1}%", fit22 * 100.0),
        ]);
        json_rows.push(obj! { "workload": w.abbr, "ratio": ratio, "fit22": fit22 });
    }
    rows.push(vec![
        "AVG".into(),
        format!("{:.2}", mean(&ratios)),
        format!("{:.1}%", mean(&fits) * 100.0),
    ]);

    println!("\nFig 10: BPC compression of 32B sectors ({samples} sectors per workload)");
    print_table(&["Workload", "BPC ratio", "Sectors <= 22B"], &rows);
    println!("\npaper: ratio mostly > 1.45, 67.5% of sectors fit 22B on average");
    opts.dump_json(&json_rows);
}
