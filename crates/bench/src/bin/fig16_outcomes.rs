//! Fig 16: fraction of memory-access results that received (accurate)
//! speculation in Avatar.
//!
//! Paper averages: L1D_hit + L1D_merge ≈ 59.0%, Fast_Translation ≈ 38.6%,
//! L1D_miss ≈ 2.3%.

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_core::system::{run, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    fast_translation: f64,
    l1d_hit: f64,
    l1d_merge: f64,
    l1d_miss: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();

    let mut rows = Vec::new();
    let mut json_rows: Vec<Row> = Vec::new();

    for w in Workload::all() {
        let s = run(&w, SystemConfig::Avatar, &ro);
        let o = &s.outcomes;
        let row = Row {
            workload: w.abbr.to_string(),
            fast_translation: o.fraction(o.fast_translation),
            l1d_hit: o.fraction(o.l1d_hit),
            l1d_merge: o.fraction(o.l1d_merge),
            l1d_miss: o.fraction(o.l1d_miss),
        };
        eprintln!("done {}", w.abbr);
        rows.push(vec![
            row.workload.clone(),
            format!("{:.1}%", row.fast_translation * 100.0),
            format!("{:.1}%", row.l1d_hit * 100.0),
            format!("{:.1}%", row.l1d_merge * 100.0),
            format!("{:.1}%", row.l1d_miss * 100.0),
        ]);
        json_rows.push(row);
    }

    let avg = |f: fn(&Row) -> f64| mean(&json_rows.iter().map(f).collect::<Vec<_>>());
    rows.push(vec![
        "AVG".into(),
        format!("{:.1}%", avg(|r| r.fast_translation) * 100.0),
        format!("{:.1}%", avg(|r| r.l1d_hit) * 100.0),
        format!("{:.1}%", avg(|r| r.l1d_merge) * 100.0),
        format!("{:.1}%", avg(|r| r.l1d_miss) * 100.0),
    ]);

    println!("\nFig 16: speculation outcome fractions (Avatar)");
    print_table(&["Workload", "Fast_Translation", "L1D_hit", "L1D_merge", "L1D_miss"], &rows);
    println!(
        "\npaper averages: Fast_Translation 38.6%, L1D_hit+L1D_merge 59.0%, L1D_miss 2.3%"
    );
    opts.dump_json(&json_rows);
}
