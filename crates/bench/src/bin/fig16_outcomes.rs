//! Fig 16: fraction of memory-access results that received (accurate)
//! speculation in Avatar.
//!
//! Paper averages: L1D_hit + L1D_merge ≈ 59.0%, Fast_Translation ≈ 38.6%,
//! L1D_miss ≈ 2.3%.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let workloads = Workload::all();

    let scenarios: Vec<Scenario> = workloads
        .iter()
        .map(|w| Scenario::new(w.abbr, w, SystemConfig::Avatar, ro.clone()))
        .collect();
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut fracs: Vec<[f64; 4]> = Vec::new();

    for (w, r) in workloads.iter().zip(&results) {
        let s = r.expect_stats();
        let o = &s.outcomes;
        let f = [
            o.fraction(o.fast_translation),
            o.fraction(o.l1d_hit),
            o.fraction(o.l1d_merge),
            o.fraction(o.l1d_miss),
        ];
        fracs.push(f);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{:.1}%", f[0] * 100.0),
            format!("{:.1}%", f[1] * 100.0),
            format!("{:.1}%", f[2] * 100.0),
            format!("{:.1}%", f[3] * 100.0),
        ]);
        json_rows.push(obj! {
            "workload": w.abbr,
            "fast_translation": f[0],
            "l1d_hit": f[1],
            "l1d_merge": f[2],
            "l1d_miss": f[3],
        });
    }

    let avg = |i: usize| mean(&fracs.iter().map(|f| f[i]).collect::<Vec<_>>());
    rows.push(vec![
        "AVG".into(),
        format!("{:.1}%", avg(0) * 100.0),
        format!("{:.1}%", avg(1) * 100.0),
        format!("{:.1}%", avg(2) * 100.0),
        format!("{:.1}%", avg(3) * 100.0),
    ]);

    println!("\nFig 16: speculation outcome fractions (Avatar)");
    print_table(&["Workload", "Fast_Translation", "L1D_hit", "L1D_merge", "L1D_miss"], &rows);
    println!(
        "\npaper averages: Fast_Translation 38.6%, L1D_hit+L1D_merge 59.0%, L1D_miss 2.3%"
    );
    opts.dump_json(&json_rows);
}
