//! Fig 18: speculation accuracy and coverage of the MOD-based CAST.
//!
//! Paper averages: accuracy 90.3%, coverage 73.4% (coverage = correct
//! speculations over all L1 TLB misses).

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let workloads = Workload::all();

    let scenarios: Vec<Scenario> = workloads
        .iter()
        .map(|w| Scenario::new(w.abbr, w, SystemConfig::Avatar, ro.clone()))
        .collect();
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut accuracies = Vec::new();
    let mut coverages = Vec::new();

    for (w, r) in workloads.iter().zip(&results) {
        let s = r.expect_stats();
        let (accuracy, coverage) = (s.spec_accuracy(), s.spec_coverage());
        accuracies.push(accuracy);
        coverages.push(coverage);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{:.1}%", accuracy * 100.0),
            format!("{:.1}%", coverage * 100.0),
            s.speculations.to_string(),
        ]);
        json_rows.push(obj! {
            "workload": w.abbr,
            "accuracy": accuracy,
            "coverage": coverage,
            "speculations": s.speculations,
        });
    }

    rows.push(vec![
        "AVG".into(),
        format!("{:.1}%", mean(&accuracies) * 100.0),
        format!("{:.1}%", mean(&coverages) * 100.0),
        "-".into(),
    ]);

    println!("\nFig 18: MOD speculation accuracy and coverage (Avatar)");
    print_table(&["Workload", "Accuracy", "Coverage", "Attempts"], &rows);
    println!("\npaper averages: accuracy 90.3%, coverage 73.4%");
    opts.dump_json(&json_rows);
}
