//! Fig 18: speculation accuracy and coverage of the MOD-based CAST.
//!
//! Paper averages: accuracy 90.3%, coverage 73.4% (coverage = correct
//! speculations over all L1 TLB misses).

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_core::system::{run, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    accuracy: f64,
    coverage: f64,
    speculations: u64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();

    let mut rows = Vec::new();
    let mut json_rows: Vec<Row> = Vec::new();

    for w in Workload::all() {
        let s = run(&w, SystemConfig::Avatar, &ro);
        let row = Row {
            workload: w.abbr.to_string(),
            accuracy: s.spec_accuracy(),
            coverage: s.spec_coverage(),
            speculations: s.speculations,
        };
        eprintln!("done {}", w.abbr);
        rows.push(vec![
            row.workload.clone(),
            format!("{:.1}%", row.accuracy * 100.0),
            format!("{:.1}%", row.coverage * 100.0),
            row.speculations.to_string(),
        ]);
        json_rows.push(row);
    }

    rows.push(vec![
        "AVG".into(),
        format!("{:.1}%", mean(&json_rows.iter().map(|r| r.accuracy).collect::<Vec<_>>()) * 100.0),
        format!("{:.1}%", mean(&json_rows.iter().map(|r| r.coverage).collect::<Vec<_>>()) * 100.0),
        "-".into(),
    ]);

    println!("\nFig 18: MOD speculation accuracy and coverage (Avatar)");
    print_table(&["Workload", "Accuracy", "Coverage", "Attempts"], &rows);
    println!("\npaper averages: accuracy 90.3%, coverage 73.4%");
    opts.dump_json(&json_rows);
}
