//! Scalability sweep (paper Table I's central claim): TLB-reach techniques
//! stop scaling once the working set outgrows their reach, while Avatar's
//! speculation is reach-independent.
//!
//! Sweeps one irregular workload's footprint across scales and reports
//! each technique's speedup over the equally-sized baseline.
//!
//! `--abbr <ABBR>` selects the workload (default XSB, the 2.24GB maximum).

use avatar_bench::{print_table, HarnessOpts};
use avatar_core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

const CONFIGS: [SystemConfig; 4] = [
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::SnakeByte,
    SystemConfig::Avatar,
];

#[derive(Serialize)]
struct Row {
    working_set_mb: u64,
    speedups: Vec<(String, f64)>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let abbr = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--abbr")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "XSB".to_string());
    let w = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload {abbr}");
        std::process::exit(1);
    });

    let mut rows = Vec::new();
    let mut json: Vec<Row> = Vec::new();
    for scale in [0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0] {
        let ro = RunOptions {
            scale,
            sms: Some(opts.sms),
            warps: Some(opts.warps),
            ..RunOptions::default()
        };
        let ws_mb = w.scaled_working_set(scale) >> 20;
        let base = run(&w, SystemConfig::Baseline, &ro);
        let mut cells = vec![format!("{ws_mb}MB")];
        let mut speedups = Vec::new();
        for cfg in CONFIGS {
            let s = run(&w, cfg, &ro);
            let x = speedup(&base, &s);
            cells.push(format!("{x:.3}"));
            speedups.push((cfg.label().to_string(), x));
        }
        eprintln!("scale {scale} ({ws_mb}MB) done");
        rows.push(cells);
        json.push(Row { working_set_mb: ws_mb, speedups });
    }

    let mut headers = vec!["Working set"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nScalability sweep: {} footprint vs technique speedup", w.abbr);
    print_table(&headers, &rows);
    println!("\nTable I claim: reach-bound techniques flatten as the footprint outgrows TLB reach; Avatar keeps scaling.");
    opts.dump_json(&json);
}
