//! Scalability sweep (paper Table I's central claim): TLB-reach techniques
//! stop scaling once the working set outgrows their reach, while Avatar's
//! speculation is reach-independent.
//!
//! Sweeps one irregular workload's footprint across scales and reports
//! each technique's speedup over the equally-sized baseline.
//!
//! `--abbr <ABBR>` selects the workload (default XSB, the 2.24GB maximum).

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{obj, print_table, ExtraFlag, HarnessArgs};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_workloads::Workload;

const CONFIGS: [SystemConfig; 4] = [
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::SnakeByte,
    SystemConfig::Avatar,
];

const SCALES: [f64; 6] = [0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0];

fn main() {
    let opts = HarnessArgs::parse_with(&[ExtraFlag {
        flag: "--abbr",
        value_name: Some("WL"),
        help: "workload abbreviation to sweep (default XSB, the 2.24GB maximum)",
    }]);
    let abbr = opts.extra_value("--abbr").unwrap_or("XSB").to_string();
    let w = Workload::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown workload {abbr}");
        std::process::exit(1);
    });

    let mut scenarios = Vec::new();
    for scale in SCALES {
        let ro = RunOptions {
            scale,
            sms: Some(opts.sms),
            warps: Some(opts.warps),
            ..RunOptions::default()
        };
        scenarios.push(Scenario::new("Baseline", &w, SystemConfig::Baseline, ro.clone()));
        for cfg in CONFIGS {
            scenarios.push(Scenario::new(cfg.label(), &w, cfg, ro.clone()));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = CONFIGS.len() + 1;

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (si, scale) in SCALES.iter().enumerate() {
        let ws_mb = w.scaled_working_set(*scale) >> 20;
        let base = &results[si * stride];
        let mut cells = vec![format!("{ws_mb}MB")];
        let mut speedups = Vec::new();
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let x = speedup_cell(base, &results[si * stride + 1 + i]);
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": cfg.label(), "speedup": x });
        }
        rows.push(cells);
        json.push(obj! { "working_set_mb": ws_mb, "speedups": Json::Arr(speedups) });
    }

    let mut headers = vec!["Working set"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nScalability sweep: {} footprint vs technique speedup", w.abbr);
    print_table(&headers, &rows);
    println!("\nTable I claim: reach-bound techniques flatten as the footprint outgrows TLB reach; Avatar keeps scaling.");
    opts.dump_json(&json);
}
