//! Fig 20: average memory access latency per configuration, (a) without
//! and (b) with 130% memory oversubscription, on the class-H workloads.
//!
//! Paper: Promotion and CoLT reduce latency by easing TLB pressure;
//! SnakeByte pays for recursive merging; Avatar's immediate (speculative)
//! translation gives the lowest latency, and its advantage grows under
//! oversubscription.

use avatar_bench::{mean, print_table, HarnessOpts};
use avatar_core::system::{run, RunOptions, SystemConfig};
use avatar_workloads::{Class, Workload};
use serde::Serialize;

const CONFIGS: [SystemConfig; 5] = [
    SystemConfig::Baseline,
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::SnakeByte,
    SystemConfig::Avatar,
];

#[derive(Serialize)]
struct Row {
    scenario: String,
    latencies: Vec<(String, f64)>,
}

/// (mean, p99) per configuration, averaged over the class-H workloads.
fn scenario(ro: &RunOptions) -> Vec<(f64, f64)> {
    let mut per_config = vec![(Vec::new(), Vec::new()); CONFIGS.len()];
    for w in Workload::all().into_iter().filter(|w| w.class == Class::H) {
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let s = run(&w, *cfg, ro);
            per_config[i].0.push(s.sector_latency.value());
            per_config[i].1.push(s.sector_latency_hist.percentile(0.99) as f64);
        }
        eprintln!("done {}", w.abbr);
    }
    per_config.iter().map(|(m, p)| (mean(m), mean(p))).collect()
}

fn main() {
    let opts = HarnessOpts::from_args();
    let normal = scenario(&opts.run_options());
    let oversub = scenario(&RunOptions { oversubscription: Some(1.3), ..opts.run_options() });

    let mut rows = Vec::new();
    for (label, data) in [("(a) no oversubscription", &normal), ("(b) 130% oversubscription", &oversub)]
    {
        let mut cells = vec![label.to_string()];
        cells.extend(data.iter().map(|(m, p)| format!("{m:.0} (p99 {p:.0})")));
        rows.push(cells);
    }

    let mut headers = vec!["Scenario"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 20: mean memory access latency, class-H workloads (cycles)");
    print_table(&headers, &rows);
    println!("\npaper: Avatar lowest in both scenarios; prior techniques degrade more under oversubscription");

    let json: Vec<Row> = [("normal", normal), ("oversub130", oversub)]
        .into_iter()
        .map(|(s, d)| Row {
            scenario: s.to_string(),
            latencies: CONFIGS
                .iter()
                .zip(d.iter())
                .map(|(c, (m, _))| (c.label().to_string(), *m))
                .collect(),
        })
        .collect();
    opts.dump_json(&json);
}
