//! Fig 20: average memory access latency per configuration, (a) without
//! and (b) with 130% memory oversubscription, on the class-H workloads.
//!
//! Paper: Promotion and CoLT reduce latency by easing TLB pressure;
//! SnakeByte pays for recursive merging; Avatar's immediate (speculative)
//! translation gives the lowest latency, and its advantage grows under
//! oversubscription.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario, ScenarioResult};
use avatar_bench::{mean, obj, print_table, HarnessArgs};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_workloads::{Class, Workload};

const CONFIGS: [SystemConfig; 5] = [
    SystemConfig::Baseline,
    SystemConfig::Promotion,
    SystemConfig::Colt,
    SystemConfig::SnakeByte,
    SystemConfig::Avatar,
];

/// (mean, p99) per configuration, averaged over the class-H workloads.
fn summarize(results: &[ScenarioResult], n_workloads: usize) -> Vec<(f64, f64)> {
    let mut per_config = vec![(Vec::new(), Vec::new()); CONFIGS.len()];
    for wi in 0..n_workloads {
        for i in 0..CONFIGS.len() {
            let s = results[wi * CONFIGS.len() + i].expect_stats();
            per_config[i].0.push(s.sector_latency.value());
            per_config[i].1.push(s.sector_latency_hist.percentile(0.99) as f64);
        }
    }
    per_config.iter().map(|(m, p)| (mean(m), mean(p))).collect()
}

fn main() {
    let opts = HarnessArgs::parse();
    let class_h: Vec<Workload> = Workload::all().into_iter().filter(|w| w.class == Class::H).collect();
    let regimes = [
        ("(a) no oversubscription", "normal", opts.run_options()),
        (
            "(b) 130% oversubscription",
            "oversub130",
            RunOptions { oversubscription: Some(1.3), ..opts.run_options() },
        ),
    ];

    let mut scenarios = Vec::new();
    for (_, _, ro) in &regimes {
        for w in &class_h {
            for cfg in CONFIGS {
                scenarios.push(Scenario::new(cfg.label(), w, cfg, ro.clone()));
            }
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let per_regime = class_h.len() * CONFIGS.len();

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (ri, (label, key, _)) in regimes.iter().enumerate() {
        let data = summarize(&results[ri * per_regime..(ri + 1) * per_regime], class_h.len());
        let mut cells = vec![label.to_string()];
        cells.extend(data.iter().map(|(m, p)| format!("{m:.0} (p99 {p:.0})")));
        rows.push(cells);
        let latencies: Vec<Json> = CONFIGS
            .iter()
            .zip(data.iter())
            .map(|(c, (m, _))| obj! { "config": c.label(), "latency": *m })
            .collect();
        json.push(obj! { "scenario": *key, "latencies": Json::Arr(latencies) });
    }

    let mut headers = vec!["Scenario"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 20: mean memory access latency, class-H workloads (cycles)");
    print_table(&headers, &rows);
    print_breakdown(&results[..per_regime], &class_h);
    println!("\npaper: Avatar lowest in both scenarios; prior techniques degrade more under oversubscription");
    opts.dump_json(&json);
}

/// Latency-breakdown cross-check (`probes` builds): per-phase attribution
/// shares for the no-oversubscription regime, with the conservation
/// invariant — phase sums equal the end-to-end sector latency sum exactly
/// — re-verified on every cell before anything is printed.
#[cfg(feature = "probes")]
fn print_breakdown(results: &[ScenarioResult], class_h: &[Workload]) {
    use avatar_sim::probe::{LatencyBreakdown, Phase};
    let mut rows = Vec::new();
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        let mut agg = LatencyBreakdown::default();
        for wi in 0..class_h.len() {
            let s = results[wi * CONFIGS.len() + ci].expect_stats();
            assert_eq!(
                s.latency_breakdown.total_cycles(),
                s.sector_latency.sum(),
                "fig20 {} / {}: latency breakdown violates cycle conservation",
                cfg.label(),
                class_h[wi].abbr,
            );
            for ph in Phase::ALL {
                agg.add(ph, s.latency_breakdown.of(ph));
            }
            agg.sectors += s.latency_breakdown.sectors;
        }
        let mut cells = vec![cfg.label().to_string()];
        cells.extend(Phase::ALL.iter().map(|&ph| format!("{:.1}%", 100.0 * agg.fraction(ph))));
        rows.push(cells);
    }
    let mut headers = vec!["Config"];
    headers.extend(Phase::ALL.iter().map(|p| p.label()));
    println!("\nLatency breakdown, regime (a) — share of attributed sector cycles");
    println!("(conservation-checked per cell: phase sums == end-to-end latency sum)");
    print_table(&headers, &rows);
}

/// Probes compiled out: the breakdown fields are all zero; print nothing.
#[cfg(not(feature = "probes"))]
fn print_breakdown(_results: &[ScenarioResult], _class_h: &[Workload]) {}
