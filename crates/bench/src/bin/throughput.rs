//! Simulator throughput harness: events/sec on the engine hot path and
//! cells/sec through the parallel scenario runner.
//!
//! Runs a fixed grid of (workload × configuration) cells once per thread
//! count in `THREAD_COUNTS` (best-of-[`MEASURE_REPEATS`] on the
//! single-thread measurement pass) and reports:
//!
//! * **events/sec** — simulation events retired per wall-clock second on
//!   one thread (the event-calendar / hashing / allocation hot path);
//! * **cells/sec** — grid cells per second at each thread count, and the
//!   parallel scaling relative to the single-thread pass.
//!
//! One JSON entry is written per thread count to `BENCH_throughput.json`
//! (override with `--json <path>`). `--quick` keeps it CI-sized.
//!
//! After the thread sweep, the same grid runs once per calendar shard
//! count in [`SHARD_COUNTS`] (single-threaded): the sharded calendar is
//! pinned digest-identical to the serial pass, so a divergence here is a
//! hard `DETERMINISM VIOLATION` failure exactly like a thread-count
//! divergence. A second sweep runs the grid once per intra-engine shard
//! *worker* count in [`WORKER_COUNTS`] (one runner thread, four calendar
//! shards): the parallel shard-lane engine is pinned digest-identical
//! too, and its entries are what CI's conditional worker-scaling gate
//! keys on. Entries carry `scaling_measured: false` when the host has
//! one CPU (or the pass ran no host parallelism at all) — scaling
//! numbers from a serialized box are noise and the regression gates must
//! not key on them. On a one-CPU host the 2/4/8-thread passes are
//! skipped outright: they would re-measure the serial pass three times
//! for numbers the gate already refuses to key on. The shard and worker
//! sweeps still run — digest parity is a correctness gate, not a
//! scaling measurement.
//!
//! The result cache is pinned **off** before argument parsing: every
//! number this harness reports is a wall-clock measurement, and a replay
//! — from disk or a prior pass — would be reported as impossible speed.

use avatar_bench::runner::{run_scenarios, Scenario, ScenarioResult};
use avatar_bench::{obj, print_table, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;
use std::path::PathBuf;
use std::sync::Arc;
// Wall-time measurement is this harness's whole job. lint:allow(nondeterminism)
use std::time::Instant;

const CONFIGS: [SystemConfig; 2] = [SystemConfig::Baseline, SystemConfig::Avatar];

/// Thread counts measured, in order. The first entry must be 1: it is the
/// scaling denominator and the events/sec measurement pass.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Identical passes of the single-thread grid; the fastest wall time is
/// the reported measurement. Scheduler noise on a shared box only ever
/// slows a pass down, so best-of-N is the stable estimator the CI gate's
/// tight tolerance needs (single runs were observed ±5% on one core).
const MEASURE_REPEATS: usize = 5;

/// Calendar shard-domain counts exercised after the thread sweep, each on
/// one runner thread. Digest parity with the serial pass is enforced.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Intra-engine shard worker counts exercised after the shard sweep,
/// each on one runner thread with four calendar shards (workers can only
/// split work that sharding already partitioned). Digest parity with the
/// serial pass is enforced; CI's worker-scaling gate keys on these
/// entries when the host has enough CPUs to make the number meaningful.
const WORKER_COUNTS: [usize; 2] = [2, 4];

fn grid(opts: &HarnessArgs, shards: Option<usize>, workers: usize) -> Vec<Scenario> {
    let mut ro = opts.run_options();
    ro.workers = Some(workers);
    let mut scenarios = Vec::new();
    for w in Workload::all() {
        let w = Arc::new(w);
        for cfg in CONFIGS {
            let mut s = Scenario::shared(
                format!("{}/{}", w.abbr, cfg.label()),
                Arc::clone(&w),
                cfg,
                ro.clone(),
            );
            if let Some(n) = shards {
                s = s.with_tweak(move |c| c.shards = n);
            }
            scenarios.push(s);
        }
    }
    scenarios
}

/// Aggregates of one grid pass. The digest folds every cell's full
/// [`avatar_sim::Stats`] digest in submission order; since cells come back
/// in submission order regardless of thread count, every pass of the same
/// grid must produce the same value.
struct PassMeasure {
    events: u64,
    failed: usize,
    digest: u64,
    /// Total coalesced sector requests across all cells.
    sector_requests: u64,
    /// Sectors resolved by the inline hit fast path across all cells.
    fast_path_sectors: u64,
}

fn measure(results: &[ScenarioResult]) -> PassMeasure {
    let mut m = PassMeasure {
        events: 0,
        failed: 0,
        digest: 0,
        sector_requests: 0,
        fast_path_sectors: 0,
    };
    let mut digest = avatar_sim::invariant::Fnv64::new();
    for r in results {
        match &r.stats {
            Ok(s) => {
                m.events += s.events_processed;
                m.sector_requests += s.sector_requests;
                m.fast_path_sectors += s.fast_path_sectors;
                digest.write_u64(s.digest());
            }
            Err(e) => {
                m.failed += 1;
                digest.write_u64(u64::MAX); // failed cells still shift the digest
                eprintln!("cell '{}' failed: {e}", r.label);
            }
        }
    }
    m.digest = digest.finish();
    m
}

/// One measurement pass of the grid: a runner thread count, an
/// intra-engine shard worker count, plus an optional calendar
/// shard-count tweak (`None` = the `--shards` / `AVATAR_SHARDS` default
/// the thread sweep runs under).
struct Pass {
    threads: usize,
    shards: usize,
    workers: usize,
    tweak: Option<usize>,
}

fn main() {
    // Pin the result cache off before `parse` can install one: this
    // harness measures wall time, and replayed cells would report as
    // impossible throughput. First configuration wins, so `--cache` /
    // AVATAR_CACHE cannot re-enable it here.
    avatar_bench::cache::configure(None);
    let opts = HarnessArgs::parse();
    let base_workers = opts.effective_workers();
    let n_cells = grid(&opts, None, base_workers).len();

    // Host environment + speed-knob provenance, recorded per JSON entry so
    // a benchmark number can never be quoted without the knobs it ran
    // under. Cells build their configs from `GpuConfig::default()`, which
    // is where the env-driven knobs are read.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let knobs = avatar_sim::config::GpuConfig::default();
    let base_shards = opts.shards.unwrap_or(knobs.shards);

    // On a one-CPU host every multi-thread pass serializes into a repeat
    // of the serial measurement; skip them (the scaling gate ignores
    // them anyway) and keep only the measurement pass. The shard sweep
    // below is a digest-parity gate and runs regardless.
    let mut passes: Vec<Pass> = THREAD_COUNTS
        .iter()
        .filter(|&&threads| threads == 1 || cpus > 1)
        .map(|&threads| Pass {
            threads,
            shards: base_shards,
            workers: base_workers,
            tweak: opts.shards,
        })
        .collect();
    if cpus == 1 {
        eprintln!(
            "throughput: one-CPU host; skipping the {} multi-thread passes",
            THREAD_COUNTS.len() - passes.len()
        );
    }
    passes.extend(SHARD_COUNTS.iter().map(|&n| Pass {
        threads: 1,
        shards: n,
        workers: base_workers,
        tweak: Some(n),
    }));
    passes.extend(WORKER_COUNTS.iter().map(|&w| Pass {
        threads: 1,
        shards: 4,
        workers: w,
        tweak: Some(4),
    }));

    let mut json = Vec::new();
    let mut rows = Vec::new();
    let mut serial_s = 0.0f64;
    let mut events_per_sec = 0.0f64;
    let mut serial_digest = 0u64;
    let mut total_failed = 0usize;
    for (i, pass) in passes.iter().enumerate() {
        let &Pass { threads, shards, workers, tweak } = pass;
        let serial_pass = i == 0;
        eprintln!(
            "throughput: {n_cells} cells, pass {}/{} on {threads} thread(s), \
             {shards} shard(s), {workers} worker(s){}...",
            i + 1,
            passes.len(),
            if serial_pass { format!(" (best of {MEASURE_REPEATS})") } else { String::new() }
        );
        let repeats = if serial_pass { MEASURE_REPEATS } else { 1 };
        let mut wall_s = f64::INFINITY;
        let mut results = Vec::new();
        for _ in 0..repeats {
            let t0 = Instant::now(); // lint:allow(nondeterminism)
            let pass = run_scenarios(threads, grid(&opts, tweak, workers));
            let s = t0.elapsed().as_secs_f64();
            if s < wall_s {
                wall_s = s;
            }
            results = pass;
        }
        let m = measure(&results);
        let PassMeasure { events, failed, digest, sector_requests, fast_path_sectors } = m;
        total_failed += failed;
        let fast_path_ratio =
            if sector_requests > 0 { fast_path_sectors as f64 / sector_requests as f64 } else { 0.0 };
        if serial_pass {
            serial_s = wall_s;
            events_per_sec = events as f64 / wall_s;
            serial_digest = digest;
        } else if digest != serial_digest {
            eprintln!(
                "DETERMINISM VIOLATION: pass with {threads} thread(s), {shards} shard(s), \
                 {workers} worker(s) digest {digest:#018x} != serial digest \
                 {serial_digest:#018x}"
            );
            total_failed += 1;
        }
        let cells_per_sec = n_cells as f64 / wall_s;
        let scaling = serial_s / wall_s;
        // Scaling numbers only mean something when the pass was actually
        // parallel (grid threads or intra-engine workers) on
        // actually-parallel hardware; a one-CPU box serializes every
        // pass and the "scaling" is scheduler noise.
        let scaling_measured = cpus > 1 && (threads > 1 || workers > 1);
        rows.push(vec![
            threads.to_string(),
            shards.to_string(),
            workers.to_string(),
            format!("{wall_s:.2}"),
            format!("{cells_per_sec:.3}"),
            if scaling_measured { format!("{scaling:.2}") } else { format!("{scaling:.2}*") },
            if serial_pass { format!("{events_per_sec:.0}") } else { "-".into() },
            format!("{:.1}%", fast_path_ratio * 100.0),
            failed.to_string(),
        ]);
        json.push(obj! {
            "cells": n_cells,
            "threads": threads,
            "shards": shards,
            "workers": workers,
            "cpus": cpus,
            "digest": format!("{digest:#018x}"),
            "events_processed": events,
            "events_per_sec": if serial_pass { events_per_sec } else { events as f64 / wall_s },
            "wall_s": wall_s,
            "cells_per_sec": cells_per_sec,
            "scaling": scaling,
            "scaling_measured": scaling_measured,
            "fast_path_ratio": fast_path_ratio,
            "fast_forward": knobs.fast_forward,
            "inline_hit_path": knobs.inline_hit_path,
            "failed_cells": failed,
        });
    }

    println!(
        "\nThroughput: scenario grid (scale {}, {} SMs x {} warps)",
        opts.scale, opts.sms, opts.warps
    );
    println!("(* = scaling not measured: fully serial pass or one-CPU host)");
    print_table(
        &[
            "Threads", "Shards", "Workers", "Wall (s)", "Cells/sec", "Scaling", "Events/sec",
            "FastPath", "Failed",
        ],
        &rows,
    );

    let path = opts.json.clone().unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"));
    opts.dump_json_to(path.clone(), &json);
    eprintln!("wrote {}", path.display());

    if total_failed > 0 {
        // CI treats a diverging cell as a hard failure.
        std::process::exit(1);
    }
}
