//! Simulator throughput harness: events/sec on the engine hot path and
//! cells/sec through the parallel scenario runner.
//!
//! Runs a fixed grid of (workload × configuration) cells twice — once on a
//! single thread, once on `--threads N` workers — and reports:
//!
//! * **events/sec** — simulation events retired per wall-clock second on
//!   one thread (the event-calendar / hashing / allocation hot path);
//! * **cells/sec** — grid cells per second at each thread count, and the
//!   parallel speedup between them.
//!
//! Results are dumped to `BENCH_throughput.json` (override with
//! `--json <path>`). `--quick` keeps it CI-sized.

use avatar_bench::runner::{run_scenarios, Scenario, ScenarioResult};
use avatar_bench::{obj, print_table, HarnessOpts};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;
use std::path::PathBuf;
use std::time::Instant;

const CONFIGS: [SystemConfig; 2] = [SystemConfig::Baseline, SystemConfig::Avatar];

fn grid(opts: &HarnessOpts) -> Vec<Scenario> {
    let ro = opts.run_options();
    let mut scenarios = Vec::new();
    for w in Workload::all() {
        for cfg in CONFIGS {
            scenarios.push(Scenario::new(format!("{}/{}", w.abbr, cfg.label()), &w, cfg, ro.clone()));
        }
    }
    scenarios
}

/// (wall seconds, total events, failed cells) of one grid pass.
fn measure(results: &[ScenarioResult], wall_s: f64) -> (f64, u64, usize) {
    let mut events = 0u64;
    let mut failed = 0usize;
    for r in results {
        match &r.stats {
            Ok(s) => events += s.events_processed,
            Err(e) => {
                failed += 1;
                eprintln!("cell '{}' failed: {e}", r.label);
            }
        }
    }
    (wall_s, events, failed)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_cells = grid(&opts).len();

    eprintln!("throughput: {n_cells} cells, pass 1/2 on 1 thread...");
    let t0 = Instant::now();
    let serial = run_scenarios(1, grid(&opts));
    let (serial_s, serial_events, serial_failed) = measure(&serial, t0.elapsed().as_secs_f64());

    eprintln!("throughput: pass 2/2 on {} threads...", opts.threads);
    let t1 = Instant::now();
    let parallel = run_scenarios(opts.threads, grid(&opts));
    let (parallel_s, _, parallel_failed) = measure(&parallel, t1.elapsed().as_secs_f64());

    let events_per_sec = serial_events as f64 / serial_s;
    let serial_cps = n_cells as f64 / serial_s;
    let parallel_cps = n_cells as f64 / parallel_s;
    let scaling = serial_s / parallel_s;

    let rows = vec![
        vec!["cells".into(), n_cells.to_string(), n_cells.to_string()],
        vec!["wall time (s)".into(), format!("{serial_s:.2}"), format!("{parallel_s:.2}")],
        vec!["cells/sec".into(), format!("{serial_cps:.3}"), format!("{parallel_cps:.3}")],
        vec!["events/sec".into(), format!("{events_per_sec:.0}"), "-".into()],
        vec!["failed cells".into(), serial_failed.to_string(), parallel_failed.to_string()],
    ];
    println!("\nThroughput: scenario grid at 1 vs {} threads (scale {}, {} SMs x {} warps)",
        opts.threads, opts.scale, opts.sms, opts.warps);
    print_table(&["Metric", "1 thread", &format!("{} threads", opts.threads)], &rows);
    println!("\nparallel scaling: {scaling:.2}x with {} threads", opts.threads);

    let json = vec![obj! {
        "cells": n_cells,
        "threads": opts.threads,
        "events_processed": serial_events,
        "events_per_sec": events_per_sec,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "serial_cells_per_sec": serial_cps,
        "parallel_cells_per_sec": parallel_cps,
        "scaling": scaling,
        "failed_cells": serial_failed + parallel_failed,
    }];
    let path = opts.json.clone().unwrap_or_else(|| PathBuf::from("BENCH_throughput.json"));
    opts.dump_json_to(path.clone(), &json);
    eprintln!("wrote {}", path.display());

    if serial_failed + parallel_failed > 0 {
        // CI treats a diverging cell as a hard failure.
        std::process::exit(1);
    }
}
