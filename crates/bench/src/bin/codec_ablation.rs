//! Codec-choice ablation: CAVA with BPC (the paper's pick) versus FPC and
//! BDI, the alternative cache-compression schemes the paper cites.
//!
//! For each codec: the fraction of sectors meeting the 22-byte budget
//! (which bounds CAVA's validation opportunities) and the resulting Avatar
//! speedup.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{geomean, mean, obj, print_table, HarnessArgs};
use avatar_core::system::{speedup, RunOptions, SystemConfig};
use avatar_workloads::{ContentModel, Workload};

const SAMPLE_WORKLOADS: [&str; 5] = ["GEMM", "PAF", "GC", "SSSP", "XSB"];

fn main() {
    let opts = HarnessArgs::parse();

    // codec × workload × {Baseline, Avatar}: one flat grid.
    let mut scenarios = Vec::new();
    for codec in avatar_bpc::Codec::ALL {
        for abbr in SAMPLE_WORKLOADS {
            let w = Workload::by_abbr(abbr).expect("known workload");
            let ro = RunOptions {
                codec,
                scale: opts.scale,
                sms: Some(opts.sms),
                warps: Some(opts.warps),
                ..RunOptions::default()
            };
            scenarios.push(Scenario::new("Baseline", &w, SystemConfig::Baseline, ro.clone()));
            scenarios.push(Scenario::new("Avatar", &w, SystemConfig::Avatar, ro));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = SAMPLE_WORKLOADS.len() * 2;

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (ci, codec) in avatar_bpc::Codec::ALL.into_iter().enumerate() {
        let mut fits = Vec::new();
        let mut speedups = Vec::new();
        for (wi, abbr) in SAMPLE_WORKLOADS.into_iter().enumerate() {
            let w = Workload::by_abbr(abbr).expect("known workload");
            // Budget-fit fraction under this codec, measured on real bytes.
            let model = ContentModel::with_codec(w, codec);
            let fit = (0..4000u64)
                .filter(|i| model.compressed_bits(i * 977) <= avatar_bpc::embed::PAYLOAD_BITS)
                .count();
            fits.push(fit as f64 / 4000.0);

            let base = results[ci * stride + wi * 2].expect_stats();
            let avatar = results[ci * stride + wi * 2 + 1].expect_stats();
            speedups.push(speedup(base, avatar));
        }
        let (fit22_avg, avatar_gmean) = (mean(&fits), geomean(&speedups));
        rows.push(vec![
            codec.name().to_string(),
            format!("{:.1}%", fit22_avg * 100.0),
            format!("{avatar_gmean:.3}"),
        ]);
        json.push(obj! {
            "codec": codec.name(),
            "fit22_avg": fit22_avg,
            "avatar_gmean": avatar_gmean,
        });
    }

    println!("\nCodec ablation: CAVA budget fit and Avatar speedup per compression scheme");
    print_table(&["Codec", "Sectors <= 22B (avg)", "Avatar speedup (gmean)"], &rows);
    println!("\npaper: BPC chosen for its strength on homogeneous GPU data; weaker codecs shrink CAVA's validation window");
    opts.dump_json(&json);
}
