//! Codec-choice ablation: CAVA with BPC (the paper's pick) versus FPC and
//! BDI, the alternative cache-compression schemes the paper cites.
//!
//! For each codec: the fraction of sectors meeting the 22-byte budget
//! (which bounds CAVA's validation opportunities) and the resulting Avatar
//! speedup.

use avatar_bench::{geomean, mean, print_table, HarnessOpts};
use avatar_bpc::Codec;
use avatar_core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_workloads::{ContentModel, Workload};
use serde::Serialize;

const SAMPLE_WORKLOADS: [&str; 5] = ["GEMM", "PAF", "GC", "SSSP", "XSB"];

#[derive(Serialize)]
struct Row {
    codec: String,
    fit22_avg: f64,
    avatar_gmean: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();

    let mut rows = Vec::new();
    let mut json: Vec<Row> = Vec::new();
    for codec in Codec::ALL {
        let mut fits = Vec::new();
        let mut speedups = Vec::new();
        for abbr in SAMPLE_WORKLOADS {
            let w = Workload::by_abbr(abbr).expect("known workload");
            // Budget-fit fraction under this codec, measured on real bytes.
            let model = ContentModel::with_codec(w.clone(), codec);
            let fit = (0..4000u64)
                .filter(|i| model.compressed_bits(i * 977) <= avatar_bpc::embed::PAYLOAD_BITS)
                .count();
            fits.push(fit as f64 / 4000.0);

            let ro = RunOptions {
                codec,
                scale: opts.scale,
                sms: Some(opts.sms),
                warps: Some(opts.warps),
                ..RunOptions::default()
            };
            let base = run(&w, SystemConfig::Baseline, &ro);
            let avatar = run(&w, SystemConfig::Avatar, &ro);
            speedups.push(speedup(&base, &avatar));
            eprintln!("{} / {abbr} done", codec.name());
        }
        let row = Row {
            codec: codec.name().to_string(),
            fit22_avg: mean(&fits),
            avatar_gmean: geomean(&speedups),
        };
        rows.push(vec![
            row.codec.clone(),
            format!("{:.1}%", row.fit22_avg * 100.0),
            format!("{:.3}", row.avatar_gmean),
        ]);
        json.push(row);
    }

    println!("\nCodec ablation: CAVA budget fit and Avatar speedup per compression scheme");
    print_table(&["Codec", "Sectors <= 22B (avg)", "Avatar speedup (gmean)"], &rows);
    println!("\npaper: BPC chosen for its strength on homogeneous GPU data; weaker codecs shrink CAVA's validation window");
    opts.dump_json(&json);
}
