//! Table II: the simulated baseline configuration.
//!
//! Prints the configuration the simulator instantiates so it can be
//! compared line by line with the paper's table. Accepts the standard
//! harness flags (`--json` dumps the rows machine-readably).

use avatar_bench::json::Json;
use avatar_bench::{obj, print_table, HarnessArgs};
use avatar_sim::config::GpuConfig;

fn main() {
    let opts = HarnessArgs::parse();
    let c = GpuConfig::rtx3070();
    let rows = vec![
        vec!["GPU core".into(), format!("{} SMs, max {} warps per SM, LRR-equivalent event order", c.num_sms, c.warps_per_sm)],
        vec!["L1 TLB".into(), format!("{} entries (4KB) + {} (2MB), {} cyc, fully assoc, {} ports, {} MSHRs",
            c.l1_tlb.base_entries, c.l1_tlb.large_entries, c.l1_tlb.latency, c.l1_tlb.ports, c.l1_tlb.mshr_entries)],
        vec!["L2 TLB".into(), format!("{} entries (4KB) + {} (2MB), {} cyc, {}-way, {} ports, {} MSHRs",
            c.l2_tlb.base_entries, c.l2_tlb.large_entries, c.l2_tlb.latency, c.l2_tlb.assoc, c.l2_tlb.ports, c.l2_tlb.mshr_entries)],
        vec!["L1 cache".into(), format!("{}KB, {} cyc, 128B line (4x32B sectors), {}-way", c.l1_cache.bytes >> 10, c.l1_cache.latency, c.l1_cache.assoc)],
        vec!["L2 cache".into(), format!("{}MB, {} cyc, 128B line (sectored), {}-way", c.l2_cache.bytes >> 20, c.l2_cache.latency, c.l2_cache.assoc)],
        vec!["DRAM".into(), format!("{} channels x {} banks, 4KB row, tRCD {} tCL {} tRP {} tWL {} tRTW {} (core cycles), {}-cyc/32B burst",
            c.dram.channels, c.dram.banks_per_channel, c.dram.t_rcd, c.dram.t_cl, c.dram.t_rp, c.dram.t_wl, c.dram.t_rtw, c.dram.burst)],
        vec!["Page table".into(), "4-level radix, 4KB base (2MB on promotion)".into()],
        vec!["Page walkers".into(), format!("{} walkers, {} walk-buffer entries", c.walker.walkers, c.walker.buffer_entries)],
        vec!["PW cache".into(), format!("{} entries", c.walker.pw_cache_entries)],
        vec!["Page prefetcher".into(), format!("TBN-style 64KB neighborhood (enabled: {})", c.uvm.tbn_prefetch)],
        vec!["CAST".into(), format!("{}-entry MOD, confidence threshold {}", c.spec.mod_entries, c.spec.confidence_threshold)],
        vec!["CAVA".into(), format!("BPC (de)compression, {} cyc decompression at L2", c.spec.decompression_latency)],
    ];
    println!("\nTable II: simulated baseline configuration");
    print_table(&["Component", "Configuration"], &rows);
    let json: Vec<Json> = rows
        .iter()
        .map(|r| obj! { "component": r[0].clone(), "configuration": r[1].clone() })
        .collect();
    opts.dump_json(&json);
}
