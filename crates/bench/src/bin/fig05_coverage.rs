//! Fig 5: coverage breakdown of accessed TLB entries, with and without
//! memory oversubscription.
//!
//! The paper shows that hits in large-coverage entries (promotion/CoLT
//! reach) shrink dramatically under oversubscription because evictions
//! shoot down the merged entries. We run the CoLT + Promotion
//! configuration over the class-H workloads and report the hit fractions
//! per coverage bucket.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario, ScenarioResult};
use avatar_bench::{obj, print_table, HarnessArgs};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_sim::stats::CoverageBucket;
use avatar_workloads::{Class, Workload};

fn coverage_fractions(results: &[ScenarioResult]) -> [f64; 5] {
    let mut hits = [0u64; 5];
    for r in results {
        let s = r.expect_stats();
        for (i, h) in s.coverage_hits.iter().enumerate() {
            hits[i] += h;
        }
    }
    let total: u64 = hits.iter().sum();
    let mut out = [0.0; 5];
    if total > 0 {
        for (i, h) in hits.iter().enumerate() {
            out[i] = *h as f64 / total as f64;
        }
    }
    out
}

fn main() {
    let opts = HarnessArgs::parse();
    let class_h: Vec<Workload> = Workload::all().into_iter().filter(|w| w.class == Class::H).collect();
    let scenarios_of = |ro: &RunOptions| -> Vec<Scenario> {
        class_h.iter().map(|w| Scenario::new(w.abbr, w, SystemConfig::Colt, ro.clone())).collect()
    };

    // Three oversubscription regimes × class-H workloads, one flat grid.
    // Our reduced traces re-touch evicted chunks far less than the paper's
    // full benchmark runs, so 130% produces mild churn; a harsher factor
    // shows the same direction amplified.
    let regimes = [
        ("no oversubscription", "normal", opts.run_options()),
        ("130% oversubscription", "oversub130", RunOptions { oversubscription: Some(1.3), ..opts.run_options() }),
        ("300% oversubscription", "oversub300", RunOptions { oversubscription: Some(3.0), ..opts.run_options() }),
    ];
    let mut scenarios = Vec::new();
    for (_, _, ro) in &regimes {
        scenarios.extend(scenarios_of(ro));
    }
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (ri, (label, key, _)) in regimes.iter().enumerate() {
        let slice = &results[ri * class_h.len()..(ri + 1) * class_h.len()];
        let data = coverage_fractions(slice);
        let mut cells = vec![label.to_string()];
        cells.extend(data.iter().map(|f| format!("{:.1}%", f * 100.0)));
        rows.push(cells);
        let buckets: Vec<Json> = CoverageBucket::ALL
            .iter()
            .zip(data.iter())
            .map(|(b, f)| obj! { "bucket": b.label(), "fraction": *f })
            .collect();
        json.push(obj! { "scenario": *key, "buckets": Json::Arr(buckets) });
    }

    let mut headers = vec!["Scenario"];
    headers.extend(CoverageBucket::ALL.iter().map(|b| b.label()));
    println!("\nFig 5: TLB-hit coverage breakdown (CoLT + Promotion, class H)");
    print_table(&headers, &rows);
    println!("\npaper: the large-coverage hit fraction shrinks sharply under oversubscription");
    opts.dump_json(&json);
}
