//! Fig 5: coverage breakdown of accessed TLB entries, with and without
//! memory oversubscription.
//!
//! The paper shows that hits in large-coverage entries (promotion/CoLT
//! reach) shrink dramatically under oversubscription because evictions
//! shoot down the merged entries. We run the CoLT + Promotion
//! configuration over the class-H workloads and report the hit fractions
//! per coverage bucket.

use avatar_bench::{print_table, HarnessOpts};
use avatar_core::system::{run, RunOptions, SystemConfig};
use avatar_sim::stats::CoverageBucket;
use avatar_workloads::{Class, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    buckets: Vec<(String, f64)>,
}

fn coverage_fractions(ro: &RunOptions) -> [f64; 5] {
    let mut hits = [0u64; 5];
    for w in Workload::all().into_iter().filter(|w| w.class == Class::H) {
        let s = run(&w, SystemConfig::Colt, ro);
        for (i, h) in s.coverage_hits.iter().enumerate() {
            hits[i] += h;
        }
        eprintln!("done {}", w.abbr);
    }
    let total: u64 = hits.iter().sum();
    let mut out = [0.0; 5];
    if total > 0 {
        for (i, h) in hits.iter().enumerate() {
            out[i] = *h as f64 / total as f64;
        }
    }
    out
}

fn main() {
    let opts = HarnessOpts::from_args();
    let normal = coverage_fractions(&opts.run_options());
    let oversub = coverage_fractions(&RunOptions {
        oversubscription: Some(1.3),
        ..opts.run_options()
    });
    // Our reduced traces re-touch evicted chunks far less than the paper's
    // full benchmark runs, so 130% produces mild churn; a harsher factor
    // shows the same direction amplified.
    let oversub3 = coverage_fractions(&RunOptions {
        oversubscription: Some(3.0),
        ..opts.run_options()
    });

    let mut rows = Vec::new();
    for (label, data) in [
        ("no oversubscription", normal),
        ("130% oversubscription", oversub),
        ("300% oversubscription", oversub3),
    ] {
        let mut cells = vec![label.to_string()];
        cells.extend(data.iter().map(|f| format!("{:.1}%", f * 100.0)));
        rows.push(cells);
    }

    let mut headers = vec!["Scenario"];
    headers.extend(CoverageBucket::ALL.iter().map(|b| b.label()));
    println!("\nFig 5: TLB-hit coverage breakdown (CoLT + Promotion, class H)");
    print_table(&headers, &rows);
    println!("\npaper: the large-coverage hit fraction shrinks sharply under oversubscription");

    let json: Vec<Row> = [("normal", normal), ("oversub130", oversub), ("oversub300", oversub3)]
        .into_iter()
        .map(|(s, d)| Row {
            scenario: s.to_string(),
            buckets: CoverageBucket::ALL
                .iter()
                .zip(d.iter())
                .map(|(b, f)| (b.label().to_string(), *f))
                .collect(),
        })
        .collect();
    opts.dump_json(&json);
}
