//! Fig 21: performance with a 64KB base page (prefetch-enlarged fault
//! granularity), normalized to the 64KB baseline.
//!
//! Paper: Avatar gains 13% over the baseline, ahead of Promotion by 7.2%
//! and CoLT by 3.0%; the CoLT gap narrows versus 4KB pages because 64KB
//! entries raise its maximum coalesced reach, but irregular workloads
//! (SC, XSB) still favour Avatar. SnakeByte is excluded (64KB pages do
//! not align with its merging), as in the paper.

use avatar_bench::json::Json;
use avatar_bench::runner::{fmt_cell, run_scenarios, speedup_cell, Scenario};
use avatar_bench::{geomean, obj, print_table, HarnessArgs};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_sim::config::BasePage;
use avatar_workloads::Workload;

const CONFIGS: [SystemConfig; 3] =
    [SystemConfig::Promotion, SystemConfig::Colt, SystemConfig::Avatar];

fn main() {
    let opts = HarnessArgs::parse();
    let ro = RunOptions { base_page: BasePage::Size64K, ..opts.run_options() };
    let workloads = Workload::all();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        for cfg in CONFIGS {
            scenarios.push(Scenario::new(cfg.label(), w, cfg, ro.clone()));
        }
    }
    let results = run_scenarios(opts.threads, scenarios);
    let stride = CONFIGS.len() + 1;

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];

    for (wi, w) in workloads.iter().enumerate() {
        let base = &results[wi * stride];
        let mut cells = vec![w.abbr.to_string()];
        let mut speedups = Vec::new();
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let x = speedup_cell(base, &results[wi * stride + 1 + i]);
            if let Some(x) = x {
                per_config[i].push(x);
            }
            cells.push(fmt_cell(x, 3));
            speedups.push(obj! { "config": cfg.label(), "speedup": x });
        }
        json_rows.push(obj! { "workload": w.abbr, "speedups": Json::Arr(speedups) });
        rows.push(cells);
    }

    let mut gmean = vec!["GMEAN".to_string()];
    for xs in &per_config {
        gmean.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(gmean);

    let mut headers = vec!["Workload"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 21: speedup over the 64KB-base-page baseline");
    print_table(&headers, &rows);
    println!("\npaper: Avatar +13% avg; gaps narrow vs 4KB but irregular workloads still favour Avatar");
    opts.dump_json(&json_rows);
}
