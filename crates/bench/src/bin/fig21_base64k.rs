//! Fig 21: performance with a 64KB base page (prefetch-enlarged fault
//! granularity), normalized to the 64KB baseline.
//!
//! Paper: Avatar gains 13% over the baseline, ahead of Promotion by 7.2%
//! and CoLT by 3.0%; the CoLT gap narrows versus 4KB pages because 64KB
//! entries raise its maximum coalesced reach, but irregular workloads
//! (SC, XSB) still favour Avatar. SnakeByte is excluded (64KB pages do
//! not align with its merging), as in the paper.

use avatar_bench::{geomean, print_table, HarnessOpts};
use avatar_core::system::{run, speedup, RunOptions, SystemConfig};
use avatar_sim::config::BasePage;
use avatar_workloads::Workload;
use serde::Serialize;

const CONFIGS: [SystemConfig; 3] =
    [SystemConfig::Promotion, SystemConfig::Colt, SystemConfig::Avatar];

#[derive(Serialize)]
struct Row {
    workload: String,
    speedups: Vec<(String, f64)>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = RunOptions { base_page: BasePage::Size64K, ..opts.run_options() };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];

    for w in Workload::all() {
        let base = run(&w, SystemConfig::Baseline, &ro);
        let mut cells = vec![w.abbr.to_string()];
        let mut speedups = Vec::new();
        for (i, cfg) in CONFIGS.iter().enumerate() {
            let s = run(&w, *cfg, &ro);
            let x = speedup(&base, &s);
            per_config[i].push(x);
            cells.push(format!("{x:.3}"));
            speedups.push((cfg.label().to_string(), x));
        }
        eprintln!("done {}", w.abbr);
        json_rows.push(Row { workload: w.abbr.to_string(), speedups });
        rows.push(cells);
    }

    let mut gmean = vec!["GMEAN".to_string()];
    for xs in &per_config {
        gmean.push(format!("{:.3}", geomean(xs)));
    }
    rows.push(gmean);

    let mut headers = vec!["Workload"];
    headers.extend(CONFIGS.iter().map(|c| c.label()));
    println!("\nFig 21: speedup over the 64KB-base-page baseline");
    print_table(&headers, &rows);
    println!("\npaper: Avatar +13% avg; gaps narrow vs 4KB but irregular workloads still favour Avatar");
    opts.dump_json(&json_rows);
}
