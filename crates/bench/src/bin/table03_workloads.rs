//! Table III: workload categorization — plus a *measured* L2 TLB MPMI
//! check showing the L/M/H classes emerge from the synthetic streams.
//!
//! Run with `--measure` to simulate every workload on the baseline and
//! report misses per million instructions (slower).

use avatar_bench::{print_table, HarnessOpts};
use avatar_core::system::{run, SystemConfig};
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessOpts::from_args();
    let measure = std::env::args().any(|a| a == "--measure");
    let ro = opts.run_options();

    let mut rows = Vec::new();
    for w in Workload::all() {
        let mpmi = if measure {
            let s = run(&w, SystemConfig::Baseline, &ro);
            format!("{:.0}", s.l2_tlb_mpmi())
        } else {
            "-".to_string()
        };
        rows.push(vec![
            format!("{:?}", w.class),
            w.name.to_string(),
            w.abbr.to_string(),
            format!("{:?}", w.data_type),
            format!("{:?}", w.pattern),
            format!("{}MB", w.working_set >> 20),
            mpmi,
        ]);
    }
    println!("\nTable III: workload categorization");
    print_table(
        &["Class", "Benchmark", "Abbr", "Type", "Pattern", "WorkingSet", "L2 MPMI (measured)"],
        &rows,
    );
    if !measure {
        println!("\n(add --measure to simulate and report L2 TLB misses per million instructions)");
    } else {
        println!("\npaper classes: L < 10 MPMI, M 10-60, H > 60");
    }
}
