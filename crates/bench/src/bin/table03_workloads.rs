//! Table III: workload categorization — plus a *measured* L2 TLB MPMI
//! check showing the L/M/H classes emerge from the synthetic streams.
//!
//! Run with `--measure` to simulate every workload on the baseline and
//! report misses per million instructions (slower).

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{obj, print_table, ExtraFlag, HarnessArgs};
use avatar_core::system::SystemConfig;
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse_with(&[ExtraFlag {
        flag: "--measure",
        value_name: None,
        help: "simulate every workload to measure L2 TLB MPMI (slower)",
    }]);
    let measure = opts.extra_present("--measure");
    let ro = opts.run_options();
    let workloads = Workload::all();

    let mpmis: Vec<Option<f64>> = if measure {
        let scenarios: Vec<Scenario> = workloads
            .iter()
            .map(|w| Scenario::new(w.abbr, w, SystemConfig::Baseline, ro.clone()))
            .collect();
        run_scenarios(opts.threads, scenarios)
            .iter()
            .map(|r| Some(r.expect_stats().l2_tlb_mpmi()))
            .collect()
    } else {
        vec![None; workloads.len()]
    };

    let mut rows = Vec::new();
    let mut json: Vec<Json> = Vec::new();
    for (w, mpmi) in workloads.iter().zip(&mpmis) {
        rows.push(vec![
            format!("{:?}", w.class),
            w.name.to_string(),
            w.abbr.to_string(),
            format!("{:?}", w.data_type),
            format!("{:?}", w.pattern),
            format!("{}MB", w.working_set >> 20),
            mpmi.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".to_string()),
        ]);
        json.push(obj! {
            "class": format!("{:?}", w.class),
            "name": w.name,
            "abbr": w.abbr,
            "working_set_mb": w.working_set >> 20,
            "l2_mpmi": *mpmi,
        });
    }
    println!("\nTable III: workload categorization");
    print_table(
        &["Class", "Benchmark", "Abbr", "Type", "Pattern", "WorkingSet", "L2 MPMI (measured)"],
        &rows,
    );
    if !measure {
        println!("\n(add --measure to simulate and report L2 TLB misses per million instructions)");
    } else {
        println!("\npaper classes: L < 10 MPMI, M 10-60, H > 60");
    }
    opts.dump_json(&json);
}
