//! Fig 22: MOD (PC-tagged) versus VPN-T (region-tagged) prediction.
//!
//! Paper: VPN-T outperforms MOD by ~2.8% thanks to direct speculation (no
//! confidence build-up) and shows higher coverage when 32 entries suffice,
//! but is less adaptable to other paging schemes.

use avatar_bench::{geomean, mean, print_table, HarnessOpts};
use avatar_core::system::{run, speedup, SystemConfig};
use avatar_workloads::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    mod_speedup: f64,
    vpnt_speedup: f64,
    mod_coverage: f64,
    vpnt_coverage: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let ro = opts.run_options();

    let mut rows = Vec::new();
    let mut json_rows: Vec<Row> = Vec::new();

    for w in Workload::all() {
        let base = run(&w, SystemConfig::Baseline, &ro);
        let m = run(&w, SystemConfig::Avatar, &ro);
        let v = run(&w, SystemConfig::AvatarVpnT, &ro);
        let row = Row {
            workload: w.abbr.to_string(),
            mod_speedup: speedup(&base, &m),
            vpnt_speedup: speedup(&base, &v),
            mod_coverage: m.spec_coverage(),
            vpnt_coverage: v.spec_coverage(),
        };
        eprintln!("done {}", w.abbr);
        rows.push(vec![
            row.workload.clone(),
            format!("{:.3}", row.mod_speedup),
            format!("{:.3}", row.vpnt_speedup),
            format!("{:.1}%", row.mod_coverage * 100.0),
            format!("{:.1}%", row.vpnt_coverage * 100.0),
        ]);
        json_rows.push(row);
    }

    rows.push(vec![
        "MEAN".into(),
        format!("{:.3}", geomean(&json_rows.iter().map(|r| r.mod_speedup).collect::<Vec<_>>())),
        format!("{:.3}", geomean(&json_rows.iter().map(|r| r.vpnt_speedup).collect::<Vec<_>>())),
        format!("{:.1}%", mean(&json_rows.iter().map(|r| r.mod_coverage).collect::<Vec<_>>()) * 100.0),
        format!("{:.1}%", mean(&json_rows.iter().map(|r| r.vpnt_coverage).collect::<Vec<_>>()) * 100.0),
    ]);

    println!("\nFig 22: MOD vs VPN-T (speedup over baseline; speculation coverage)");
    print_table(&["Workload", "MOD perf", "VPN-T perf", "MOD cov", "VPN-T cov"], &rows);
    println!("\npaper: VPN-T ahead of MOD by ~2.8% perf with higher coverage at 32 entries");
    opts.dump_json(&json_rows);
}
