//! Fig 22: MOD (PC-tagged) versus VPN-T (region-tagged) prediction.
//!
//! Paper: VPN-T outperforms MOD by ~2.8% thanks to direct speculation (no
//! confidence build-up) and shows higher coverage when 32 entries suffice,
//! but is less adaptable to other paging schemes.

use avatar_bench::json::Json;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_bench::{geomean, mean, obj, print_table, HarnessArgs};
use avatar_core::system::{speedup, SystemConfig};
use avatar_workloads::Workload;

fn main() {
    let opts = HarnessArgs::parse();
    let ro = opts.run_options();
    let workloads = Workload::all();

    let mut scenarios = Vec::new();
    for w in &workloads {
        scenarios.push(Scenario::new("Baseline", w, SystemConfig::Baseline, ro.clone()));
        scenarios.push(Scenario::new("MOD", w, SystemConfig::Avatar, ro.clone()));
        scenarios.push(Scenario::new("VPN-T", w, SystemConfig::AvatarVpnT, ro.clone()));
    }
    let results = run_scenarios(opts.threads, scenarios);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    let (mut mod_speedups, mut vpnt_speedups) = (Vec::new(), Vec::new());
    let (mut mod_covs, mut vpnt_covs) = (Vec::new(), Vec::new());

    for (wi, w) in workloads.iter().enumerate() {
        let base = results[wi * 3].expect_stats();
        let m = results[wi * 3 + 1].expect_stats();
        let v = results[wi * 3 + 2].expect_stats();
        let (ms, vs) = (speedup(base, m), speedup(base, v));
        let (mc, vc) = (m.spec_coverage(), v.spec_coverage());
        mod_speedups.push(ms);
        vpnt_speedups.push(vs);
        mod_covs.push(mc);
        vpnt_covs.push(vc);
        rows.push(vec![
            w.abbr.to_string(),
            format!("{ms:.3}"),
            format!("{vs:.3}"),
            format!("{:.1}%", mc * 100.0),
            format!("{:.1}%", vc * 100.0),
        ]);
        json_rows.push(obj! {
            "workload": w.abbr,
            "mod_speedup": ms,
            "vpnt_speedup": vs,
            "mod_coverage": mc,
            "vpnt_coverage": vc,
        });
    }

    rows.push(vec![
        "MEAN".into(),
        format!("{:.3}", geomean(&mod_speedups)),
        format!("{:.3}", geomean(&vpnt_speedups)),
        format!("{:.1}%", mean(&mod_covs) * 100.0),
        format!("{:.1}%", mean(&vpnt_covs) * 100.0),
    ]);

    println!("\nFig 22: MOD vs VPN-T (speedup over baseline; speculation coverage)");
    print_table(&["Workload", "MOD perf", "VPN-T perf", "MOD cov", "VPN-T cov"], &rows);
    println!("\npaper: VPN-T ahead of MOD by ~2.8% perf with higher coverage at 32 entries");
    opts.dump_json(&json_rows);
}
