//! Parallel scenario runner for the figure/table harnesses.
//!
//! Every paper artifact is a grid of *independent* `(SystemConfig ×
//! Workload)` simulations, so the harnesses fan their cells across a
//! scoped `std::thread` pool (no external crates). Three properties are
//! load-bearing:
//!
//! * **Determinism** — results come back keyed by cell index, in
//!   submission order, regardless of completion order or thread count.
//!   Each simulation is itself deterministic, so `--threads 1` and
//!   `--threads 8` produce byte-identical rows (a tested invariant).
//! * **Panic isolation** — a diverging cell reports as a failed row
//!   (`Err` with the panic message) instead of killing the whole figure.
//! * **Wall-time capture** — each cell records its own execution time, so
//!   the throughput harness can report cells/sec without re-running.

use avatar_core::system::{run_with, RunOptions, SystemConfig};
use avatar_sim::config::GpuConfig;
use avatar_sim::Stats;
use avatar_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
// Wall-time capture of harness cells, never simulated state. lint:allow(nondeterminism)
use std::time::{Duration, Instant};

/// Pads shared per-cell state to its own cache-line pair so worker threads
/// taking adjacent jobs (or storing adjacent results) never false-share.
/// 128 bytes covers the adjacent-line prefetch granularity of current x86
/// parts, not just the 64-byte line itself.
#[repr(align(128))]
struct Padded<T>(T);

/// Outcome of one cell: the closure's result (or the panic message that
/// killed it) plus its wall time.
#[derive(Debug)]
pub struct Cell<T> {
    /// Index of the job in the submitted vector.
    pub index: usize,
    /// `Ok` result, or `Err(panic message)` if the cell panicked.
    pub outcome: Result<T, String>,
    /// Wall time the cell took on its worker thread.
    pub wall: Duration,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Runs `jobs` across `threads` workers, returning results in submission
/// order. `threads` is clamped to at least 1; with one thread the jobs run
/// inline on the calling thread (no pool, easier profiling).
pub fn run_cells<T, F>(threads: usize, jobs: Vec<F>) -> Vec<Cell<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    let run_one = |index: usize, job: F| {
        let start = Instant::now(); // lint:allow(nondeterminism)
        let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(panic_message);
        Cell { index, outcome, wall: start.elapsed() }
    };
    if threads == 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| run_one(i, j)).collect();
    }
    let slots: Vec<Padded<Mutex<Option<F>>>> =
        jobs.into_iter().map(|j| Padded(Mutex::new(Some(j)))).collect();
    let results: Vec<Padded<Mutex<Option<Cell<T>>>>> =
        (0..slots.len()).map(|_| Padded(Mutex::new(None))).collect();
    let next = Padded(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.0.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = slots[i].0.lock().expect("job slot").take().expect("job taken twice");
                let cell = run_one(i, job);
                *results[i].0.lock().expect("result slot") = Some(cell);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.0.into_inner().expect("result lock").expect("worker died before storing"))
        .collect()
}

/// A [`GpuConfig`] adjustment applied after assembly (ablation knob).
pub type ConfigTweak = Box<dyn Fn(&mut GpuConfig) + Send + Sync>;

/// One simulation cell of a figure grid: a workload on a system
/// configuration with run options, plus an optional [`GpuConfig`] tweak
/// for ablation/sensitivity studies.
pub struct Scenario {
    /// Human-readable cell label, carried into the result (figure row/column).
    pub label: String,
    /// The workload to run, shared (not deep-cloned) across the cells of a
    /// grid: every row of a figure references the same `Arc`.
    pub workload: Arc<Workload>,
    /// The system configuration to run it on.
    pub config: SystemConfig,
    /// Scale/SMs/oversubscription/etc.
    pub opts: RunOptions,
    /// Optional config tweak applied after assembly (ablations).
    pub tweak: Option<ConfigTweak>,
}

impl Scenario {
    /// A plain cell: workload × config × options, labelled by the config.
    pub fn new(label: impl Into<String>, workload: &Workload, config: SystemConfig, opts: RunOptions) -> Self {
        Self::shared(label, Arc::new(workload.clone()), config, opts)
    }

    /// Like [`new`](Self::new) but shares an already-`Arc`d workload —
    /// grids that build many cells over the same workload pay one clone
    /// total instead of one per cell.
    pub fn shared(
        label: impl Into<String>,
        workload: Arc<Workload>,
        config: SystemConfig,
        opts: RunOptions,
    ) -> Self {
        Self { label: label.into(), workload, config, opts, tweak: None }
    }

    /// Attaches a [`GpuConfig`] tweak (ablation/sensitivity knob).
    pub fn with_tweak(mut self, tweak: impl Fn(&mut GpuConfig) + Send + Sync + 'static) -> Self {
        self.tweak = Some(Box::new(tweak));
        self
    }

    /// Runs the cell synchronously. When a trace destination is set but
    /// untagged, workload + cell label become the tag, so every cell of
    /// a grid sharing one `--trace-out` writes its own file.
    pub fn run(&self) -> Stats {
        let mut opts = self.opts.clone();
        if opts.trace_out.is_some() && opts.trace_tag.is_none() {
            opts.trace_tag = Some(format!("{} {}", self.workload.abbr, self.label));
        }
        match &self.tweak {
            Some(t) => run_with(&self.workload, self.config, &opts, |c| t(c)),
            None => run_with(&self.workload, self.config, &opts, |_| {}),
        }
    }
}

/// Result of one [`Scenario`] cell.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// Simulation statistics, or the panic message if the cell diverged.
    pub stats: Result<Stats, String>,
    /// Wall time of the cell.
    pub wall: Duration,
}

impl ScenarioResult {
    /// The statistics, panicking with the cell label on a failed cell.
    /// Figure binaries that cannot render partial grids use this.
    pub fn expect_stats(&self) -> &Stats {
        match &self.stats {
            Ok(s) => s,
            Err(e) => panic!("cell '{}' failed: {e}", self.label),
        }
    }
}

/// Speedup of `other` over `base`, or `None` if either cell failed —
/// figure binaries render failed cells as `ERR` rows instead of dying.
pub fn speedup_cell(base: &ScenarioResult, other: &ScenarioResult) -> Option<f64> {
    match (&base.stats, &other.stats) {
        (Ok(b), Ok(o)) => Some(avatar_core::system::speedup(b, o)),
        _ => None,
    }
}

/// Formats an optional metric for a table cell (`ERR` for failed cells).
pub fn fmt_cell(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "ERR".to_string(),
    }
}

/// Fans `scenarios` across `threads` workers; results are in submission
/// order regardless of thread count or completion order.
pub fn run_scenarios(threads: usize, scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
    // Labels are split off up front: workers return bare `Stats`, and a
    // panicked cell still reports under its real label instead of an
    // anonymous index.
    let labels: Vec<String> = scenarios.iter().map(|s| s.label.clone()).collect();
    let jobs: Vec<_> = scenarios.into_iter().map(|s| move || s.run()).collect();
    run_cells(threads, jobs)
        .into_iter()
        .zip(labels)
        .map(|(c, label)| ScenarioResult { label, stats: c.outcome, wall: c.wall })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs finish in reverse submission order (earlier jobs sleep
        // longer); indices must still match.
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis((8 - i) as u64 * 3));
                    i * 10
                }
            })
            .collect();
        let cells = run_cells(4, jobs);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.outcome.as_ref().copied().unwrap(), i * 10);
        }
    }

    #[test]
    fn panics_become_failed_cells() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("cell diverged on purpose")),
            Box::new(|| 3),
        ];
        let cells = run_cells(2, jobs);
        assert_eq!(cells[0].outcome.as_ref().copied().unwrap(), 1);
        assert!(cells[1].outcome.as_ref().unwrap_err().contains("diverged on purpose"));
        assert_eq!(cells[2].outcome.as_ref().copied().unwrap(), 3);
    }

    #[test]
    fn single_thread_runs_inline() {
        let cells = run_cells(1, vec![|| 7]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].outcome.as_ref().copied().unwrap(), 7);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..3usize).map(|i| move || i).collect();
        let cells = run_cells(64, jobs);
        assert_eq!(cells.len(), 3);
    }

    #[test]
    fn zero_jobs_zero_cells() {
        let cells: Vec<Cell<u32>> = run_cells(4, Vec::<fn() -> u32>::new());
        assert!(cells.is_empty());
    }
}
