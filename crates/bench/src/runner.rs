//! Parallel scenario runner for the figure/table harnesses.
//!
//! Every paper artifact is a grid of *independent* `(PolicySelection ×
//! Workload)` simulations, so the harnesses fan their cells across a
//! scoped `std::thread` pool (no external crates). Three properties are
//! load-bearing:
//!
//! * **Determinism** — results come back keyed by cell index, in
//!   submission order, regardless of completion order or thread count.
//!   Each simulation is itself deterministic, so `--threads 1` and
//!   `--threads 8` produce byte-identical rows (a tested invariant).
//! * **Panic isolation** — a diverging cell reports as a failed row
//!   (`Err` with the panic message) instead of killing the whole figure.
//! * **Wall-time capture** — each cell records its own execution time, so
//!   the throughput harness can report cells/sec without re-running.
//!
//! [`run_scenarios`] additionally plans each sweep against the result
//! cache ([`crate::cache`]): cells whose content-address has a valid
//! on-disk entry replay instead of running, duplicate cells within one
//! sweep run once and memoize (even with the disk cache disabled), and
//! fresh results are stored back. Cells with a trace destination bypass
//! both paths — trace files are a side effect a replay would not
//! reproduce. A cache entry whose recorded digest fails re-verification
//! aborts the sweep: silent reuse of a corrupt result is never an option.

use avatar_core::policy::PolicySelection;
use avatar_core::system::{gpu_config_for, run_policy_with, RunOptions};
use avatar_sim::config::GpuConfig;
use avatar_sim::fxhash::FxHashMap;
use avatar_sim::Stats;
use avatar_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
// Wall-time capture of harness cells, never simulated state. lint:allow(nondeterminism)
use std::time::{Duration, Instant};

/// Pads shared per-cell state to its own cache-line pair so worker threads
/// taking adjacent jobs (or storing adjacent results) never false-share.
/// 128 bytes covers the adjacent-line prefetch granularity of current x86
/// parts, not just the 64-byte line itself.
#[repr(align(128))]
struct Padded<T>(T);

/// Outcome of one cell: the closure's result (or the panic message that
/// killed it) plus its wall time.
#[derive(Debug)]
pub struct Cell<T> {
    /// Index of the job in the submitted vector.
    pub index: usize,
    /// `Ok` result, or `Err(panic message)` if the cell panicked.
    pub outcome: Result<T, String>,
    /// Wall time the cell took on its worker thread.
    pub wall: Duration,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Runs `jobs` across `threads` workers, returning results in submission
/// order. `threads` is clamped to at least 1; with one thread the jobs run
/// inline on the calling thread (no pool, easier profiling).
pub fn run_cells<T, F>(threads: usize, jobs: Vec<F>) -> Vec<Cell<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    let run_one = |index: usize, job: F| {
        let start = Instant::now(); // lint:allow(nondeterminism)
        let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(panic_message);
        Cell { index, outcome, wall: start.elapsed() }
    };
    if threads == 1 {
        return jobs.into_iter().enumerate().map(|(i, j)| run_one(i, j)).collect();
    }
    let slots: Vec<Padded<Mutex<Option<F>>>> =
        jobs.into_iter().map(|j| Padded(Mutex::new(Some(j)))).collect();
    let results: Vec<Padded<Mutex<Option<Cell<T>>>>> =
        (0..slots.len()).map(|_| Padded(Mutex::new(None))).collect();
    let next = Padded(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.0.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = slots[i].0.lock().expect("job slot").take().expect("job taken twice");
                let cell = run_one(i, job);
                *results[i].0.lock().expect("result slot") = Some(cell);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.0.into_inner().expect("result lock").expect("worker died before storing"))
        .collect()
}

/// A [`GpuConfig`] adjustment applied after assembly (ablation knob).
pub type ConfigTweak = Box<dyn Fn(&mut GpuConfig) + Send + Sync>;

/// One simulation cell of a figure grid: a workload on a translation
/// policy with run options, plus an optional [`GpuConfig`] tweak for
/// ablation/sensitivity studies.
pub struct Scenario {
    /// Human-readable cell label, carried into the result (figure row/column).
    pub label: String,
    /// The workload to run, shared (not deep-cloned) across the cells of a
    /// grid: every row of a figure references the same `Arc`.
    pub workload: Arc<Workload>,
    /// The translation policy to run it on. `SystemConfig` converts via
    /// `Into`, so enum-era call sites pass their variant unchanged.
    pub policy: PolicySelection,
    /// Scale/SMs/oversubscription/etc.
    pub opts: RunOptions,
    /// Optional config tweak applied after assembly (ablations).
    pub tweak: Option<ConfigTweak>,
}

impl Scenario {
    /// A plain cell: workload × policy × options. Accepts a
    /// [`PolicySelection`] or a legacy `SystemConfig` variant.
    pub fn new(
        label: impl Into<String>,
        workload: &Workload,
        policy: impl Into<PolicySelection>,
        opts: RunOptions,
    ) -> Self {
        Self::shared(label, Arc::new(workload.clone()), policy, opts)
    }

    /// Like [`new`](Self::new) but shares an already-`Arc`d workload —
    /// grids that build many cells over the same workload pay one clone
    /// total instead of one per cell.
    pub fn shared(
        label: impl Into<String>,
        workload: Arc<Workload>,
        policy: impl Into<PolicySelection>,
        opts: RunOptions,
    ) -> Self {
        Self { label: label.into(), workload, policy: policy.into(), opts, tweak: None }
    }

    /// Attaches a [`GpuConfig`] tweak (ablation/sensitivity knob).
    pub fn with_tweak(mut self, tweak: impl Fn(&mut GpuConfig) + Send + Sync + 'static) -> Self {
        self.tweak = Some(Box::new(tweak));
        self
    }

    /// The cell's content-address for the result cache, or `None` when
    /// the cell writes a trace — a side effect a cache replay would not
    /// reproduce, so traced cells always run (and are never memoized).
    pub fn cache_key(&self) -> Option<u64> {
        if self.opts.trace_out.is_some() {
            return None;
        }
        let mut cfg = gpu_config_for(&self.workload, self.policy, &self.opts);
        if let Some(t) = &self.tweak {
            t(&mut cfg);
        }
        Some(crate::cache::cell_key(&self.workload, self.policy, &self.opts, &cfg))
    }

    /// Runs the cell synchronously. When a trace destination is set but
    /// untagged, workload + cell label become the tag, so every cell of
    /// a grid sharing one `--trace-out` writes its own file.
    pub fn run(&self) -> Stats {
        let mut opts = self.opts.clone();
        if opts.trace_out.is_some() && opts.trace_tag.is_none() {
            opts.trace_tag = Some(format!("{} {}", self.workload.abbr, self.label));
        }
        match &self.tweak {
            Some(t) => run_policy_with(&self.workload, self.policy, &opts, |c| t(c)),
            None => run_policy_with(&self.workload, self.policy, &opts, |_| {}),
        }
    }
}

/// Result of one [`Scenario`] cell.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// Simulation statistics, or the panic message if the cell diverged.
    pub stats: Result<Stats, String>,
    /// Wall time of the cell.
    pub wall: Duration,
}

impl ScenarioResult {
    /// The statistics, panicking with the cell label on a failed cell.
    /// Figure binaries that cannot render partial grids use this.
    pub fn expect_stats(&self) -> &Stats {
        match &self.stats {
            Ok(s) => s,
            Err(e) => panic!("cell '{}' failed: {e}", self.label),
        }
    }
}

/// Speedup of `other` over `base`, or `None` if either cell failed —
/// figure binaries render failed cells as `ERR` rows instead of dying.
pub fn speedup_cell(base: &ScenarioResult, other: &ScenarioResult) -> Option<f64> {
    match (&base.stats, &other.stats) {
        (Ok(b), Ok(o)) => Some(avatar_core::system::speedup(b, o)),
        _ => None,
    }
}

/// Formats an optional metric for a table cell (`ERR` for failed cells).
pub fn fmt_cell(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "ERR".to_string(),
    }
}

/// How one submitted cell will be satisfied, planned before any worker
/// thread spawns.
enum Plan {
    /// Run for real; payload is the index into the spawned job list.
    Run(usize),
    /// Identical to an earlier cell of this sweep (by content-address);
    /// payload is that cell's submission index. Replayed by cloning.
    Memo(usize),
    /// Replayed from a digest-verified on-disk entry (boxed: `Stats`
    /// is large and `Run`/`Memo` are a single word).
    Hit(Box<crate::cache::CachedCell>),
}

/// Fans `scenarios` across `threads` workers; results are in submission
/// order regardless of thread count or completion order.
///
/// Before spawning, the sweep is planned against the result cache:
/// disk hits and in-sweep duplicates replay instead of running (see the
/// module docs). A cache entry that fails digest re-verification
/// panics — a sweep must never silently mix verified and unverifiable
/// results.
pub fn run_scenarios(threads: usize, scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
    // Labels are split off up front: workers return bare `Stats`, and a
    // panicked cell still reports under its real label instead of an
    // anonymous index.
    let labels: Vec<String> = scenarios.iter().map(|s| s.label.clone()).collect();
    let keys: Vec<Option<u64>> = scenarios.iter().map(|s| s.cache_key()).collect();
    let cache = crate::cache::global();

    // Plan each cell: first occurrence of a key checks the disk cache;
    // later occurrences memoize the first regardless of disk state.
    let mut first_of: FxHashMap<u64, usize> = FxHashMap::default();
    let mut plans: Vec<Plan> = Vec::with_capacity(scenarios.len());
    let mut jobs: Vec<Scenario> = Vec::new();
    let mut job_keys: Vec<Option<u64>> = Vec::new();
    for (i, s) in scenarios.into_iter().enumerate() {
        let key = keys[i];
        if let Some(k) = key {
            if let Some(&orig) = first_of.get(&k) {
                plans.push(Plan::Memo(orig));
                continue;
            }
            first_of.insert(k, i);
            if let Some(c) = cache {
                match c.load(k) {
                    Ok(Some(cell)) => {
                        crate::cache::note_hit(cell.wall_s);
                        plans.push(Plan::Hit(Box::new(cell)));
                        continue;
                    }
                    Ok(None) => crate::cache::note_miss(),
                    // Hard stop: the entry exists, claims this address,
                    // and fails verification. Running the cell anyway
                    // would paper over a corrupt store.
                    Err(e) => panic!("result cache error for cell '{}': {e}", labels[i]),
                }
            }
        }
        plans.push(Plan::Run(jobs.len()));
        jobs.push(s);
        job_keys.push(key);
    }

    let closures: Vec<_> = jobs.into_iter().map(|s| move || s.run()).collect();
    let cells = run_cells(threads, closures);

    // Store fresh results back (best-effort: a read-only cache directory
    // degrades to a warning, not a failed sweep).
    if let Some(c) = cache {
        for (cell, key) in cells.iter().zip(&job_keys) {
            if let (Ok(stats), Some(k)) = (&cell.outcome, key) {
                if let Err(e) = c.store(*k, stats, cell.wall.as_secs_f64()) {
                    eprintln!("warning: {e}");
                }
            }
        }
    }

    // Assemble in submission order. Memoized cells clone the resolved
    // result of their original (always an earlier index) and credit the
    // wall time that original spent — or recorded, if it was itself a
    // disk hit — as skipped.
    let mut ran: Vec<Option<Cell<Stats>>> = cells.into_iter().map(Some).collect();
    let mut results: Vec<ScenarioResult> = Vec::with_capacity(plans.len());
    let mut source_wall_s: Vec<f64> = Vec::with_capacity(plans.len());
    for (plan, label) in plans.into_iter().zip(labels) {
        let (stats, wall, src_wall_s) = match plan {
            Plan::Run(j) => {
                let cell = ran[j].take().expect("each job index is consumed exactly once");
                let wall_s = cell.wall.as_secs_f64();
                (cell.outcome, cell.wall, wall_s)
            }
            Plan::Hit(cell) => (Ok(cell.stats), Duration::ZERO, cell.wall_s),
            Plan::Memo(orig) => {
                crate::cache::note_memoized(source_wall_s[orig]);
                (results[orig].stats.clone(), Duration::ZERO, source_wall_s[orig])
            }
        };
        source_wall_s.push(src_wall_s);
        results.push(ScenarioResult { label, stats, wall });
    }
    results
}

/// Deterministic jittered exponential backoff for retry loops.
///
/// Attempt `a` sleeps somewhere in the envelope `[2^a/2, 3·2^a/2)`
/// milliseconds, with the exponent capped at 10 (≈1s envelope) and the
/// jitter drawn from a splitmix64-style mix of `(cell, attempt)`. No
/// clock and no RNG state: the schedule is a pure function of its
/// arguments, so retries are reproducible per cell and lint-clean on
/// the nondeterminism rule, while distinct cells de-synchronize instead
/// of thundering-herd retrying in lockstep.
pub fn retry_backoff(cell: u64, attempt: u32) -> Duration {
    const MAX_EXP: u32 = 10;
    const BASE_US: u64 = 1_000;
    let exp = BASE_US << attempt.min(MAX_EXP);
    // splitmix64 finalizer over the (cell, attempt) pair.
    let mut z =
        cell ^ u64::from(attempt).wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Jitter spans the full ±50% of the exponential step.
    Duration::from_micros(exp / 2 + z % exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Jobs sleep deterministic, jittered backoff amounts (the same
        // helper real retry loops use), so completion order scrambles
        // relative to submission order; the runner must still hand each
        // result back at its submission index.
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                move || {
                    std::thread::sleep(retry_backoff(i as u64, ((8 - i) % 5) as u32));
                    i * 10
                }
            })
            .collect();
        let cells = run_cells(4, jobs);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.outcome.as_ref().copied().unwrap(), i * 10);
        }
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        for cell in 0..16u64 {
            for attempt in 0..16u32 {
                let d = retry_backoff(cell, attempt);
                assert_eq!(d, retry_backoff(cell, attempt), "pure function of (cell, attempt)");
                let exp = 1_000u128 << attempt.min(10);
                let us = d.as_micros();
                assert!(
                    us >= exp / 2 && us < exp / 2 + exp,
                    "attempt {attempt} escaped the [exp/2, 3exp/2) envelope: {us}us vs exp {exp}us"
                );
            }
        }
        // The exponent cap holds for absurd attempt counts: no overflow,
        // still inside the widest envelope.
        assert!(retry_backoff(3, u32::MAX).as_micros() < (1_000u128 << 10) * 3 / 2);
        // Distinct cells draw distinct jitter (de-synchronized retries).
        let draws: Vec<_> = (0..8u64).map(|c| retry_backoff(c, 4)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]), "cells must not retry in lockstep");
    }

    #[test]
    fn panics_become_failed_cells() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("cell diverged on purpose")),
            Box::new(|| 3),
        ];
        let cells = run_cells(2, jobs);
        assert_eq!(cells[0].outcome.as_ref().copied().unwrap(), 1);
        assert!(cells[1].outcome.as_ref().unwrap_err().contains("diverged on purpose"));
        assert_eq!(cells[2].outcome.as_ref().copied().unwrap(), 3);
    }

    #[test]
    fn single_thread_runs_inline() {
        let cells = run_cells(1, vec![|| 7]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].outcome.as_ref().copied().unwrap(), 7);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..3usize).map(|i| move || i).collect();
        let cells = run_cells(64, jobs);
        assert_eq!(cells.len(), 3);
    }

    #[test]
    fn zero_jobs_zero_cells() {
        let cells: Vec<Cell<u32>> = run_cells(4, Vec::<fn() -> u32>::new());
        assert!(cells.is_empty());
    }
}
