//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper: it runs the relevant configurations over the
//! relevant workloads, prints the same rows/series the paper reports, and
//! optionally dumps machine-readable JSON (`--json <path>`) for
//! EXPERIMENTS.md bookkeeping.
//!
//! Common flags (parsed by [`HarnessOpts::from_args`]):
//!
//! * `--scale <f>`   — workload working-set scale (default 1.0: paper footprints)
//! * `--sms <n>`     — SM count (default 16; paper config is 46)
//! * `--warps <n>`   — warps per SM (default 32; paper config is 48)
//! * `--full`        — paper-scale run: 46 SMs × 48 warps, scale 1.0
//! * `--quick`       — CI-sized run: 4 SMs × 8 warps, scale 0.05
//! * `--json <path>` — dump rows as JSON
//! * `--threads <n>` — worker threads for the scenario grid (default:
//!   `AVATAR_THREADS` env var, else `std::thread::available_parallelism()`)

#![forbid(unsafe_code)]

pub mod json;
pub mod runner;
pub mod timer;

use avatar_core::system::RunOptions;
use json::Json;
use std::path::PathBuf;

/// Options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Workload scale factor.
    pub scale: f64,
    /// SM count.
    pub sms: usize,
    /// Warps per SM.
    pub warps: usize,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
    /// Worker threads for the scenario grid.
    pub threads: usize,
}

/// Default thread count: `AVATAR_THREADS` if set and parsable, else the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("AVATAR_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("warning: AVATAR_THREADS='{v}' is not a positive integer; ignoring"),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self { scale: 1.0, sms: 16, warps: 32, json: None, threads: default_threads() }
    }
}

impl HarnessOpts {
    /// Parses the common command-line flags.
    pub fn from_args() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// Parses flags from an explicit argument list (testable core of
    /// [`HarnessOpts::from_args`]). A known flag with an unparsable value
    /// warns on stderr and keeps the default instead of silently
    /// swallowing the value.
    pub fn from_arg_list(args: impl IntoIterator<Item = String>) -> Self {
        fn parse_or_warn<T: std::str::FromStr>(flag: &str, value: Option<String>, default: T) -> T {
            match value {
                Some(v) => match v.parse() {
                    Ok(parsed) => parsed,
                    Err(_) => {
                        eprintln!("warning: {flag} value '{v}' is not valid; using the default");
                        default
                    }
                },
                None => {
                    eprintln!("warning: {flag} needs a value; using the default");
                    default
                }
            }
        }
        let mut opts = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => opts.scale = parse_or_warn("--scale", args.next(), opts.scale),
                "--sms" => opts.sms = parse_or_warn("--sms", args.next(), opts.sms),
                "--warps" => opts.warps = parse_or_warn("--warps", args.next(), opts.warps),
                "--threads" => {
                    opts.threads = parse_or_warn("--threads", args.next(), opts.threads).max(1)
                }
                "--full" => {
                    opts.scale = 1.0;
                    opts.sms = 46;
                    opts.warps = 48;
                }
                "--quick" => {
                    opts.scale = 0.05;
                    opts.sms = 4;
                    opts.warps = 8;
                }
                "--json" => opts.json = args.next().map(PathBuf::from),
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        opts
    }

    /// Converts to simulator run options.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: self.scale,
            sms: Some(self.sms),
            warps: Some(self.warps),
            ..RunOptions::default()
        }
    }

    /// Writes rows to the `--json` path, if given.
    pub fn dump_json(&self, rows: &[Json]) {
        if let Some(path) = &self.json {
            self.dump_json_to(path.clone(), rows);
        }
    }

    /// Writes rows to an explicit path (used by harnesses with a default
    /// dump location, e.g. `throughput`).
    pub fn dump_json_to(&self, path: PathBuf, rows: &[Json]) {
        let doc = Json::Arr(rows.to_vec());
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("failed to write {}: {e}", path.display());
        }
    }
}

/// Geometric mean (the paper's averaging for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a fixed-width table: headers then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_doubles() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn default_opts_reasonable() {
        let o = HarnessOpts::default();
        assert!(o.scale > 0.0 && o.sms > 0 && o.warps > 0 && o.threads >= 1);
        let ro = o.run_options();
        assert_eq!(ro.sms, Some(16));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_list_parses_known_flags() {
        let o = HarnessOpts::from_arg_list(args(&[
            "--scale", "0.5", "--sms", "8", "--warps", "16", "--threads", "3",
        ]));
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.sms, 8);
        assert_eq!(o.warps, 16);
        assert_eq!(o.threads, 3);
    }

    #[test]
    fn unparsable_value_falls_back_to_default() {
        let o = HarnessOpts::from_arg_list(args(&["--sms", "lots", "--scale", "0.25"]));
        assert_eq!(o.sms, HarnessOpts::default().sms);
        assert_eq!(o.scale, 0.25);
    }

    #[test]
    fn threads_zero_clamps_to_one() {
        let o = HarnessOpts::from_arg_list(args(&["--threads", "0"]));
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn quick_and_full_presets() {
        let q = HarnessOpts::from_arg_list(args(&["--quick"]));
        assert_eq!((q.sms, q.warps), (4, 8));
        let f = HarnessOpts::from_arg_list(args(&["--full"]));
        assert_eq!((f.sms, f.warps), (46, 48));
    }
}
