//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper: it runs the relevant configurations over the
//! relevant workloads, prints the same rows/series the paper reports, and
//! optionally dumps machine-readable JSON (`--json <path>`) for
//! EXPERIMENTS.md bookkeeping.
//!
//! Common flags (parsed by [`HarnessOpts::from_args`]):
//!
//! * `--scale <f>`   — workload working-set scale (default 1.0: paper footprints)
//! * `--sms <n>`     — SM count (default 16; paper config is 46)
//! * `--warps <n>`   — warps per SM (default 32; paper config is 48)
//! * `--full`        — paper-scale run: 46 SMs × 48 warps, scale 1.0
//! * `--quick`       — CI-sized run: 4 SMs × 8 warps, scale 0.05
//! * `--json <path>` — dump rows as JSON

#![forbid(unsafe_code)]

use avatar_core::system::RunOptions;
use serde::Serialize;
use std::path::PathBuf;

/// Options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Workload scale factor.
    pub scale: f64,
    /// SM count.
    pub sms: usize,
    /// Warps per SM.
    pub warps: usize,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self { scale: 1.0, sms: 16, warps: 32, json: None }
    }
}

impl HarnessOpts {
    /// Parses the common command-line flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    opts.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(opts.scale)
                }
                "--sms" => {
                    opts.sms = args.next().and_then(|v| v.parse().ok()).unwrap_or(opts.sms)
                }
                "--warps" => {
                    opts.warps = args.next().and_then(|v| v.parse().ok()).unwrap_or(opts.warps)
                }
                "--full" => {
                    opts.scale = 1.0;
                    opts.sms = 46;
                    opts.warps = 48;
                }
                "--quick" => {
                    opts.scale = 0.05;
                    opts.sms = 4;
                    opts.warps = 8;
                }
                "--json" => opts.json = args.next().map(PathBuf::from),
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        opts
    }

    /// Converts to simulator run options.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: self.scale,
            sms: Some(self.sms),
            warps: Some(self.warps),
            ..RunOptions::default()
        }
    }

    /// Writes rows to the `--json` path, if given.
    pub fn dump_json<T: Serialize>(&self, rows: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(rows) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("failed to write {}: {e}", path.display());
                    }
                }
                Err(e) => eprintln!("failed to serialize rows: {e}"),
            }
        }
    }
}

/// Geometric mean (the paper's averaging for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a fixed-width table: headers then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_doubles() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn default_opts_reasonable() {
        let o = HarnessOpts::default();
        assert!(o.scale > 0.0 && o.sms > 0 && o.warps > 0);
        let ro = o.run_options();
        assert_eq!(ro.sms, Some(16));
    }
}
