//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper: it runs the relevant configurations over the
//! relevant workloads, prints the same rows/series the paper reports, and
//! optionally dumps machine-readable JSON (`--json <path>`) for
//! EXPERIMENTS.md bookkeeping.
//!
//! Command-line parsing is shared: [`HarnessArgs::parse`] handles the
//! flags every harness understands (`--quick`, `--full`, `--scale`,
//! `--sms`, `--warps`, `--threads`, `--seed`, `--json`, `--trace-out`)
//! and rejects everything undeclared with usage text; binaries with
//! bespoke flags declare them as [`ExtraFlag`]s — see [`cli`].

#![forbid(unsafe_code)]

pub mod cache;
pub mod cli;
pub mod json;
pub mod runner;
pub mod timer;

pub use cli::{default_threads, usage, ExtraFlag, HarnessArgs};

/// Geometric mean (the paper's averaging for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a fixed-width table: headers then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_doubles() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
