//! Shared command-line parsing for every figure/table harness binary.
//!
//! [`HarnessArgs`] replaces the per-binary ad-hoc `std::env::args` loops
//! with one strict parser. Flags common to all harnesses:
//!
//! * `--quick` / `--full` — CI-sized (4 SMs × 8 warps, scale 0.05) or
//!   paper-scale (46 × 48, scale 1.0) presets
//! * `--scale <f>`, `--sms <n>`, `--warps <n>` — individual geometry knobs
//! * `--threads <n>` — worker threads for the scenario grid (default:
//!   `AVATAR_THREADS`, else available parallelism)
//! * `--workers <n>` — intra-engine shard worker threads (default:
//!   `AVATAR_SHARD_WORKERS`, else 1). Digest-invariant. Unless
//!   `--threads` is explicit, the grid width is divided by this so
//!   cells × intra-cell workers stays within the thread budget.
//! * `--policy <name>` / `--policies <list>` — restrict a harness to
//!   named translation policies from the registry (repeatable flag /
//!   comma-separated list; see [`avatar_core::policy::REGISTRY`]).
//!   Unknown names are hard errors listing the catalog.
//! * `--seed <n>` — extra seed mixed into allocation randomness
//! * `--json <path>` — dump rows as machine-readable JSON
//! * `--trace-out <path>` — Chrome-trace destination (`probes` builds;
//!   falls back to the `AVATAR_TRACE_OUT` environment variable)
//! * `--cache <dir>` / `--no-cache` — result-cache directory override /
//!   kill switch. The cache is **on by default** (`AVATAR_CACHE` env,
//!   else `target/avatar-cache`): repeat sweeps replay digest-verified
//!   results instead of re-simulating — see [`crate::cache`].
//!
//! Binaries with bespoke flags declare them as [`ExtraFlag`]s; anything
//! else is a **hard error**: the binary prints its usage text and exits
//! with status 2 instead of silently ignoring a typo (`--warsp 48` used
//! to run the default geometry and *look* like a paper-scale result).

use crate::json::Json;
use avatar_core::policy::PolicySelection;
use avatar_core::system::RunOptions;
use std::path::PathBuf;

/// A binary-specific flag, declared so the shared parser can accept it,
/// list it in usage text, and reject everything undeclared.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// The flag spelling, including dashes (`"--abbr"`).
    pub flag: &'static str,
    /// `Some("NAME")` if the flag takes a value (shown in usage);
    /// `None` for a boolean switch.
    pub value_name: Option<&'static str>,
    /// One-line description for the usage text.
    pub help: &'static str,
}

/// Parsed command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Workload scale factor.
    pub scale: f64,
    /// SM count.
    pub sms: usize,
    /// Warps per SM.
    pub warps: usize,
    /// Extra seed mixed into allocation randomness.
    pub seed: u64,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
    /// Worker threads for the scenario grid.
    pub threads: usize,
    /// Calendar shard-domain override (`--shards`); `None` keeps the
    /// config default (`AVATAR_SHARDS`, else 1). Applied as a
    /// [`GpuConfig`](avatar_sim::config::GpuConfig) tweak by harnesses —
    /// the digest is pinned identical across shard counts, so this is a
    /// structure knob, not a result knob.
    pub shards: Option<usize>,
    /// Intra-engine shard workers (`--workers`); `None` keeps the engine
    /// default (`AVATAR_SHARD_WORKERS`, else 1). Host-side execution
    /// width only — the digest is pinned identical for every value.
    pub workers: Option<usize>,
    /// Whether `--threads` was given explicitly. When it was not, the
    /// nested thread budget divides the default grid width by the
    /// effective worker count so cells × intra-cell workers stays within
    /// `AVATAR_THREADS` (else all cores).
    threads_explicit: bool,
    /// Chrome-trace destination (`--trace-out` / `AVATAR_TRACE_OUT`).
    pub trace_out: Option<PathBuf>,
    /// Result-cache directory override (`--cache`); `None` falls back to
    /// `AVATAR_CACHE`, then [`crate::cache::DEFAULT_DIR`].
    pub cache_dir: Option<PathBuf>,
    /// Disables the result cache entirely (`--no-cache`).
    pub no_cache: bool,
    /// Policy selections accumulated from `--policy` / `--policies`,
    /// in occurrence order. Empty means "the harness's default set" —
    /// query via [`policies`](Self::policies).
    policy_list: Vec<PolicySelection>,
    /// Values captured for declared [`ExtraFlag`]s, in occurrence order.
    extras: Vec<(&'static str, Option<String>)>,
}

/// Default thread count: `AVATAR_THREADS` if set and parsable, else the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("AVATAR_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("warning: AVATAR_THREADS='{v}' is not a positive integer; ignoring"),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 1.0,
            sms: 16,
            warps: 32,
            seed: RunOptions::default().seed,
            json: None,
            threads: default_threads(),
            shards: None,
            workers: None,
            threads_explicit: false,
            trace_out: None,
            cache_dir: None,
            no_cache: false,
            policy_list: Vec::new(),
            extras: Vec::new(),
        }
    }
}

/// Usage text for a binary and its declared extra flags.
pub fn usage(bin: &str, extras: &[ExtraFlag]) -> String {
    let mut s = format!(
        "usage: {bin} [--quick | --full] [--scale F] [--sms N] [--warps N]\n       \
         [--threads N] [--shards N] [--workers N] [--seed N] [--json PATH]\n       \
         [--policy NAME]... [--policies LIST]\n       \
         [--trace-out PATH] [--cache DIR | --no-cache]"
    );
    for e in extras {
        match e.value_name {
            Some(v) => s.push_str(&format!(" [{} {v}]", e.flag)),
            None => s.push_str(&format!(" [{}]", e.flag)),
        }
    }
    s.push_str(
        "\n\n  --quick            CI-sized run: 4 SMs x 8 warps, scale 0.05\n  \
         --full             paper-scale run: 46 SMs x 48 warps, scale 1.0\n  \
         --scale F          workload working-set scale (default 1.0)\n  \
         --sms N            SM count (default 16)\n  \
         --warps N          warps per SM (default 32)\n  \
         --threads N        worker threads (default: AVATAR_THREADS, else all cores)\n  \
         --shards N         calendar shard domains per engine (default:\n                     \
         AVATAR_SHARDS, else 1; results are shard-count invariant)\n  \
         --workers N        intra-engine shard worker threads (default:\n                     \
         AVATAR_SHARD_WORKERS, else 1; results are worker-count\n                     \
         invariant; the default --threads grid width is divided\n                     \
         by this so total host threads stay within budget)\n  \
         --seed N           extra allocation seed (default 7)\n  \
         --json PATH        dump rows as JSON\n  \
         --policy NAME      restrict to a registry policy (repeatable;\n                     \
         e.g. avatar, revelator, avatar+dead)\n  \
         --policies LIST    comma-separated policy names (appends to --policy)\n  \
         --trace-out PATH   write a Chrome/Perfetto trace (probes builds;\n                     \
         env fallback: AVATAR_TRACE_OUT)\n  \
         --cache DIR        result-cache directory (default: AVATAR_CACHE,\n                     \
         else target/avatar-cache; repeat sweeps replay\n                     \
         digest-verified results instead of re-simulating)\n  \
         --no-cache         disable the result cache for this run",
    );
    for e in extras {
        let head = match e.value_name {
            Some(v) => format!("{} {v}", e.flag),
            None => e.flag.to_string(),
        };
        s.push_str(&format!("\n  {head:<18} {}", e.help));
    }
    s
}

impl HarnessArgs {
    /// Parses the process arguments; on any error prints the usage text
    /// and exits with status 2.
    pub fn parse() -> Self {
        Self::parse_with(&[])
    }

    /// Like [`parse`](Self::parse) for binaries with bespoke flags.
    pub fn parse_with(extras: &[ExtraFlag]) -> Self {
        let mut argv = std::env::args();
        let bin = argv
            .next()
            .as_deref()
            .map(|p| {
                std::path::Path::new(p)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.to_string())
            })
            .unwrap_or_else(|| "harness".to_string());
        match Self::try_parse(argv, extras) {
            Ok(mut args) => {
                if args.trace_out.is_none() {
                    args.trace_out = std::env::var_os("AVATAR_TRACE_OUT").map(PathBuf::from);
                }
                args.apply_thread_budget();
                args.configure_cache();
                args
            }
            Err(e) => {
                eprintln!("{bin}: error: {e}\n");
                eprintln!("{}", usage(&bin, extras));
                std::process::exit(2);
            }
        }
    }

    /// The testable parsing core: no process exit, no environment reads.
    /// `args` excludes the program name.
    pub fn try_parse(
        args: impl IntoIterator<Item = String>,
        extras: &[ExtraFlag],
    ) -> Result<Self, String> {
        fn value<T: std::str::FromStr>(
            flag: &str,
            next: Option<String>,
        ) -> Result<T, String> {
            let v = next.ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("{flag} value '{v}' is not valid"))
        }
        let mut opts = Self::default();
        let mut args = args.into_iter();
        'next_arg: while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => opts.scale = value("--scale", args.next())?,
                "--sms" => opts.sms = value("--sms", args.next())?,
                "--warps" => opts.warps = value("--warps", args.next())?,
                "--seed" => opts.seed = value("--seed", args.next())?,
                "--threads" => {
                    opts.threads = value::<usize>("--threads", args.next())?.max(1);
                    opts.threads_explicit = true;
                }
                "--shards" => {
                    opts.shards = Some(value::<usize>("--shards", args.next())?.max(1))
                }
                "--workers" => {
                    opts.workers = Some(value::<usize>("--workers", args.next())?.max(1))
                }
                "--full" => {
                    opts.scale = 1.0;
                    opts.sms = 46;
                    opts.warps = 48;
                }
                "--quick" => {
                    opts.scale = 0.05;
                    opts.sms = 4;
                    opts.warps = 8;
                }
                "--json" => {
                    opts.json =
                        Some(PathBuf::from(value::<String>("--json", args.next())?))
                }
                "--trace-out" => {
                    opts.trace_out =
                        Some(PathBuf::from(value::<String>("--trace-out", args.next())?))
                }
                "--cache" => {
                    opts.cache_dir =
                        Some(PathBuf::from(value::<String>("--cache", args.next())?))
                }
                "--no-cache" => opts.no_cache = true,
                "--policy" => {
                    let name = value::<String>("--policy", args.next())?;
                    opts.policy_list.push(PolicySelection::parse(&name)?);
                }
                "--policies" => {
                    let list = value::<String>("--policies", args.next())?;
                    opts.policy_list.extend(PolicySelection::parse_list(&list)?);
                }
                other => {
                    for e in extras {
                        if e.flag == other {
                            let v = match e.value_name {
                                Some(_) => Some(value::<String>(e.flag, args.next())?),
                                None => None,
                            };
                            opts.extras.push((e.flag, v));
                            continue 'next_arg;
                        }
                    }
                    return Err(format!("unknown flag '{other}'"));
                }
            }
        }
        Ok(opts)
    }

    /// The effective intra-engine worker count: `--workers` if given,
    /// else `AVATAR_SHARD_WORKERS` (the same environment default the
    /// engine itself reads), else 1.
    pub fn effective_workers(&self) -> usize {
        if let Some(w) = self.workers {
            return w;
        }
        std::env::var("AVATAR_SHARD_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1)
    }

    /// Applies the nested thread budget: the *default* grid width
    /// (`AVATAR_THREADS`, else all cores) is a budget on total host
    /// threads, so when each cell runs `workers` intra-engine threads
    /// the grid spawns `threads / workers` cells at a time. An explicit
    /// `--threads` is taken literally — the caller asked for exactly
    /// that many concurrent cells.
    pub fn apply_thread_budget(&mut self) {
        if !self.threads_explicit {
            self.threads = (self.threads / self.effective_workers()).max(1);
        }
    }

    /// Installs the process-global result cache from the resolved
    /// `--cache` / `--no-cache` / `AVATAR_CACHE` knobs (default: enabled
    /// at [`crate::cache::DEFAULT_DIR`]). First configuration wins, so a
    /// harness that must never replay cached results (the throughput
    /// timing bin) pins the cache off by calling
    /// `cache::configure(None)` *before* parsing.
    pub fn configure_cache(&self) {
        let cache = if self.no_cache {
            None
        } else {
            let dir = self
                .cache_dir
                .clone()
                .or_else(|| std::env::var_os("AVATAR_CACHE").map(PathBuf::from))
                .unwrap_or_else(|| PathBuf::from(crate::cache::DEFAULT_DIR));
            Some(crate::cache::ResultCache::new(dir))
        };
        crate::cache::configure(cache);
    }

    /// The policy selections given via `--policy` / `--policies`, in
    /// occurrence order, or `None` when the user gave neither — the
    /// harness then runs its own default set.
    pub fn policies(&self) -> Option<&[PolicySelection]> {
        if self.policy_list.is_empty() {
            None
        } else {
            Some(&self.policy_list)
        }
    }

    /// The captured value of a declared value-taking extra flag (last
    /// occurrence wins), or `None` if it was not given.
    pub fn extra_value(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether a declared boolean extra flag was given.
    pub fn extra_present(&self, flag: &str) -> bool {
        self.extras.iter().any(|(f, _)| *f == flag)
    }

    /// Converts to simulator run options.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            scale: self.scale,
            sms: Some(self.sms),
            warps: Some(self.warps),
            seed: self.seed,
            trace_out: self.trace_out.clone(),
            workers: self.workers,
            ..RunOptions::default()
        }
    }

    /// Applies the shared [`GpuConfig`](avatar_sim::config::GpuConfig)
    /// tweak flags (currently `--shards`) to an assembled config.
    /// Harnesses pass this as the `run_with` / `Scenario::with_tweak`
    /// hook so every binary honours the flags identically.
    pub fn apply_config(&self, cfg: &mut avatar_sim::config::GpuConfig) {
        if let Some(n) = self.shards {
            cfg.shards = n;
        }
    }

    /// Writes rows to the `--json` path, if given.
    pub fn dump_json(&self, rows: &[Json]) {
        if let Some(path) = &self.json {
            self.dump_json_to(path.clone(), rows);
        }
    }

    /// Writes rows to an explicit path (used by harnesses with a default
    /// dump location, e.g. `throughput`).
    ///
    /// When the result cache is active, a trailing `"section": "cache"`
    /// object records the process-wide hit/miss/memoized counters and
    /// the wall time replays skipped, so a dump can never be quoted
    /// without disclosing how much of it was replayed. CI's warm-sweep
    /// gate strips this section (it legitimately differs between the
    /// cold and warm pass) and byte-diffs the rest.
    pub fn dump_json_to(&self, path: PathBuf, rows: &[Json]) {
        let mut rows = rows.to_vec();
        if crate::cache::global().is_some() {
            let t = crate::cache::tally();
            rows.push(crate::obj! {
                "section": "cache",
                "cache_hits": t.hits,
                "cache_misses": t.misses,
                "cache_memoized": t.memoized,
                "cache_skipped_wall_s": t.skipped_wall_s,
            });
        }
        let doc = Json::Arr(rows);
        if let Err(e) = std::fs::write(&path, doc.pretty()) {
            eprintln!("failed to write {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parse(list: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse(args(list), &[])
    }

    #[test]
    fn default_args_reasonable() {
        let o = HarnessArgs::default();
        assert!(o.scale > 0.0 && o.sms > 0 && o.warps > 0 && o.threads >= 1);
        let ro = o.run_options();
        assert_eq!(ro.sms, Some(16));
        assert_eq!(ro.seed, RunOptions::default().seed);
    }

    #[test]
    fn known_flags_parse() {
        let o = parse(&[
            "--scale", "0.5", "--sms", "8", "--warps", "16", "--threads", "3", "--seed", "42",
        ])
        .expect("valid args");
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.sms, 8);
        assert_eq!(o.warps, 16);
        assert_eq!(o.threads, 3);
        assert_eq!(o.seed, 42);
        assert_eq!(o.run_options().seed, 42);
    }

    #[test]
    fn unknown_flag_is_a_hard_error() {
        let err = parse(&["--warsp", "48"]).expect_err("typo must not be ignored");
        assert!(err.contains("--warsp"), "error names the flag: {err}");
    }

    #[test]
    fn bad_value_is_a_hard_error() {
        let err = parse(&["--sms", "lots"]).expect_err("bad value must not default");
        assert!(err.contains("--sms") && err.contains("lots"));
        let err = parse(&["--scale"]).expect_err("missing value must error");
        assert!(err.contains("--scale"));
    }

    #[test]
    fn quick_and_full_presets() {
        let q = parse(&["--quick"]).expect("preset parses");
        assert_eq!((q.sms, q.warps), (4, 8));
        assert_eq!(q.scale, 0.05);
        let f = parse(&["--full"]).expect("preset parses");
        assert_eq!((f.sms, f.warps), (46, 48));
    }

    #[test]
    fn threads_zero_clamps_to_one() {
        let o = parse(&["--threads", "0"]).expect("valid args");
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn shards_flag_tweaks_config() {
        let o = parse(&["--shards", "4"]).expect("valid args");
        assert_eq!(o.shards, Some(4));
        let mut cfg = avatar_sim::config::GpuConfig::rtx3070();
        o.apply_config(&mut cfg);
        assert_eq!(cfg.shards, 4);
        // Unset: the config keeps whatever default it was assembled with.
        let d = parse(&[]).expect("valid args");
        assert_eq!(d.shards, None);
        let before = cfg.shards;
        d.apply_config(&mut cfg);
        assert_eq!(cfg.shards, before);
        // Zero clamps to one shard (the classic single-domain calendar).
        let z = parse(&["--shards", "0"]).expect("valid args");
        assert_eq!(z.shards, Some(1));
    }

    #[test]
    fn workers_flag_parses_and_flows_into_run_options() {
        let o = parse(&["--workers", "4"]).expect("valid args");
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.run_options().workers, Some(4));
        // Zero clamps to one (serial drain).
        let z = parse(&["--workers", "0"]).expect("valid args");
        assert_eq!(z.workers, Some(1));
        // Unset stays None so the engine's own default applies.
        let d = parse(&[]).expect("valid args");
        assert_eq!(d.workers, None);
        assert_eq!(d.run_options().workers, None);
    }

    #[test]
    fn thread_budget_divides_default_but_not_explicit_threads() {
        // Default threads with --workers: the grid width shrinks so
        // cells x intra-cell workers stays within the budget.
        let mut o = parse(&["--workers", "4"]).expect("valid args");
        let before = o.threads;
        o.apply_thread_budget();
        assert_eq!(o.threads, (before / 4).max(1));
        // Explicit --threads is taken literally.
        let mut e = parse(&["--threads", "8", "--workers", "4"]).expect("valid args");
        e.apply_thread_budget();
        assert_eq!(e.threads, 8);
        // No workers: budget is a no-op (effective_workers >= 1 always).
        let mut n = parse(&["--threads", "3"]).expect("valid args");
        n.apply_thread_budget();
        assert_eq!(n.threads, 3);
    }

    #[test]
    fn trace_out_flows_into_run_options() {
        let o = parse(&["--trace-out", "t.json"]).expect("valid args");
        assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(
            o.run_options().trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
    }

    #[test]
    fn extra_flags_must_be_declared() {
        let extras = [
            ExtraFlag { flag: "--abbr", value_name: Some("WL"), help: "workload" },
            ExtraFlag { flag: "--measure", value_name: None, help: "measure MPMIs" },
        ];
        let o = HarnessArgs::try_parse(args(&["--abbr", "SSSP", "--measure"]), &extras)
            .expect("declared extras parse");
        assert_eq!(o.extra_value("--abbr"), Some("SSSP"));
        assert!(o.extra_present("--measure"));
        assert!(!o.extra_present("--other"));
        // Undeclared: hard error even though another binary declares it.
        assert!(parse(&["--measure"]).is_err());
        // Last occurrence wins for repeated value flags.
        let o2 = HarnessArgs::try_parse(args(&["--abbr", "SSSP", "--abbr", "KM"]), &extras)
            .expect("repeats parse");
        assert_eq!(o2.extra_value("--abbr"), Some("KM"));
    }

    #[test]
    fn policy_flags_parse() {
        // Default: no restriction — harnesses run their own set.
        let d = parse(&[]).expect("valid args");
        assert!(d.policies().is_none());
        // Repeatable --policy accumulates in order.
        let o = parse(&["--policy", "avatar", "--policy", "revelator"]).expect("valid args");
        let sels = o.policies().expect("two selections");
        assert_eq!(sels.len(), 2);
        assert_eq!(sels[0].label(), "Avatar");
        assert_eq!(sels[1].label(), "Revelator");
        // --policies takes a comma list and appends after --policy.
        let m = parse(&["--policy", "baseline", "--policies", "colt, avatar+dead"])
            .expect("valid args");
        let sels = m.policies().expect("three selections");
        assert_eq!(sels.len(), 3);
        assert_eq!(sels[2].label(), "Avatar+DoA");
        // Unknown names are hard errors that list the catalog.
        let err = parse(&["--policy", "warpspeed"]).expect_err("unknown policy");
        assert!(err.contains("warpspeed") && err.contains("avatar"), "{err}");
        let err = parse(&["--policies", "colt,ideal+dead"]).expect_err("bad modifier combo");
        assert!(err.contains("ideal"), "{err}");
    }

    #[test]
    fn cache_flags_parse() {
        let d = parse(&[]).expect("valid args");
        assert_eq!(d.cache_dir, None);
        assert!(!d.no_cache, "cache defaults to enabled");
        let o = parse(&["--cache", "/tmp/c"]).expect("valid args");
        assert_eq!(o.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/c")));
        let n = parse(&["--no-cache"]).expect("valid args");
        assert!(n.no_cache);
        assert!(parse(&["--cache"]).is_err(), "--cache requires a directory");
    }

    #[test]
    fn usage_lists_extras() {
        let extras =
            [ExtraFlag { flag: "--abbr", value_name: Some("WL"), help: "workload abbr" }];
        let u = usage("fig99_demo", &extras);
        assert!(u.contains("fig99_demo"));
        assert!(u.contains("--abbr WL"));
        assert!(u.contains("--trace-out"));
        assert!(u.contains("workload abbr"));
    }
}
