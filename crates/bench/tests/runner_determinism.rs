//! The runner's central guarantee: a figure grid produces byte-identical
//! machine-readable rows no matter how many worker threads execute it.
//! Each simulation is deterministic and results come back keyed by cell
//! index, so `--threads 1` and `--threads N` must agree exactly.

use avatar_bench::json::Json;
use avatar_bench::obj;
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_workloads::Workload;

fn small_grid() -> Vec<Scenario> {
    let ro = RunOptions { scale: 0.02, sms: Some(2), warps: Some(4), ..RunOptions::default() };
    let mut scenarios = Vec::new();
    for abbr in ["GEMM", "SSSP"] {
        let w = Workload::by_abbr(abbr).expect("known workload");
        for cfg in [SystemConfig::Baseline, SystemConfig::Avatar] {
            scenarios.push(Scenario::new(format!("{abbr}/{}", cfg.label()), &w, cfg, ro.clone()));
        }
    }
    scenarios
}

/// Renders the grid's results the way the figure binaries do: rows of
/// simulation-derived fields only (never wall time).
fn rows_json(threads: usize) -> String {
    let rows: Vec<Json> = run_scenarios(threads, small_grid())
        .iter()
        .map(|r| {
            let s = r.expect_stats();
            obj! {
                "label": r.label.clone(),
                "cycles": s.cycles,
                "events": s.events_processed,
                "page_walks": s.page_walks,
                "sector_latency": s.sector_latency.value(),
            }
        })
        .collect();
    Json::Arr(rows).pretty()
}

#[test]
fn one_and_many_threads_dump_identical_json() {
    let serial = rows_json(1);
    let parallel = rows_json(4);
    assert_eq!(serial, parallel, "thread count changed the dumped rows");
    // And the grid actually simulated something.
    assert!(serial.contains("\"cycles\""));
}

#[test]
fn repeated_parallel_runs_are_stable() {
    assert_eq!(rows_json(4), rows_json(4));
}

/// Per-cell FNV digests over *every* Stats field (not just the handful a
/// figure dumps) must agree between a serial and a parallel pass. This is
/// strictly stronger than the JSON comparison above: a counter no figure
/// renders still flips the digest.
#[test]
fn full_stats_digests_match_across_thread_counts() {
    let digests = |threads: usize| -> Vec<u64> {
        run_scenarios(threads, small_grid())
            .iter()
            .map(|r| r.expect_stats().digest())
            .collect()
    };
    let serial = digests(1);
    for &threads in &[2usize, 8] {
        assert_eq!(serial, digests(threads), "digest diverged at {threads} threads");
    }
    // Distinct cells really produce distinct state (guards against a
    // degenerate digest that hashes nothing).
    assert!(serial.windows(2).any(|w| w[0] != w[1]));
}
