//! End-to-end gates for the incremental sweep engine: the runner's
//! cache planner, in-sweep memoization, warm-sweep replay, and the
//! hard-error path for a tampered entry.
//!
//! The process-global cache handle is set-once, so everything runs in a
//! single `#[test]` with explicit phases instead of separate tests that
//! would race to configure it.

use avatar_bench::cache::{self, ResultCache};
use avatar_bench::runner::{run_scenarios, Scenario};
use avatar_core::system::{RunOptions, SystemConfig};
use avatar_workloads::Workload;
use std::sync::Arc;

fn opts(seed: u64) -> RunOptions {
    RunOptions { scale: 0.02, sms: Some(2), warps: Some(4), seed, ..RunOptions::default() }
}

fn grid(seed: u64) -> Vec<Scenario> {
    let w = Arc::new(Workload::by_abbr("GEMM").expect("workload table contains GEMM"));
    vec![
        Scenario::shared("base", Arc::clone(&w), SystemConfig::Baseline, opts(seed)),
        Scenario::shared("avatar", Arc::clone(&w), SystemConfig::Avatar, opts(seed)),
        // Identical to the first cell (different label, same content):
        // must memoize, not re-run.
        Scenario::shared("base again", Arc::clone(&w), SystemConfig::Baseline, opts(seed)),
    ]
}

#[test]
fn cached_sweeps_replay_verified_results() {
    let dir = std::env::temp_dir().join(format!("avatar-sweep-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        cache::configure(Some(ResultCache::new(&dir))),
        "this test must own the process-global cache; run it in its own binary"
    );

    // Phase 1 — cold sweep: every unique cell is a miss and runs; the
    // duplicate cell memoizes in-process.
    let cold = run_scenarios(2, grid(7));
    let t1 = cache::tally();
    assert_eq!(t1.hits, 0, "cold sweep cannot hit");
    assert_eq!(t1.misses, 2, "two unique cells miss");
    assert_eq!(t1.memoized, 1, "duplicate cell memoizes");
    let digest = |r: &avatar_bench::runner::ScenarioResult| {
        r.stats.as_ref().expect("cell ran clean").digest()
    };
    assert_eq!(digest(&cold[0]), digest(&cold[2]), "memoized cell clones its original");
    assert_ne!(digest(&cold[0]), digest(&cold[1]));

    // Phase 2 — warm sweep: both unique cells replay from disk with
    // digest re-verification; results are identical to the cold pass.
    let warm = run_scenarios(2, grid(7));
    let t2 = cache::tally();
    assert_eq!(t2.hits, 2, "warm sweep replays both unique cells");
    assert_eq!(t2.misses, t1.misses, "warm sweep runs nothing");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(digest(c), digest(w), "replayed cell '{}' diverged", w.label);
        assert_eq!(w.wall, std::time::Duration::ZERO, "replay reports zero wall");
    }
    assert!(t2.skipped_wall_s > 0.0, "replays credit the skipped wall time");

    // Phase 3 — a different seed is a different content-address: misses.
    let _ = run_scenarios(2, grid(8));
    let t3 = cache::tally();
    assert_eq!(t3.misses, t2.misses + 2, "new seed means new cells");

    // Phase 4 — tampering with a stored entry is a hard sweep error,
    // never a silent re-run or replay.
    let victim = grid(7)[0].cache_key().expect("untraced cell has a key");
    let path = ResultCache::new(&dir).entry_path(victim);
    let text = std::fs::read_to_string(&path).expect("entry exists after the cold sweep");
    let tampered = text.replacen("\"stats_hex\": \"", "\"stats_hex\": \"00", 1);
    assert_ne!(text, tampered);
    std::fs::write(&path, tampered).expect("tamper write");
    let outcome = std::panic::catch_unwind(|| run_scenarios(1, grid(7)));
    assert!(outcome.is_err(), "a sweep over a corrupt cache entry must abort");

    // Phase 5 — cells writing traces bypass the cache entirely.
    let mut traced = grid(7);
    for s in &mut traced {
        s.opts.trace_out = Some(std::path::PathBuf::from("/dev/null"));
    }
    assert!(traced[0].cache_key().is_none(), "traced cells have no content-address");

    let _ = std::fs::remove_dir_all(&dir);
}
