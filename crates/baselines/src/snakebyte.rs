//! SnakeByte: adaptive and recursive page merging (Lee et al., HPCA 2023).
//!
//! SnakeByte grows TLB reach by recursively merging *buddy* entries:
//! whenever two adjacent, equally sized, aligned entries map a physically
//! contiguous region, they merge into one entry of twice the coverage.
//! Merging is not free — each step references the in-memory page table to
//! record contiguity metadata, which the model charges as extra memory
//! references drained by the engine (`drain_extra_memory_refs`). On a
//! shootdown, merged entries splinter (they are dropped whole), and
//! rebuilding their reach costs merge traffic again — the behaviour behind
//! the paper's oversubscription observations (Fig 19).
//!
//! Coverage is capped at 2MB (one UVM chunk): physical contiguity in the
//! simulated allocator comes from chunk reservations, so larger merges
//! would never validate.

use avatar_sim::addr::{Ppn, Vpn, PAGES_PER_CHUNK};
use avatar_sim::checkpoint::{CkptError, Reader, Writer};
use avatar_sim::tlb::{TlbFill, TlbHit, TlbModel};

/// Page-table references charged per merge step (read + metadata update).
pub const REFS_PER_MERGE: u64 = 2;

#[derive(Debug, Clone)]
struct Entry {
    vpn: u64,
    ppn: u64,
    len: u64,
    last_use: u64,
}

impl Entry {
    fn covers(&self, vpn: u64) -> bool {
        vpn >= self.vpn && vpn < self.vpn + self.len
    }

    fn overlaps(&self, vpn: u64, pages: u64) -> bool {
        self.vpn < vpn + pages && vpn < self.vpn + self.len
    }
}

/// The SnakeByte TLB model.
#[derive(Debug)]
pub struct SnakeByteTlb {
    entries: Vec<Entry>,
    capacity: usize,
    stamp: u64,
    extra_refs: u64,
    /// Total merge operations performed (model statistic).
    pub merges: u64,
    /// Merged entries splintered by shootdowns (model statistic).
    pub splinters: u64,
}

impl SnakeByteTlb {
    /// Creates a SnakeByte TLB with `entries` slots. The design keeps one
    /// unified, fully associative structure — merged entries of any size
    /// share it.
    pub fn new(entries: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity: entries.max(1),
            stamp: 0,
            extra_refs: 0,
            merges: 0,
            splinters: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Recursively merges the entry at `idx` with its buddy while possible.
    fn merge_up(&mut self, mut idx: usize) {
        loop {
            let (vpn, _ppn, len, last_use) = {
                let e = &self.entries[idx];
                (e.vpn, e.ppn, e.len, e.last_use)
            };
            if len >= PAGES_PER_CHUNK {
                return;
            }
            let buddy_vpn = vpn ^ len;
            let Some(bidx) = self
                .entries
                .iter()
                .position(|e| e.vpn == buddy_vpn && e.len == len)
            else {
                return;
            };
            // Physical contiguity check: the merged region must map one
            // contiguous frame range.
            let (lo_idx, hi_idx) = if vpn < buddy_vpn { (idx, bidx) } else { (bidx, idx) };
            let lo_ppn = self.entries[lo_idx].ppn;
            let hi_ppn = self.entries[hi_idx].ppn;
            if hi_ppn != lo_ppn + len {
                return;
            }
            // Alignment of the merged block must hold for a valid buddy
            // merge (it does by construction: vpn ^ len flips one bit).
            let merged = Entry {
                vpn: vpn & !len,
                ppn: lo_ppn,
                len: len * 2,
                last_use: last_use.max(self.entries[bidx].last_use),
            };
            self.merges += 1;
            self.extra_refs += REFS_PER_MERGE;
            // Remove the higher index first so the lower stays valid.
            let (first, second) = if idx > bidx { (idx, bidx) } else { (bidx, idx) };
            self.entries.swap_remove(first);
            self.entries.swap_remove(second);
            self.entries.push(merged);
            idx = self.entries.len() - 1;
        }
    }
}

impl TlbModel for SnakeByteTlb {
    fn lookup(&mut self, vpn: Vpn) -> Option<TlbHit> {
        let stamp = self.touch();
        let e = self.entries.iter_mut().find(|e| e.covers(vpn.0))?;
        e.last_use = stamp;
        Some(TlbHit {
            ppn: Ppn(e.ppn + (vpn.0 - e.vpn)),
            coverage_pages: e.len,
            entry_vpn: e.vpn,
            entry_ppn: e.ppn,
        })
    }

    fn fill(&mut self, fill: &TlbFill) {
        let stamp = self.touch();
        if self.entries.iter().any(|e| e.covers(fill.vpn.0)) {
            return;
        }
        // Install at the natural granularity: promoted pages enter whole,
        // base fills enter as single pages and grow via recursive merging.
        let (vpn, ppn, len) = if fill.pages > 1 {
            let base_vpn = fill.vpn.0 & !(fill.pages - 1);
            (base_vpn, fill.ppn.0 - (fill.vpn.0 - base_vpn), fill.pages)
        } else {
            (fill.vpn.0, fill.ppn.0, 1)
        };
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(victim);
        }
        self.entries.push(Entry { vpn, ppn, len, last_use: stamp });
        self.merge_up(self.entries.len() - 1);
    }

    fn invalidate(&mut self, vpn: Vpn, pages: u64) -> u64 {
        let mut dropped = 0;
        let mut splinters = 0;
        self.entries.retain(|e| {
            if e.overlaps(vpn.0, pages) {
                dropped += 1;
                if e.len > 1 {
                    splinters += 1;
                }
                false
            } else {
                true
            }
        });
        self.splinters += splinters;
        dropped
    }

    fn flush(&mut self) {
        self.entries.clear();
    }

    fn name(&self) -> &'static str {
        "snakebyte"
    }

    fn drain_extra_memory_refs(&mut self) -> u64 {
        std::mem::take(&mut self.extra_refs)
    }

    // lint:exempt(checkpoint-field-parity: capacity is construction-time geometry; load_state reads it only to reject streams larger than the live table)
    fn save_state(&self, w: &mut Writer) {
        // Storage order matters: merge buddies are found by `position`
        // and LRU victims by linear scan.
        w.u64(self.stamp);
        w.u64(self.extra_refs);
        w.u64(self.merges);
        w.u64(self.splinters);
        w.seq(self.entries.iter(), |w, e| {
            w.u64(e.vpn);
            w.u64(e.ppn);
            w.u64(e.len);
            w.u64(e.last_use);
        });
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        self.stamp = r.u64()?;
        self.extra_refs = r.u64()?;
        self.merges = r.u64()?;
        self.splinters = r.u64()?;
        let n = r.seq_len()?;
        if n > self.capacity {
            return Err(CkptError::Corrupt("SnakeByte TLB exceeds its capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(Entry {
                vpn: r.u64()?,
                ppn: r.u64()?,
                len: r.u64()?,
                last_use: r.u64()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill1(vpn: u64, ppn: u64) -> TlbFill {
        TlbFill { vpn: Vpn(vpn), ppn: Ppn(ppn), pages: 1, run: None }
    }

    #[test]
    fn buddies_merge_recursively() {
        let mut t = SnakeByteTlb::new(16);
        // Fill pages 0..4 contiguously: should end as one 4-page entry.
        for v in 0..4 {
            t.fill(&fill1(v, 100 + v));
        }
        let hit = t.lookup(Vpn(3)).unwrap();
        assert_eq!(hit.coverage_pages, 4);
        assert_eq!(hit.ppn, Ppn(103));
        assert_eq!(t.merges, 3);
        assert_eq!(t.drain_extra_memory_refs(), 3 * REFS_PER_MERGE);
        assert_eq!(t.drain_extra_memory_refs(), 0, "drain resets the counter");
    }

    #[test]
    fn non_contiguous_buddies_do_not_merge() {
        let mut t = SnakeByteTlb::new(16);
        t.fill(&fill1(0, 100));
        t.fill(&fill1(1, 999)); // breaks physical contiguity
        assert_eq!(t.lookup(Vpn(0)).unwrap().coverage_pages, 1);
        assert_eq!(t.merges, 0);
    }

    #[test]
    fn misaligned_neighbours_do_not_merge() {
        let mut t = SnakeByteTlb::new(16);
        // Pages 1 and 2 are adjacent but not buddies (1^1 == 0, 2^2 ... ).
        t.fill(&fill1(1, 101));
        t.fill(&fill1(2, 102));
        assert_eq!(t.lookup(Vpn(1)).unwrap().coverage_pages, 1);
        assert_eq!(t.lookup(Vpn(2)).unwrap().coverage_pages, 1);
    }

    #[test]
    fn merge_capped_at_chunk() {
        let mut t = SnakeByteTlb::new(1024);
        for v in 0..2 * PAGES_PER_CHUNK {
            t.fill(&fill1(v, 4096 + v));
        }
        let hit = t.lookup(Vpn(0)).unwrap();
        assert_eq!(hit.coverage_pages, PAGES_PER_CHUNK, "coverage capped at 2MB");
    }

    #[test]
    fn shootdown_splinters_merged_entry() {
        let mut t = SnakeByteTlb::new(16);
        for v in 0..8 {
            t.fill(&fill1(v, 200 + v));
        }
        assert_eq!(t.lookup(Vpn(0)).unwrap().coverage_pages, 8);
        assert_eq!(t.invalidate(Vpn(3), 1), 1);
        assert_eq!(t.splinters, 1);
        assert!(t.lookup(Vpn(0)).is_none(), "whole merged entry dropped");
        // Rebuilding reach costs merge traffic again.
        for v in 0..8 {
            t.fill(&fill1(v, 200 + v));
        }
        assert!(t.drain_extra_memory_refs() > 0);
    }

    #[test]
    fn promoted_fill_enters_whole() {
        let mut t = SnakeByteTlb::new(16);
        t.fill(&TlbFill {
            vpn: Vpn(PAGES_PER_CHUNK + 5),
            ppn: Ppn(2 * PAGES_PER_CHUNK + 5),
            pages: PAGES_PER_CHUNK,
            run: None,
        });
        let hit = t.lookup(Vpn(PAGES_PER_CHUNK)).unwrap();
        assert_eq!(hit.coverage_pages, PAGES_PER_CHUNK);
        assert_eq!(hit.ppn, Ppn(2 * PAGES_PER_CHUNK));
    }

    #[test]
    fn lru_eviction() {
        let mut t = SnakeByteTlb::new(2);
        t.fill(&fill1(0, 10));
        t.fill(&fill1(100, 110));
        t.lookup(Vpn(0));
        t.fill(&fill1(200, 210));
        assert!(t.lookup(Vpn(0)).is_some());
        assert!(t.lookup(Vpn(100)).is_none());
    }

    #[test]
    fn duplicate_fill_ignored() {
        let mut t = SnakeByteTlb::new(4);
        t.fill(&fill1(5, 50));
        t.fill(&fill1(5, 50));
        assert_eq!(t.entries.len(), 1);
    }
}
