//! CoLT: Coalesced Large-Reach TLBs (Pham et al., MICRO 2012).
//!
//! When a page walk completes, the walker has fetched the whole 128-byte
//! PTE cache line — 16 PTEs. CoLT coalesces the contiguous translations in
//! that line into a single TLB entry covering up to 16 pages, so one entry
//! serves a run of neighbouring pages. Promoted 2MB pages go to a separate
//! large-page array, as in the baseline design.

use avatar_sim::addr::{Ppn, Vpn, PAGES_PER_CHUNK};
use avatar_sim::checkpoint::{CkptError, Reader, Writer};
use avatar_sim::tlb::{TlbFill, TlbHit, TlbModel};

/// Maximum pages one coalesced entry may cover (one PTE line = 16 PTEs).
pub const MAX_COALESCE: u64 = 16;

#[derive(Debug, Clone)]
struct Entry {
    vpn: u64,
    ppn: u64,
    len: u64,
    last_use: u64,
}

impl Entry {
    fn covers(&self, vpn: u64) -> bool {
        vpn >= self.vpn && vpn < self.vpn + self.len
    }

    fn overlaps(&self, vpn: u64, pages: u64) -> bool {
        self.vpn < vpn + pages && vpn < self.vpn + self.len
    }
}

/// The CoLT TLB model: coalesced base entries plus a 2MB large-page array.
#[derive(Debug)]
pub struct ColtTlb {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    large: Vec<Entry>,
    large_capacity: usize,
    stamp: u64,
    /// Entries installed covering more than one page (model statistic).
    pub coalesced_fills: u64,
}

impl ColtTlb {
    /// Creates a CoLT TLB with `base_entries` coalescable entries
    /// (associativity `assoc`; 0 = fully associative) and `large_entries`
    /// 2MB slots.
    pub fn new(base_entries: usize, large_entries: usize, assoc: usize) -> Self {
        let (nsets, ways) = if assoc == 0 || assoc >= base_entries {
            (1, base_entries.max(1))
        } else {
            ((base_entries / assoc).max(1), assoc)
        };
        Self {
            sets: vec![Vec::new(); nsets],
            ways,
            large: Vec::new(),
            large_capacity: large_entries.max(1),
            stamp: 0,
            coalesced_fills: 0,
        }
    }

    /// Coalesced entries are indexed by their PTE line, so every page of a
    /// potential entry maps to the same set.
    fn set_of(&self, vpn: u64) -> usize {
        ((vpn / MAX_COALESCE) % self.sets.len() as u64) as usize
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

impl TlbModel for ColtTlb {
    fn lookup(&mut self, vpn: Vpn) -> Option<TlbHit> {
        let stamp = self.touch();
        if let Some(e) = self.large.iter_mut().find(|e| e.covers(vpn.0)) {
            e.last_use = stamp;
            return Some(TlbHit {
                ppn: Ppn(e.ppn + (vpn.0 - e.vpn)),
                coverage_pages: e.len,
                entry_vpn: e.vpn,
                entry_ppn: e.ppn,
            });
        }
        let set = self.set_of(vpn.0);
        let e = self.sets[set].iter_mut().find(|e| e.covers(vpn.0))?;
        e.last_use = stamp;
        Some(TlbHit {
            ppn: Ppn(e.ppn + (vpn.0 - e.vpn)),
            coverage_pages: e.len,
            entry_vpn: e.vpn,
            entry_ppn: e.ppn,
        })
    }

    fn fill(&mut self, fill: &TlbFill) {
        let stamp = self.touch();
        if fill.pages >= PAGES_PER_CHUNK {
            let base_vpn = fill.vpn.0 & !(PAGES_PER_CHUNK - 1);
            let base_ppn = fill.ppn.0 - (fill.vpn.0 - base_vpn);
            if let Some(e) = self.large.iter_mut().find(|e| e.vpn == base_vpn) {
                e.ppn = base_ppn;
                e.last_use = stamp;
                return;
            }
            if self.large.len() >= self.large_capacity {
                let victim = self
                    .large
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(i, _)| i)
                    .expect("nonempty");
                self.large.swap_remove(victim);
            }
            self.large.push(Entry {
                vpn: base_vpn,
                ppn: base_ppn,
                len: PAGES_PER_CHUNK,
                last_use: stamp,
            });
            return;
        }

        // Coalesce the contiguity run, clamped to this PTE line.
        let (vpn, ppn, len) = match fill.run {
            Some(run) if run.covers(fill.vpn.0) => {
                let line_start = fill.vpn.0 & !(MAX_COALESCE - 1);
                let line_end = line_start + MAX_COALESCE;
                let start = run.start_vpn.max(line_start);
                let end = (run.start_vpn + run.len).min(line_end);
                (start, run.translate(start), end - start)
            }
            _ => (fill.vpn.0, fill.ppn.0, 1),
        };
        if len > 1 {
            self.coalesced_fills += 1;
        }
        let set_idx = self.set_of(vpn);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        // Replace any existing entry this one subsumes or duplicates.
        set.retain(|e| !(vpn <= e.vpn && e.vpn + e.len <= vpn + len));
        if set.iter().any(|e| e.covers(fill.vpn.0)) {
            return; // an existing wider entry already covers the page
        }
        if set.len() >= ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("nonempty");
            set.swap_remove(victim);
        }
        set.push(Entry { vpn, ppn, len, last_use: stamp });
    }

    fn invalidate(&mut self, vpn: Vpn, pages: u64) -> u64 {
        let mut dropped = 0;
        for set in &mut self.sets {
            set.retain(|e| {
                if e.overlaps(vpn.0, pages) {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.large.retain(|e| {
            if e.overlaps(vpn.0, pages) {
                dropped += 1;
                false
            } else {
                true
            }
        });
        dropped
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.large.clear();
    }

    fn name(&self) -> &'static str {
        "colt"
    }

    // lint:exempt(checkpoint-field-parity: ways and large_capacity are construction-time geometry; load_state reads them only to validate the stream against the live config)
    fn save_state(&self, w: &mut Writer) {
        // Entries go in storage order: LRU victims are found by linear
        // scan, so a reordered restore would evict differently.
        let enc_entry = |w: &mut Writer, e: &Entry| {
            w.u64(e.vpn);
            w.u64(e.ppn);
            w.u64(e.len);
            w.u64(e.last_use);
        };
        w.u64(self.stamp);
        w.u64(self.coalesced_fills);
        w.seq(self.sets.iter(), |w, set| {
            w.seq(set.iter(), enc_entry);
        });
        w.seq(self.large.iter(), enc_entry);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        fn dec_entry(r: &mut Reader<'_>) -> Result<Entry, CkptError> {
            Ok(Entry { vpn: r.u64()?, ppn: r.u64()?, len: r.u64()?, last_use: r.u64()? })
        }
        self.stamp = r.u64()?;
        self.coalesced_fills = r.u64()?;
        let nsets = r.seq_len()?;
        if nsets != self.sets.len() {
            return Err(CkptError::Corrupt("CoLT TLB set count mismatch"));
        }
        for set in &mut self.sets {
            let n = r.seq_len()?;
            if n > self.ways {
                return Err(CkptError::Corrupt("CoLT TLB set exceeds its associativity"));
            }
            set.clear();
            for _ in 0..n {
                set.push(dec_entry(r)?);
            }
        }
        let n = r.seq_len()?;
        if n > self.large_capacity {
            return Err(CkptError::Corrupt("CoLT large-page array exceeds capacity"));
        }
        self.large.clear();
        for _ in 0..n {
            self.large.push(dec_entry(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avatar_sim::tlb::ContigRun;

    fn fill_with_run(vpn: u64, ppn: u64, run: ContigRun) -> TlbFill {
        TlbFill { vpn: Vpn(vpn), ppn: Ppn(ppn), pages: 1, run: Some(run) }
    }

    #[test]
    fn coalesces_contiguous_line() {
        let mut t = ColtTlb::new(8, 2, 0);
        // Pages 16..32 contiguous; walk of page 20 coalesces all 16.
        let run = ContigRun { start_vpn: 16, start_ppn: 116, len: 16 };
        t.fill(&fill_with_run(20, 120, run));
        for v in 16..32 {
            let hit = t.lookup(Vpn(v)).unwrap_or_else(|| panic!("page {v} covered"));
            assert_eq!(hit.ppn, Ppn(100 + v));
            assert_eq!(hit.coverage_pages, 16);
        }
        assert!(t.lookup(Vpn(32)).is_none());
        assert_eq!(t.coalesced_fills, 1);
    }

    #[test]
    fn run_clamped_to_pte_line() {
        let mut t = ColtTlb::new(8, 2, 0);
        // A 32-page run crossing two PTE lines: only this line coalesces.
        let run = ContigRun { start_vpn: 16, start_ppn: 516, len: 32 };
        t.fill(&fill_with_run(20, 520, run));
        assert!(t.lookup(Vpn(31)).is_some());
        assert!(t.lookup(Vpn(32)).is_none(), "next PTE line needs its own walk");
    }

    #[test]
    fn partial_run_coalesces_partially() {
        let mut t = ColtTlb::new(8, 2, 0);
        let run = ContigRun { start_vpn: 18, start_ppn: 218, len: 5 };
        t.fill(&fill_with_run(20, 220, run));
        assert!(t.lookup(Vpn(18)).is_some());
        assert!(t.lookup(Vpn(22)).is_some());
        assert!(t.lookup(Vpn(23)).is_none());
        assert_eq!(t.lookup(Vpn(18)).unwrap().coverage_pages, 5);
    }

    #[test]
    fn no_run_installs_single_page() {
        let mut t = ColtTlb::new(8, 2, 0);
        t.fill(&TlbFill { vpn: Vpn(7), ppn: Ppn(70), pages: 1, run: None });
        assert_eq!(t.lookup(Vpn(7)).unwrap().coverage_pages, 1);
        assert_eq!(t.coalesced_fills, 0);
    }

    #[test]
    fn large_page_array_separate() {
        let mut t = ColtTlb::new(4, 2, 0);
        t.fill(&TlbFill { vpn: Vpn(512), ppn: Ppn(1024), pages: PAGES_PER_CHUNK, run: None });
        let hit = t.lookup(Vpn(900)).unwrap();
        assert_eq!(hit.coverage_pages, PAGES_PER_CHUNK);
        assert_eq!(hit.ppn, Ppn(1024 + (900 - 512)));
    }

    #[test]
    fn shootdown_drops_whole_coalesced_entry() {
        let mut t = ColtTlb::new(8, 2, 0);
        let run = ContigRun { start_vpn: 16, start_ppn: 116, len: 16 };
        t.fill(&fill_with_run(20, 120, run));
        // Invalidating one page drops the entire merged entry (the
        // coarse-metadata cost the paper highlights).
        assert_eq!(t.invalidate(Vpn(17), 1), 1);
        assert!(t.lookup(Vpn(30)).is_none());
    }

    #[test]
    fn lru_eviction_on_capacity() {
        let mut t = ColtTlb::new(2, 1, 0);
        t.fill(&TlbFill { vpn: Vpn(0), ppn: Ppn(0), pages: 1, run: None });
        t.fill(&TlbFill { vpn: Vpn(100), ppn: Ppn(100), pages: 1, run: None });
        t.lookup(Vpn(0));
        t.fill(&TlbFill { vpn: Vpn(200), ppn: Ppn(200), pages: 1, run: None });
        assert!(t.lookup(Vpn(0)).is_some());
        assert!(t.lookup(Vpn(100)).is_none());
    }

    #[test]
    fn subsumed_entry_replaced() {
        let mut t = ColtTlb::new(8, 2, 0);
        t.fill(&TlbFill { vpn: Vpn(20), ppn: Ppn(220), pages: 1, run: None });
        let run = ContigRun { start_vpn: 16, start_ppn: 216, len: 16 };
        t.fill(&fill_with_run(21, 221, run));
        // The single-page entry was subsumed; one wide entry remains.
        let hit = t.lookup(Vpn(20)).unwrap();
        assert_eq!(hit.coverage_pages, 16);
        assert_eq!(hit.ppn, Ppn(220));
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = ColtTlb::new(8, 2, 0);
        t.fill(&TlbFill { vpn: Vpn(1), ppn: Ppn(1), pages: 1, run: None });
        t.fill(&TlbFill { vpn: Vpn(512), ppn: Ppn(512), pages: PAGES_PER_CHUNK, run: None });
        t.flush();
        assert!(t.lookup(Vpn(1)).is_none());
        assert!(t.lookup(Vpn(600)).is_none());
    }
}
