//! Prior-work TLB-reach techniques reproduced as comparison baselines for
//! the Avatar evaluation (paper Table I and Fig 15):
//!
//! * [`colt`] — **CoLT** (Pham et al., MICRO 2012): coalesces up to 16
//!   contiguous PTEs (one 128B PTE cache line) into a single TLB entry with
//!   sub-block validity.
//! * [`snakebyte`] — **SnakeByte** (Lee et al., HPCA 2023): adaptive,
//!   recursive merging of TLB entries into progressively larger
//!   power-of-two regions, paying extra page-table references for each
//!   merge step and splintering merged entries on shootdown.
//! * **Page Promotion** (Mosaic-style, Ausavarungnirun et al., MICRO 2017)
//!   is a memory-manager behaviour rather than a TLB design: it is
//!   implemented in `avatar_sim::uvm` (`UvmConfig::promotion`) and enabled
//!   by the `avatar-core` system builder for the `Promotion` configuration
//!   (and, as in the paper, for every non-baseline configuration).
//!
//! All models implement [`avatar_sim::tlb::TlbModel`] and drop into the
//! simulator unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colt;
pub mod snakebyte;

pub use colt::ColtTlb;
pub use snakebyte::SnakeByteTlb;
