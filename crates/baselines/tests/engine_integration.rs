//! Drive the prior-work TLB designs through the full simulator and check
//! that their reach mechanisms actually engage.

use avatar_baselines::{ColtTlb, SnakeByteTlb};
use avatar_sim::addr::VirtAddr;
use avatar_sim::config::GpuConfig;
use avatar_sim::engine::Engine;
use avatar_sim::hooks::{NoSpeculation, UniformCompression};
use avatar_sim::sm::{WarpOp, WarpProgram};
use avatar_sim::stats::Stats;
use avatar_sim::tlb::{BaseTlb, TlbModel};

/// A dense page-by-page sweep: ideal fodder for coalescing TLBs.
#[derive(Clone)]
struct Sweep {
    warps_per_sm: usize,
    pages_per_warp: u64,
    pos: Vec<u64>,
}

impl WarpProgram for Sweep {
    fn clone_box(&self) -> Box<dyn WarpProgram> {
        Box::new(self.clone())
    }

    fn next_op(&mut self, sm: usize, warp: usize) -> Option<WarpOp> {
        let slot = sm * self.warps_per_sm + warp;
        if self.pos[slot] >= self.pages_per_warp {
            return None;
        }
        let page = slot as u64 * self.pages_per_warp + self.pos[slot];
        self.pos[slot] += 1;
        Some(WarpOp::Load {
            pc: 0x100,
            addrs: (0..32).map(|t| VirtAddr(page * 4096 + t * 4)).collect(),
        })
    }
}

enum Kind {
    Base,
    Colt,
    Snake,
}

fn run_with_tlb(kind: Kind) -> Stats {
    let mut cfg = GpuConfig::rtx3070();
    cfg.num_sms = 2;
    cfg.warps_per_sm = 4;
    cfg.uvm.fragmentation = 0.0;
    cfg.uvm.cross_chunk_contiguity = 1.0;
    let mk = |entries: usize, large: usize, assoc: usize| -> Box<dyn TlbModel> {
        match kind {
            Kind::Base => Box::new(BaseTlb::new(entries, large, assoc, 1)),
            Kind::Colt => Box::new(ColtTlb::new(entries, large, assoc)),
            Kind::Snake => Box::new(SnakeByteTlb::new(entries + large)),
        }
    };
    let l1s = (0..cfg.num_sms).map(|_| mk(32, 16, 0)).collect();
    let l2 = mk(1024, 128, 8);
    let program = Sweep {
        warps_per_sm: cfg.warps_per_sm,
        pages_per_warp: 64,
        pos: vec![0; cfg.num_sms * cfg.warps_per_sm],
    };
    Engine::new(
        cfg,
        l1s,
        l2,
        Box::new(NoSpeculation),
        Box::new(UniformCompression { fraction: 0.0 }),
        Box::new(program),
    )
    .run()
}

#[test]
fn coalescing_raises_large_coverage_hit_share() {
    let base = run_with_tlb(Kind::Base);
    let colt = run_with_tlb(Kind::Colt);
    // Bucket 0 is single-page coverage; buckets 1+ are coalesced reach.
    let wide_hits = |s: &Stats| s.coverage_hits[1..].iter().sum::<u64>();
    assert_eq!(wide_hits(&base), 0, "base TLB entries cover one page");
    assert!(
        wide_hits(&colt) > 0,
        "CoLT must produce multi-page coverage hits on a contiguous sweep"
    );
}

#[test]
fn coalescing_reduces_page_walks_on_contiguous_sweeps() {
    let base = run_with_tlb(Kind::Base);
    let colt = run_with_tlb(Kind::Colt);
    let snake = run_with_tlb(Kind::Snake);
    assert!(
        colt.page_walks < base.page_walks,
        "one walk serves a whole PTE line under CoLT: {} vs {}",
        colt.page_walks,
        base.page_walks
    );
    // SnakeByte merges entries but still walks once per page (merging is a
    // TLB-side effect); it must at least not walk more than base.
    assert!(snake.page_walks <= base.page_walks);
}

#[test]
fn snakebyte_merge_traffic_reaches_dram_accounting() {
    let base = run_with_tlb(Kind::Base);
    let snake = run_with_tlb(Kind::Snake);
    assert_eq!(base.merge_memory_accesses, 0);
    assert!(
        snake.merge_memory_accesses > 0,
        "recursive merging must charge page-table references"
    );
    assert!(snake.dram_read_bytes >= base.dram_read_bytes, "merge refs consume bandwidth");
}

#[test]
fn all_models_complete_identical_work() {
    let base = run_with_tlb(Kind::Base);
    let colt = run_with_tlb(Kind::Colt);
    let snake = run_with_tlb(Kind::Snake);
    assert_eq!(base.loads, colt.loads);
    assert_eq!(base.loads, snake.loads);
    assert_eq!(base.sector_requests, colt.sector_requests);
    assert_eq!(base.sector_requests, snake.sector_requests);
}
