//! Build script: computes the engine-version fingerprint.
//!
//! The fingerprint is an FNV-1a digest over the sim crate's source tree
//! (file names and contents, in sorted path order). It is baked into the
//! library via the `AVATAR_ENGINE_FINGERPRINT` environment variable and
//! becomes part of every result-cache key: any change to the simulator's
//! source — even one that happens to keep digests stable — invalidates
//! previously cached sweep results, so a stale cache can never masquerade
//! as a fresh run of a modified engine.

use std::fs;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest =
        PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets CARGO_MANIFEST_DIR"));
    let src = manifest.join("src");
    let mut files = Vec::new();
    collect_sources(&src, &mut files);
    files.push(manifest.join("build.rs"));
    files.sort();

    let mut h = FNV_OFFSET;
    for path in &files {
        let rel = path.strip_prefix(&manifest).unwrap_or(path);
        fold(&mut h, rel.to_string_lossy().as_bytes());
        fold(&mut h, &[0]);
        let contents = fs::read(path).unwrap_or_default();
        fold(&mut h, &(contents.len() as u64).to_le_bytes());
        fold(&mut h, &contents);
        println!("cargo:rerun-if-changed={}", path.display());
    }
    println!("cargo:rerun-if-changed={}", src.display());
    println!("cargo:rustc-env=AVATAR_ENGINE_FINGERPRINT={h:016x}");
}
