//! Build script: computes the engine-version fingerprint.
//!
//! The fingerprint is an FNV-1a digest over the source trees of every
//! workspace crate that can influence a simulation's `Stats` — the
//! engine itself plus the policy layer (`avatar-core`: CAST, the
//! MOD/VPN tables, system assembly), the workload generators
//! (`avatar-workloads`: traces and the content model), the compression
//! codecs (`avatar-bpc`, selected via `RunOptions::codec`), and the
//! baseline TLBs (`avatar-baselines`, assembled by the baseline
//! `SystemConfig` stacks). File names and contents are folded in sorted
//! path order; the digest is baked into the library via the
//! `AVATAR_ENGINE_FINGERPRINT` environment variable and becomes part of
//! every result-cache key: any change to result-affecting source — even
//! one that happens to keep digests stable — invalidates previously
//! cached sweep results, so a stale cache can never masquerade as a
//! fresh run of a modified engine.
//!
//! The sibling crates are not `cargo` dependencies of `avatar-sim`
//! (most depend on it, not the reverse), so the build script reaches
//! them by workspace-relative path. That makes this crate unpackagable
//! in isolation — acceptable for a research workspace, and the walk
//! panics loudly if a tree is missing rather than fingerprinting a
//! partial source set.

use std::fs;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Source trees whose contents can change simulation results, relative
/// to this crate's manifest directory. The harness crate
/// (`avatar-bench`) is deliberately absent: every input it feeds the
/// engine — workload spec, `SystemConfig`, `RunOptions`, post-tweak
/// `GpuConfig` — is folded into the cache key separately, so bench-side
/// edits must not invalidate the cache. Keep in sync with DESIGN.md §12.
const RESULT_AFFECTING_SRC: &[&str] = &[
    "src",              // avatar-sim: the engine itself
    "../core/src",      // avatar-core: CAST policy, MOD/VPN tables, system assembly
    "../workloads/src", // avatar-workloads: trace generators + content model
    "../bpc/src",       // avatar-bpc: compression codecs
    "../baselines/src", // avatar-baselines: COLT / SnakeByte baseline TLBs
];

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    // Every visited directory is a rerun dependency: a new file added in
    // a nested subdirectory only bumps its immediate parent's mtime, so
    // watching the top-level src/ alone would leave the baked
    // fingerprint stale.
    println!("cargo:rerun-if-changed={}", dir.display());
    let entries = fs::read_dir(dir).unwrap_or_else(|e| {
        panic!("engine fingerprint: cannot read source dir {}: {e}", dir.display())
    });
    for entry in entries {
        let entry = entry.unwrap_or_else(|e| {
            panic!("engine fingerprint: cannot list {}: {e}", dir.display())
        });
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest =
        PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for tree in RESULT_AFFECTING_SRC {
        collect_sources(&manifest.join(tree), &mut files);
    }
    files.push(manifest.join("build.rs"));
    files.sort();

    let mut h = FNV_OFFSET;
    for path in &files {
        // Fold the manifest-relative name (`../core/src/cast.rs`), not
        // the absolute path, so the digest is checkout-location stable.
        let rel = path.strip_prefix(&manifest).unwrap_or(path);
        fold(&mut h, rel.to_string_lossy().as_bytes());
        fold(&mut h, &[0]);
        // An unreadable source file must fail the build: hashing it as
        // empty would mint a fingerprint for sources that were never seen.
        let contents = fs::read(path).unwrap_or_else(|e| {
            panic!("engine fingerprint: cannot read {}: {e}", path.display())
        });
        fold(&mut h, &(contents.len() as u64).to_le_bytes());
        fold(&mut h, &contents);
        println!("cargo:rerun-if-changed={}", path.display());
    }
    println!("cargo:rustc-env=AVATAR_ENGINE_FINGERPRINT={h:016x}");
}
