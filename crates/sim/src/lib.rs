//! A discrete-event GPU memory-system simulator.
//!
//! `avatar-sim` is the substrate on which the Avatar framework (MICRO 2024)
//! is reproduced: a from-scratch model of the memory side of an
//! RTX3070-class GPU (paper Table II) —
//!
//! * [`sm`] — streaming multiprocessors: warp programs, the memory
//!   coalescer, and occupancy/stall accounting;
//! * [`tlb`] — a two-level TLB hierarchy behind the pluggable
//!   [`tlb::TlbModel`] trait (the prior-work CoLT/SnakeByte designs plug in
//!   from the `avatar-baselines` crate);
//! * [`walker`] — the shared 16-walker page-walk system with its walk
//!   buffer and page-walk cache;
//! * [`page_table`] — a four-level radix page table with 2MB promotion;
//! * [`cache`] — sectored L1/L2 caches with Avatar's per-sector
//!   compression/guarantee tag bits;
//! * [`dram`] — a command-level GDDR6 timing model;
//! * [`uvm`] — UVM demand paging: 2MB logical chunks, neighborhood
//!   prefetching, promotion, and chunk eviction under oversubscription;
//! * [`engine`] — the event-driven orchestrator tying it all together;
//! * [`hooks`] — the policy interfaces (speculation, validation, sector
//!   compressibility) that `avatar-core` implements.
//!
//! # Example
//!
//! Run a tiny streaming kernel on the baseline configuration:
//!
//! ```
//! use avatar_sim::config::GpuConfig;
//! use avatar_sim::engine::Engine;
//! use avatar_sim::hooks::{NoSpeculation, UniformCompression};
//! use avatar_sim::sm::{WarpOp, WarpProgram};
//! use avatar_sim::tlb::{BaseTlb, TlbModel};
//! use avatar_sim::addr::VirtAddr;
//!
//! #[derive(Clone)]
//! struct Stream { remaining: u32 }
//! impl WarpProgram for Stream {
//!     fn clone_box(&self) -> Box<dyn WarpProgram> { Box::new(self.clone()) }
//!     fn next_op(&mut self, sm: usize, warp: usize) -> Option<WarpOp> {
//!         if sm > 0 || warp > 0 || self.remaining == 0 {
//!             return None;
//!         }
//!         self.remaining -= 1;
//!         let base = self.remaining as u64 * 128;
//!         Some(WarpOp::Load { pc: 0x100, addrs: (0..32).map(|i| VirtAddr(base + i * 4)).collect() })
//!     }
//! }
//!
//! let mut cfg = GpuConfig::rtx3070();
//! cfg.num_sms = 1; // keep the doctest light
//! let l1s: Vec<Box<dyn TlbModel>> = (0..cfg.num_sms)
//!     .map(|_| Box::new(BaseTlb::new(32, 16, 0, 1)) as Box<dyn TlbModel>)
//!     .collect();
//! let l2 = Box::new(BaseTlb::new(1024, 128, 8, 1));
//! let engine = Engine::new(
//!     cfg,
//!     l1s,
//!     l2,
//!     Box::new(NoSpeculation),
//!     Box::new(UniformCompression { fraction: 0.6 }),
//!     Box::new(Stream { remaining: 16 }),
//! );
//! let stats = engine.run();
//! assert_eq!(stats.loads, 16);
//! assert!(stats.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod dram;
pub mod engine;
#[doc(hidden)] // calendar internals: public for integration tests/benches only
pub mod event;
#[doc(hidden)] // hashing utility shared with workloads/core, not driving API
pub mod fxhash;
pub mod hooks;
pub mod invariant;
pub mod page_table;
pub(crate) mod port;
pub mod probe;
pub(crate) mod reqslab;
pub mod rng;
pub mod sm;
pub mod stats;
pub mod tlb;
pub mod trace_export;
pub mod uvm;
pub mod walker;

pub use addr::{PhysAddr, Ppn, VirtAddr, Vpn};
pub use config::{BasePage, Cycle, GpuConfig};
pub use engine::Engine;
pub use stats::Stats;

/// The engine-version fingerprint: an FNV-1a digest over the source
/// trees of every result-affecting workspace crate (this one plus
/// `avatar-core`, `avatar-workloads`, `avatar-bpc`, `avatar-baselines`),
/// computed by `build.rs` at compile time. Result caches key on it so
/// entries recorded by a different engine build are misses, never
/// silently replayed.
pub fn engine_fingerprint() -> &'static str {
    env!("AVATAR_ENGINE_FINGERPRINT")
}

/// The driving API in one import: everything a harness needs to
/// configure, run, and observe a simulation, including the full
/// [`TranslationPolicy`](crate::hooks::TranslationPolicy) surface that
/// policy crates implement.
///
/// Internals (the request slab, ports, event-calendar plumbing) are
/// deliberately absent — they are `pub(crate)` or `#[doc(hidden)]` —
/// and so is the hook-era `TranslationAccel` alias, which survives only
/// in [`hooks`](crate::hooks) for code written against the old name.
///
/// ```
/// use avatar_sim::prelude::*;
/// let cfg = GpuConfig::builder().num_sms(2).build().expect("valid config");
/// assert_eq!(cfg.num_sms, 2);
/// ```
pub mod prelude {
    pub use crate::addr::{PhysAddr, Ppn, VirtAddr, Vpn};
    pub use crate::config::{
        BasePage, CacheArrangement, ConfigError, Cycle, GpuConfig, GpuConfigBuilder,
    };
    pub use crate::engine::Engine;
    pub use crate::hooks::{
        FetchedSector, NoSpeculation, PageMeta, PolicyCounters, SectorCompression,
        SpecFillAction, SpecFillContext, TranslationPolicy, UniformCompression, ValidationKind,
    };
    pub use crate::probe::{LatencyBreakdown, Phase, Probe, SpanPoint, Track};
    pub use crate::sm::{WarpOp, WarpProgram};
    pub use crate::stats::Stats;
    pub use crate::tlb::{BaseTlb, FillPriority, TlbModel};
    pub use crate::trace_export::ChromeTraceProbe;
}
