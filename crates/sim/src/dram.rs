//! GDDR6 DRAM timing model: channels, banks, row buffers, bus occupancy.
//!
//! The model is command-level: each 32-byte sector access is mapped to a
//! (channel, bank, row) by physical address, pays activation (tRCD) on a
//! row-buffer miss plus precharge (tRP) if another row is open, the column
//! latency (tCL or tWL), and occupies the channel data bus for one burst.
//! Read→write turnaround (tRTW) is charged on direction changes.
//! Requests are serviced in arrival order per channel (FCFS), which is
//! sufficient to reproduce queueing under the speculative-fetch traffic
//! the paper studies.

use crate::addr::PhysAddr;
use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::{Cycle, DramConfig};

/// Direction of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramOp {
    /// Data read (fills, page-walk PTE fetches).
    Read,
    /// Data write (migrations, writebacks, zeroing).
    Write,
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    last_op: DramOp,
}

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    /// Row-buffer hit/miss counters (for stats).
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Log2-bucketed service latency (issue to data return) of every
    /// timed access. Probe-fed: merged into
    /// `Stats::dram_service_hist` at end of run (`probes` feature).
    #[cfg(feature = "probes")]
    pub service_hist: crate::stats::Histogram,
}

impl Dram {
    /// Creates the device from timing configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: (0..cfg.banks_per_channel).map(|_| Bank { open_row: None, ready_at: 0 }).collect(),
                bus_free_at: 0,
                last_op: DramOp::Read,
            })
            .collect();
        Self {
            cfg,
            channels,
            row_hits: 0,
            row_misses: 0,
            read_bytes: 0,
            write_bytes: 0,
            #[cfg(feature = "probes")]
            service_hist: crate::stats::Histogram::default(),
        }
    }

    /// Maps a physical address to (channel, bank, row).
    ///
    /// Channel interleaving is at 128B-line granularity with the address
    /// swizzle (XOR-folding of higher address bits) GPUs use so that
    /// power-of-two strides — page-strided sweeps in particular — still
    /// spread across all channels instead of hammering one.
    pub fn map(&self, pa: PhysAddr) -> (usize, usize, u64) {
        let line = pa.0 / crate::addr::LINE_BYTES;
        let swizzled = line ^ (line >> 5) ^ (line >> 10) ^ (line >> 17);
        let ch = (swizzled % self.cfg.channels as u64) as usize;
        let above = line / self.cfg.channels as u64;
        let bank = ((above ^ (above >> 7)) % self.cfg.banks_per_channel as u64) as usize;
        let lines_per_row = self.cfg.row_bytes / crate::addr::LINE_BYTES;
        let row = above / self.cfg.banks_per_channel as u64 / lines_per_row;
        (ch, bank, row)
    }

    /// Issues a sector access at `now`; returns the cycle its data is
    /// available on the channel (read) or accepted (write).
    pub fn access(&mut self, pa: PhysAddr, op: DramOp, now: Cycle, bytes: u64) -> Cycle {
        let (ch_idx, bank_idx, row) = self.map(pa);
        let cfg = &self.cfg;
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let mut t = now.max(bank.ready_at);
        match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
            }
            Some(_) => {
                self.row_misses += 1;
                t += cfg.t_rp + cfg.t_rcd;
            }
            None => {
                self.row_misses += 1;
                t += cfg.t_rcd;
            }
        }
        bank.open_row = Some(row);

        // Column access latency, then the burst on the shared data bus.
        let col_lat = match op {
            DramOp::Read => cfg.t_cl,
            DramOp::Write => cfg.t_wl,
        };
        let mut bus_start = (t + col_lat).max(ch.bus_free_at);
        if ch.last_op != op {
            bus_start += cfg.t_rtw;
        }
        ch.last_op = op;
        let bursts = bytes.div_ceil(crate::addr::SECTOR_BYTES);
        let done = bus_start + cfg.burst * bursts;
        ch.bus_free_at = done;
        bank.ready_at = done;

        match op {
            DramOp::Read => self.read_bytes += bytes,
            DramOp::Write => self.write_bytes += bytes,
        }
        #[cfg(feature = "probes")]
        self.service_hist.add(done - now);
        done
    }

    /// Accounts traffic that bypasses timing (e.g. page migration writes
    /// when fault latency is excluded from timing but traffic still counts).
    pub fn account_untimed(&mut self, op: DramOp, bytes: u64) {
        match op {
            DramOp::Read => self.read_bytes += bytes,
            DramOp::Write => self.write_bytes += bytes,
        }
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Serializes every bank's row/readiness state, the per-channel bus
    /// clocks, and the traffic counters. Timing configuration is not
    /// serialized (the restored device is built from the same config).
    pub fn save_state(&self, w: &mut Writer) {
        w.usize(self.channels.len());
        for ch in &self.channels {
            w.usize(ch.banks.len());
            for bank in &ch.banks {
                w.opt_u64(bank.open_row);
                w.u64(bank.ready_at);
            }
            w.u64(ch.bus_free_at);
            w.bool(matches!(ch.last_op, DramOp::Write));
        }
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.read_bytes);
        w.u64(self.write_bytes);
        #[cfg(feature = "probes")]
        self.service_hist.save_state(w);
    }

    /// Restores state saved by [`Dram::save_state`]. Channel/bank counts
    /// are configuration geometry; a mismatch is corruption.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let nch = r.usize()?;
        if nch != self.channels.len() {
            return Err(CkptError::Corrupt("DRAM channel count mismatch"));
        }
        for ch in &mut self.channels {
            let nb = r.usize()?;
            if nb != ch.banks.len() {
                return Err(CkptError::Corrupt("DRAM bank count mismatch"));
            }
            for bank in &mut ch.banks {
                bank.open_row = r.opt_u64()?;
                bank.ready_at = r.u64()?;
            }
            ch.bus_free_at = r.u64()?;
            ch.last_op = if r.bool()? { DramOp::Write } else { DramOp::Read };
        }
        self.row_hits = r.u64()?;
        self.row_misses = r.u64()?;
        self.read_bytes = r.u64()?;
        self.write_bytes = r.u64()?;
        #[cfg(feature = "probes")]
        self.service_hist.load_state(r)?;
        Ok(())
    }

    /// The furthest-future cycle at which any channel bus frees (debug
    /// visibility into queue horizons).
    pub fn max_bus_horizon(&self) -> Cycle {
        self.channels.iter().map(|c| c.bus_free_at).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn dram() -> Dram {
        Dram::new(GpuConfig::default().dram)
    }

    #[test]
    fn mapping_stripes_lines_across_channels() {
        let d = dram();
        let (c0, _, _) = d.map(PhysAddr(0));
        let (c1, _, _) = d.map(PhysAddr(128));
        let (c2, _, _) = d.map(PhysAddr(256));
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert_eq!(c2, 2);
    }

    #[test]
    fn first_access_pays_activation() {
        let mut d = dram();
        let done = d.access(PhysAddr(0), DramOp::Read, 0, 32);
        let cfg = GpuConfig::default().dram;
        assert_eq!(done, cfg.t_rcd + cfg.t_cl + cfg.burst);
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let mut d = dram();
        let a = PhysAddr(0);
        let first = d.access(a, DramOp::Read, 0, 32);
        // Same row, immediately after: only CL + burst beyond readiness.
        let second = d.access(PhysAddr(32), DramOp::Read, first, 32);
        assert_eq!(d.row_hits, 1);
        // A different row in the same bank forces precharge + activate.
        let channels = GpuConfig::default().dram.channels as u64;
        let banks = GpuConfig::default().dram.banks_per_channel as u64;
        let row_bytes = GpuConfig::default().dram.row_bytes;
        let far = PhysAddr(row_bytes * channels * banks);
        let third = d.access(far, DramOp::Read, second, 32);
        assert!(third - second > second - first);
        assert_eq!(d.row_misses, 2);
    }

    #[test]
    fn bus_serializes_same_channel() {
        let mut d = dram();
        let cfg = GpuConfig::default().dram;
        let stride = 128 * cfg.channels as u64; // same channel, next banks
        let t1 = d.access(PhysAddr(0), DramOp::Read, 0, 32);
        let t2 = d.access(PhysAddr(stride), DramOp::Read, 0, 32);
        assert!(t2 > t1, "second access must queue behind the bus");
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = dram();
        let t1 = d.access(PhysAddr(0), DramOp::Read, 0, 32);
        let t2 = d.access(PhysAddr(128), DramOp::Read, 0, 32);
        assert_eq!(t1, t2, "independent channels see identical timing");
    }

    #[test]
    fn rw_turnaround_charged() {
        let mut d = dram();
        let t1 = d.access(PhysAddr(0), DramOp::Read, 0, 32);
        let before = d.channels[0].bus_free_at;
        let t2 = d.access(PhysAddr(32), DramOp::Write, t1, 32);
        assert!(t2 >= before + GpuConfig::default().dram.t_rtw);
    }

    #[test]
    fn traffic_accounting() {
        let mut d = dram();
        d.access(PhysAddr(0), DramOp::Read, 0, 32);
        d.access(PhysAddr(64), DramOp::Write, 0, 32);
        d.account_untimed(DramOp::Write, 4096);
        assert_eq!(d.read_bytes, 32);
        assert_eq!(d.write_bytes, 32 + 4096);
        assert_eq!(d.total_bytes(), 32 + 32 + 4096);
    }

    #[test]
    fn multi_sector_burst_occupies_longer() {
        let mut d = dram();
        let t32 = d.access(PhysAddr(0), DramOp::Read, 0, 32);
        let mut d2 = dram();
        let t128 = d2.access(PhysAddr(0), DramOp::Read, 0, 128);
        assert!(t128 > t32);
    }
}
