//! Structural-hazard primitives: issue ports and finite MSHR files.

use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::Cycle;

/// A pipelined port group: up to `width` operations may *start* per cycle.
///
/// Models TLB/cache ports as a throughput limit — an operation granted at
/// cycle `t` completes after the structure's fixed latency, but no more than
/// `width` grants are handed out for any single cycle.
#[derive(Debug, Clone)]
pub struct Ports {
    width: u32,
    cycle: Cycle,
    used: u32,
}

impl Ports {
    /// Creates a port group with `width` issue slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "port width must be nonzero");
        Self { width, cycle: 0, used: 0 }
    }

    /// Grants an issue slot at or after `now`, returning the start cycle.
    pub fn grant(&mut self, now: Cycle) -> Cycle {
        if now > self.cycle {
            self.cycle = now;
            self.used = 0;
        }
        if self.used < self.width {
            self.used += 1;
            self.cycle
        } else {
            self.cycle += 1;
            self.used = 1;
            self.cycle
        }
    }

    /// The cycle [`Ports::grant`] would return for `now`, without
    /// consuming a slot (the fast path's structural-hazard probe).
    pub fn peek_grant(&self, now: Cycle) -> Cycle {
        if now > self.cycle {
            now
        } else if self.used < self.width {
            self.cycle
        } else {
            self.cycle + 1
        }
    }

    /// Serializes the port group's mutable state (plus its width, so a
    /// restore against a differently configured port fails loudly).
    pub fn save_state(&self, w: &mut Writer) {
        w.u32(self.width);
        w.u64(self.cycle);
        w.u32(self.used);
    }

    /// Restores state saved by [`Ports::save_state`]. The width is fixed
    /// by configuration at assembly time; a mismatch is corruption.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let width = r.u32()?;
        if width != self.width {
            return Err(CkptError::Corrupt("port width mismatch"));
        }
        self.cycle = r.u64()?;
        self.used = r.u32()?;
        if self.used > self.width {
            return Err(CkptError::Corrupt("port grants exceed width"));
        }
        Ok(())
    }
}

/// Outcome of attempting to track a miss in an MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrGrant {
    /// A new entry was allocated; the caller must issue the fill.
    Allocated,
    /// An entry for the same key already existed; the request was merged.
    Merged,
    /// The file is full; the request must be queued and retried.
    Full,
}

/// A finite file of miss-status holding registers keyed by `K`, each
/// carrying a list of waiter tokens `W`.
///
/// Lookups are hash-indexed: the file sits on the per-access hot path of
/// every cache level, so linear scans would dominate simulation time.
#[derive(Debug, Clone)]
pub struct MshrFile<K, W> {
    capacity: usize,
    entries: crate::fxhash::FxHashMap<K, Vec<W>>,
    /// Retired waiter vectors, kept so steady-state allocate/complete
    /// cycles reuse capacity instead of hitting the allocator every miss.
    /// A recycling pool, not a hot per-element structure. lint:allow(vec-vec)
    spare: Vec<Vec<W>>,
}

impl<K: std::hash::Hash + Eq + Copy, W> MshrFile<K, W> {
    /// Creates a file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: crate::fxhash::FxHashMap::default(), spare: Vec::new() }
    }

    /// Registers a miss for `key` with waiter `w`.
    pub fn request(&mut self, key: K, w: W) -> MshrGrant {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(w);
            return MshrGrant::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrGrant::Full;
        }
        let mut waiters = self.spare.pop().unwrap_or_default();
        waiters.push(w);
        self.entries.insert(key, waiters);
        MshrGrant::Allocated
    }

    /// Whether an in-flight entry exists for `key`.
    pub fn contains(&self, key: K) -> bool {
        self.entries.contains_key(&key)
    }

    /// Adds a waiter to an existing entry; `false` if no entry exists.
    pub fn merge(&mut self, key: K, w: W) -> bool {
        if let Some(waiters) = self.entries.get_mut(&key) {
            waiters.push(w);
            true
        } else {
            false
        }
    }

    /// Completes the miss for `key`, returning its waiters.
    pub fn complete(&mut self, key: K) -> Option<Vec<W>> {
        self.entries.remove(&key)
    }

    /// Drops the entry for `key` without waking waiters (EAF release path).
    #[cfg_attr(not(test), allow(dead_code))] // crate-private; test-exercised API completeness
    pub fn release(&mut self, key: K) -> Option<Vec<W>> {
        self.complete(key)
    }

    /// Removes one waiter equal to `w` from the entry for `key`,
    /// dropping the entry when its waiter list empties. Returns whether
    /// a waiter was removed. Tolerates both a missing entry and a
    /// missing waiter — the remote-access completion path races benignly
    /// with ordinary resolution, and whichever side runs second must be
    /// a no-op.
    pub fn remove_waiter(&mut self, key: K, w: &W) -> bool
    where
        W: PartialEq,
    {
        let Some(waiters) = self.entries.get_mut(&key) else {
            return false;
        };
        let Some(pos) = waiters.iter().position(|x| x == w) else {
            return false;
        };
        waiters.remove(pos);
        if waiters.is_empty() {
            let empty = self.entries.remove(&key).expect("entry just accessed");
            self.recycle(empty);
        }
        true
    }

    /// Returns a drained waiter vector to the file's spare pool.
    ///
    /// Callers that `complete` an entry, drain its waiters, and hand the
    /// empty vector back here make the allocate/complete cycle
    /// allocation-free in steady state. Non-empty vectors are cleared.
    pub fn recycle(&mut self, mut waiters: Vec<W>) {
        waiters.clear();
        if self.spare.len() < self.capacity && waiters.capacity() > 0 {
            self.spare.push(waiters);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file has no live entries.
    #[cfg_attr(not(test), allow(dead_code))] // crate-private; test-exercised API completeness
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total waiters across all live entries (checked-mode conservation
    /// audits compare this against the requests known to be in flight).
    #[cfg_attr(not(test), allow(dead_code))] // crate-private; test-exercised API completeness
    pub fn waiter_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Visits every waiter of every live entry (checked-mode reference
    /// audits recompute per-request refcounts this way). Read-only;
    /// iteration order is unspecified.
    pub fn for_each_waiter(&self, mut f: impl FnMut(&W)) {
        for waiters in self.entries.values() {
            for w in waiters {
                f(w);
            }
        }
    }

    /// Serializes the file's live entries in ascending key order (the
    /// map's iteration order is nondeterministic; sorting makes equal
    /// states produce equal bytes). The spare pool is a pure allocation
    /// optimization and is not serialized.
    // lint:exempt(checkpoint-field-parity: spare is an allocation-reuse pool; load_state drains it when rebuilding entries, and its contents never affect observable behavior)
    pub fn save_state(
        &self,
        w: &mut Writer,
        enc_k: &mut dyn FnMut(&mut Writer, &K),
        enc_w: &mut dyn FnMut(&mut Writer, &W),
    ) where
        K: Ord,
    {
        w.usize(self.capacity);
        let mut keys: Vec<&K> = self.entries.keys().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            enc_k(w, k);
            let waiters =
                self.entries.get(k).expect("key collected from the map one line earlier");
            w.usize(waiters.len());
            for waiter in waiters {
                enc_w(w, waiter);
            }
        }
    }

    /// Restores entries saved by [`MshrFile::save_state`], replacing any
    /// current contents (and emptying the spare pool).
    pub fn load_state(
        &mut self,
        r: &mut Reader<'_>,
        dec_k: &mut dyn FnMut(&mut Reader<'_>) -> Result<K, CkptError>,
        dec_w: &mut dyn FnMut(&mut Reader<'_>) -> Result<W, CkptError>,
    ) -> Result<(), CkptError> {
        let capacity = r.usize()?;
        if capacity != self.capacity {
            return Err(CkptError::Corrupt("MSHR file capacity mismatch"));
        }
        self.entries.clear();
        self.spare.clear();
        let n = r.seq_len()?;
        if n > self.capacity {
            return Err(CkptError::Corrupt("MSHR entry count exceeds capacity"));
        }
        for _ in 0..n {
            let key = dec_k(r)?;
            let m = r.seq_len()?;
            if m == 0 {
                return Err(CkptError::Corrupt("MSHR entry restored with no waiters"));
            }
            let mut waiters = Vec::with_capacity(m);
            for _ in 0..m {
                waiters.push(dec_w(r)?);
            }
            if self.entries.insert(key, waiters).is_some() {
                return Err(CkptError::Corrupt("MSHR entry key repeated in checkpoint"));
            }
        }
        Ok(())
    }

    /// Asserts file consistency: never above capacity, no entry without a
    /// waiter (an MSHR exists only to hold whoever is waiting on the
    /// fill), and every pooled spare vector empty. Read-only; called
    /// periodically by the engine in checked (`invariants` feature)
    /// builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        assert!(
            self.entries.len() <= self.capacity,
            "MSHR file over capacity: {} entries, capacity {}",
            self.entries.len(),
            self.capacity
        );
        for waiters in self.entries.values() {
            assert!(!waiters.is_empty(), "MSHR entry with no waiters");
        }
        assert!(self.spare.len() <= self.capacity, "spare pool over capacity");
        assert!(
            self.spare.iter().all(Vec::is_empty),
            "spare pool holds a non-empty waiter vector"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_limit_starts_per_cycle() {
        let mut p = Ports::new(2);
        assert_eq!(p.grant(10), 10);
        assert_eq!(p.grant(10), 10);
        assert_eq!(p.grant(10), 11);
        assert_eq!(p.grant(10), 11);
        assert_eq!(p.grant(10), 12);
    }

    #[test]
    fn ports_reset_on_later_cycle() {
        let mut p = Ports::new(1);
        assert_eq!(p.grant(5), 5);
        assert_eq!(p.grant(5), 6);
        assert_eq!(p.grant(100), 100);
    }

    #[test]
    fn ports_do_not_go_backwards() {
        let mut p = Ports::new(1);
        assert_eq!(p.grant(10), 10);
        // A request arriving "earlier" (same-cycle reordering) still gets a
        // slot no earlier than the port's high-water mark.
        assert_eq!(p.grant(3), 11);
    }

    #[test]
    fn peek_grant_matches_grant_without_consuming() {
        let mut p = Ports::new(2);
        // Fresh port: a future cycle resets the window.
        assert_eq!(p.peek_grant(10), 10);
        assert_eq!(p.grant(10), 10);
        // One slot left this cycle.
        assert_eq!(p.peek_grant(10), 10);
        assert_eq!(p.grant(10), 10);
        // Cycle full: the next grant spills to 11 — and peeking never
        // consumed anything along the way.
        assert_eq!(p.peek_grant(10), 11);
        assert_eq!(p.peek_grant(10), 11);
        assert_eq!(p.grant(10), 11);
        // High-water mark: an "earlier" request peeks the same late slot
        // `grant` would give it.
        assert_eq!(p.peek_grant(3), 11);
        assert_eq!(p.grant(3), 11);
    }

    #[test]
    fn mshr_for_each_waiter_visits_all() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(4);
        m.request(1, 10);
        m.merge(1, 11);
        m.request(2, 20);
        let mut seen: Vec<u32> = Vec::new();
        m.for_each_waiter(|w| seen.push(*w));
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11, 20]);
    }

    #[test]
    fn mshr_alloc_merge_full() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(2);
        assert_eq!(m.request(100, 1), MshrGrant::Allocated);
        assert_eq!(m.request(100, 2), MshrGrant::Merged);
        assert_eq!(m.request(200, 3), MshrGrant::Allocated);
        assert_eq!(m.request(300, 4), MshrGrant::Full);
        assert_eq!(m.complete(100), Some(vec![1, 2]));
        assert_eq!(m.request(300, 4), MshrGrant::Allocated);
        assert!(m.is_full());
    }

    #[test]
    fn mshr_release_drops_waiters_and_waiter_count_tracks() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(4);
        m.request(1, 10);
        m.merge(1, 11);
        m.request(2, 20);
        assert_eq!(m.waiter_count(), 3);
        // EAF release: entry goes away, waiters are handed back unwoken.
        assert_eq!(m.release(1), Some(vec![10, 11]));
        assert_eq!(m.waiter_count(), 1);
        assert!(!m.is_empty());
        m.complete(2);
        assert!(m.is_empty());
        assert_eq!(m.waiter_count(), 0);
    }

    #[test]
    fn mshr_recycle_reuses_capacity() {
        let mut m: MshrFile<u64, u32> = MshrFile::new(4);
        m.request(1, 10);
        m.merge(1, 11);
        let waiters = m.complete(1).unwrap();
        let cap = waiters.capacity();
        m.recycle(waiters);
        // The next allocation draws from the spare pool: same capacity,
        // fresh contents.
        assert_eq!(m.request(2, 20), MshrGrant::Allocated);
        let again = m.complete(2).unwrap();
        assert_eq!(again, vec![20]);
        assert!(again.capacity() >= cap);
    }

    #[test]
    fn mshr_complete_unknown_key_is_none() {
        let mut m: MshrFile<u64, ()> = MshrFile::new(1);
        assert_eq!(m.complete(42), None);
    }

    #[test]
    fn mshr_merge_only_into_existing() {
        let mut m: MshrFile<u64, u8> = MshrFile::new(4);
        assert!(!m.merge(5, 1));
        m.request(5, 0);
        assert!(m.merge(5, 1));
        assert_eq!(m.complete(5), Some(vec![0, 1]));
    }

    #[test]
    fn ports_and_mshr_checkpoint_round_trip() {
        let mut p = Ports::new(2);
        p.grant(10);
        p.grant(10);
        p.grant(10); // spills to cycle 11
        let mut w = Writer::new();
        p.save_state(&mut w);
        let mut m: MshrFile<u64, u32> = MshrFile::new(4);
        m.request(9, 1);
        m.merge(9, 2);
        m.request(3, 5);
        m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, v| w.u32(*v));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        let mut p2 = Ports::new(2);
        p2.load_state(&mut r).expect("ports checkpoint round-trip");
        let mut m2: MshrFile<u64, u32> = MshrFile::new(4);
        m2.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u32())
            .expect("MSHR checkpoint round-trip");
        assert!(r.is_exhausted());
        // The restored port continues from the saved high-water mark.
        assert_eq!(p2.grant(10), p.grant(10));
        assert_eq!(m2.complete(9), Some(vec![1, 2]));
        assert_eq!(m2.complete(3), Some(vec![5]));

        // Capacity mismatch is a hard error, not an adaptation.
        let mut w = Writer::new();
        m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, v| w.u32(*v));
        let bytes = w.into_bytes();
        let mut wrong: MshrFile<u64, u32> = MshrFile::new(8);
        let err = wrong.load_state(&mut Reader::new(&bytes), &mut |r| r.u64(), &mut |r| r.u32());
        assert!(matches!(err, Err(CkptError::Corrupt(_))));
    }

    // Property tests (hand-rolled generators over SimRng; the registry
    // is unreachable, so no proptest). These lived in the integration
    // suite until `port` became `pub(crate)`.

    use crate::rng::SimRng;

    const TRIALS: u64 = 64;

    fn vec_of<T>(
        rng: &mut SimRng,
        min: usize,
        max: usize,
        mut gen: impl FnMut(&mut SimRng) -> T,
    ) -> Vec<T> {
        let n = min + rng.index(max - min + 1);
        (0..n).map(|_| gen(rng)).collect()
    }

    #[test]
    fn ports_grants_are_monotonic_and_bounded() {
        for trial in 0..TRIALS {
            let mut rng = SimRng::seed_from_u64(0x1001 ^ trial);
            let width = 1 + rng.next_below(7) as u32;
            let mut times = vec_of(&mut rng, 1, 200, |r| r.next_below(1000));
            times.sort_unstable();
            let mut p = Ports::new(width);
            let mut grants = Vec::new();
            for t in times {
                grants.push(p.grant(t));
            }
            // Monotonic when requests arrive in time order.
            for w in grants.windows(2) {
                assert!(w[1] >= w[0], "trial {trial}: grants went backwards");
            }
            // No cycle is granted more than `width` times.
            let mut counts = std::collections::HashMap::new();
            for g in grants {
                *counts.entry(g).or_insert(0u32) += 1;
            }
            assert!(counts.values().all(|&c| c <= width), "trial {trial}: cycle over-granted");
        }
    }

    #[test]
    fn mshr_capacity_is_respected() {
        for trial in 0..TRIALS {
            let mut rng = SimRng::seed_from_u64(0x1002 ^ trial);
            let cap = 1 + rng.index(15);
            let keys = vec_of(&mut rng, 1, 100, |r| r.next_below(32));
            let mut m: MshrFile<u64, usize> = MshrFile::new(cap);
            let mut live = std::collections::HashSet::new();
            for (i, k) in keys.iter().enumerate() {
                match m.request(*k, i) {
                    MshrGrant::Allocated => {
                        assert!(live.insert(*k), "trial {trial}: double allocation");
                        assert!(live.len() <= cap, "trial {trial}: capacity exceeded");
                    }
                    MshrGrant::Merged => assert!(live.contains(k), "trial {trial}"),
                    MshrGrant::Full => {
                        assert_eq!(live.len(), cap, "trial {trial}");
                        assert!(!live.contains(k), "trial {trial}");
                    }
                }
                assert_eq!(m.len(), live.len(), "trial {trial}");
            }
            // Completion returns every merged waiter exactly once.
            let total_waiters: usize =
                live.iter().map(|k| m.complete(*k).map(|w| w.len()).unwrap_or(0)).sum();
            assert!(total_waiters <= keys.len(), "trial {trial}");
            assert!(m.is_empty(), "trial {trial}");
        }
    }
}
