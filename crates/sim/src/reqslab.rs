//! Generation-tagged slab for in-flight memory requests.
//!
//! The engine used to push every `MemReq` into a grow-only `Vec` — one
//! slot per coalesced sector request, millions per cell, none ever
//! reclaimed. This slab recycles completed slots through a free list, so
//! resident request memory is bounded by the *peak in-flight* request
//! count instead of the total issued. Each slot carries a generation
//! counter, bumped on free; a [`ReqId`] captures the generation it was
//! minted with, so a stale handle (an event that somehow outlived its
//! request) can never silently alias the slot's next tenant — lookups
//! through a stale id return `None`, and checked-mode audits assert it
//! never happens at all.

use crate::checkpoint::{CkptError, Reader, Writer};

/// Handle to a slab slot: index plus the generation it was allocated in.
///
/// Copyable and order-free — ids are compared only for identity, never
/// ranked — so they can ride inside calendar events and MSHR waiter lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId {
    slot: u32,
    gen: u32,
}

/// Bit position of the shard tag inside [`ReqId::slot`]: the low 24 bits
/// index a slot within one shard's bank (16M in-flight requests per
/// shard, orders of magnitude above any real peak), the high 8 bits name
/// the owning shard. Shard 0 tags are all-zero, so single-shard runs mint
/// byte-identical ids to the pre-sharding slab.
const SHARD_SHIFT: u32 = 24;
/// Mask selecting the intra-bank slot index.
const SHARD_MASK: u32 = (1 << SHARD_SHIFT) - 1;

impl ReqId {
    /// Slot index (stable for the lifetime of the allocation; reused —
    /// under a new generation — after the request is freed). For ids
    /// minted by a [`ReqBank`] this includes the shard tag in the
    /// high bits, keeping the id unique across banks.
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The shard whose bank minted this id (0 for a plain [`ReqSlab`]),
    /// letting the calendar route a request-carrying event to its owning
    /// shard without a slab lookup.
    pub fn shard(self) -> usize {
        (self.slot >> SHARD_SHIFT) as usize
    }

    /// Packs the id into a `u64` for checkpoint serialization (slot in
    /// the high half, generation in the low half).
    pub(crate) fn to_bits(self) -> u64 {
        (self.slot as u64) << 32 | self.gen as u64
    }

    /// Reconstructs an id from [`ReqId::to_bits`] output. The id is only
    /// meaningful against the slab state saved alongside it.
    pub(crate) fn from_bits(bits: u64) -> Self {
        ReqId { slot: (bits >> 32) as u32, gen: bits as u32 }
    }
}

/// One slab slot: the payload plus the slot's current generation.
#[derive(Debug, Clone)]
struct Slot<T> {
    /// Bumped every time the slot is freed; a [`ReqId`] is live iff its
    /// generation matches.
    gen: u32,
    /// `None` only while the slot sits on the free list.
    val: Option<T>,
}

/// A free-list slab of request payloads with generation-tagged handles.
#[derive(Debug, Clone, Default)]
pub struct ReqSlab<T> {
    slots: Vec<Slot<T>>,
    /// Retired slot indices, reused LIFO.
    free: Vec<u32>,
}

impl<T> ReqSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new() }
    }

    /// Allocates a slot for `val`, reusing a freed slot if one exists.
    pub fn insert(&mut self, val: T) -> ReqId {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.val.is_none(), "free-listed slot still occupied");
            s.val = Some(val);
            ReqId { slot, gen: s.gen }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { gen: 0, val: Some(val) });
            ReqId { slot, gen: 0 }
        }
    }

    /// The payload for `id`, or `None` if the id is stale (its slot was
    /// freed, and possibly reallocated, since it was minted).
    pub fn get(&self, id: ReqId) -> Option<&T> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen == id.gen {
            s.val.as_ref()
        } else {
            None
        }
    }

    /// Mutable payload access; `None` on a stale id.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut T> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.gen == id.gen {
            s.val.as_mut()
        } else {
            None
        }
    }

    /// Frees the slot for `id`, returning its payload and bumping the
    /// generation so every outstanding copy of `id` goes stale. `None` if
    /// `id` is already stale.
    pub fn remove(&mut self, id: ReqId) -> Option<T> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.gen != id.gen {
            return None;
        }
        let val = s.val.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        Some(val)
    }

    /// Number of live (allocated) payloads.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no payload is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the resident-memory high-water mark).
    #[cfg_attr(not(test), allow(dead_code))] // crate-private; test-exercised API completeness
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Visits every live payload with its id, in slot order. Read-only.
    pub fn for_each(&self, mut f: impl FnMut(ReqId, &T)) {
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(v) = &s.val {
                f(ReqId { slot: i as u32, gen: s.gen }, v);
            }
        }
    }

    /// Serializes the slab bit-exactly: every slot's generation and
    /// payload (via `enc`) plus the free list in LIFO order, so a restored
    /// slab mints the same ids in the same order as the original.
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &T)) {
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u32(s.gen);
            w.bool(s.val.is_some());
            if let Some(v) = &s.val {
                enc(w, v);
            }
        }
        w.u32_slice(&self.free);
    }

    /// Restores the slab from [`ReqSlab::save_state`] output, replacing
    /// any current contents. Verifies free-list conservation (every
    /// free-listed index names an in-range, empty slot, exactly once).
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader<'_>,
        dec: &mut dyn FnMut(&mut Reader<'_>) -> Result<T, CkptError>,
    ) -> Result<(), CkptError> {
        let n = r.seq_len()?;
        self.slots.clear();
        self.free.clear();
        self.slots.reserve(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let val = if r.bool()? { Some(dec(r)?) } else { None };
            self.slots.push(Slot { gen, val });
        }
        self.free = r.u32_vec()?;
        let mut seen = vec![false; n];
        for &f in &self.free {
            let i = f as usize;
            let slot = self
                .slots
                .get(i)
                .ok_or(CkptError::Corrupt("request slab free list names out-of-range slot"))?;
            if slot.val.is_some() {
                return Err(CkptError::Corrupt("request slab free list names occupied slot"));
            }
            if seen[i] {
                return Err(CkptError::Corrupt("request slab free list repeats a slot"));
            }
            seen[i] = true;
        }
        let occupied = self.slots.iter().filter(|s| s.val.is_some()).count();
        if occupied + self.free.len() != n {
            return Err(CkptError::Corrupt("request slab leaks slots (neither live nor free)"));
        }
        Ok(())
    }

    /// Asserts slab consistency: free-list conservation (every slot is
    /// live or free-listed exactly once, so `live + free == slots`), no
    /// free-listed slot still holding a payload, and no out-of-range or
    /// duplicated free index. Read-only; called periodically by the engine
    /// in checked (`invariants` feature) builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        let occupied = self.slots.iter().filter(|s| s.val.is_some()).count();
        assert_eq!(
            occupied + self.free.len(),
            self.slots.len(),
            "request slab slots leaked: {} occupied + {} free != {} slots",
            occupied,
            self.free.len(),
            self.slots.len()
        );
        let mut seen = vec![false; self.slots.len()];
        for &f in &self.free {
            let i = f as usize;
            assert!(i < self.slots.len(), "free list holds out-of-range slot {f}");
            assert!(!seen[i], "slot {f} free-listed twice");
            seen[i] = true;
            assert!(self.slots[i].val.is_none(), "free slot {f} still holds a request");
        }
    }
}

/// Per-shard request banks behind one id space: bank `s` serves shard
/// `s`, and every minted [`ReqId`] carries its shard in the high slot
/// bits (see [`SHARD_SHIFT`]). The live engine owns one [`ReqBank`] per
/// lane instead (banks must move onto worker threads independently);
/// this combined form is retained as the test oracle that the bank's
/// id minting, lookup, and checkpoint bytes match the single-structure
/// semantics exactly.
#[cfg(test)]
#[derive(Debug, Clone)]
pub struct ShardedReqSlab<T> {
    banks: Vec<ReqSlab<T>>,
}

#[cfg(test)]
#[allow(dead_code)] // test oracle: keeps the full single-structure API even where tests only exercise part of it
impl<T> ShardedReqSlab<T> {
    /// Creates a slab with one bank per shard.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one bank required");
        assert!(
            shards <= 1 << (32 - SHARD_SHIFT),
            "shard count {shards} does not fit the ReqId tag"
        );
        Self { banks: (0..shards).map(|_| ReqSlab::new()).collect() }
    }

    /// Allocates a slot in `shard`'s bank, returning a shard-tagged id.
    pub fn insert(&mut self, shard: usize, val: T) -> ReqId {
        let id = self.banks[shard].insert(val);
        debug_assert!(id.slot <= SHARD_MASK, "bank {shard} overflowed the slot tag space");
        ReqId { slot: (shard as u32) << SHARD_SHIFT | id.slot, gen: id.gen }
    }

    #[inline]
    fn untag(id: ReqId) -> (usize, ReqId) {
        ((id.slot >> SHARD_SHIFT) as usize, ReqId { slot: id.slot & SHARD_MASK, gen: id.gen })
    }

    /// The payload for `id`, or `None` if the id is stale.
    pub fn get(&self, id: ReqId) -> Option<&T> {
        let (bank, inner) = Self::untag(id);
        self.banks.get(bank)?.get(inner)
    }

    /// Mutable payload access; `None` on a stale id.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut T> {
        let (bank, inner) = Self::untag(id);
        self.banks.get_mut(bank)?.get_mut(inner)
    }

    /// Frees the slot for `id`, returning its payload (`None` if stale).
    pub fn remove(&mut self, id: ReqId) -> Option<T> {
        let (bank, inner) = Self::untag(id);
        self.banks.get_mut(bank)?.remove(inner)
    }

    /// Live payloads across every bank.
    pub fn len(&self) -> usize {
        self.banks.iter().map(ReqSlab::len).sum()
    }

    /// Whether no payload is live in any bank.
    pub fn is_empty(&self) -> bool {
        self.banks.iter().all(ReqSlab::is_empty)
    }

    /// Live payloads in `shard`'s bank (per-shard slab accounting).
    pub fn bank_len(&self, shard: usize) -> usize {
        self.banks[shard].len()
    }

    /// Number of banks (== shard count).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Visits every live payload with its shard-tagged id, banks in
    /// shard order, slots in index order within a bank. Read-only.
    pub fn for_each(&self, mut f: impl FnMut(ReqId, &T)) {
        for (shard, bank) in self.banks.iter().enumerate() {
            bank.for_each(|inner, v| {
                f(ReqId { slot: (shard as u32) << SHARD_SHIFT | inner.slot, gen: inner.gen }, v)
            });
        }
    }

    /// Serializes every bank in shard order (see [`ReqSlab::save_state`]).
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &T)) {
        w.usize(self.banks.len());
        for bank in &self.banks {
            bank.save_state(w, enc);
        }
    }

    /// Restores every bank from [`ShardedReqSlab::save_state`] output.
    /// The bank count is fixed by the shard knob at assembly time, so a
    /// mismatch is corruption, not something to adapt to.
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader<'_>,
        dec: &mut dyn FnMut(&mut Reader<'_>) -> Result<T, CkptError>,
    ) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.banks.len() {
            return Err(CkptError::Corrupt("request slab bank count mismatch"));
        }
        for bank in &mut self.banks {
            bank.load_state(r, dec)?;
        }
        Ok(())
    }

    /// Audits every bank's slab consistency (see
    /// [`ReqSlab::audit_invariants`]).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        for bank in &self.banks {
            bank.audit_invariants();
        }
    }
}

/// One shard's bank of the request id space, owned outright by that
/// shard's lane (and therefore movable onto a worker thread): a plain
/// [`ReqSlab`] whose minted ids carry the bank's shard tag, exactly as
/// `ShardedReqSlab` (the test oracle below) would mint them. Bank 0's
/// ids are byte-identical
/// to an untagged [`ReqSlab`]'s.
#[derive(Debug, Clone)]
pub struct ReqBank<T> {
    shard: u32,
    slab: ReqSlab<T>,
}

impl<T> ReqBank<T> {
    /// Creates the empty bank for `shard`.
    pub fn new(shard: usize) -> Self {
        assert!(
            shard < 1 << (32 - SHARD_SHIFT),
            "shard index {shard} does not fit the ReqId tag"
        );
        Self { shard: shard as u32, slab: ReqSlab::new() }
    }

    #[inline]
    fn untag(&self, id: ReqId) -> ReqId {
        debug_assert_eq!(id.shard(), self.shard as usize, "foreign-bank ReqId");
        ReqId { slot: id.slot & SHARD_MASK, gen: id.gen }
    }

    #[inline]
    fn tag(&self, id: ReqId) -> ReqId {
        ReqId { slot: self.shard << SHARD_SHIFT | id.slot, gen: id.gen }
    }

    /// Allocates a slot, returning a shard-tagged id.
    pub fn insert(&mut self, val: T) -> ReqId {
        let id = self.slab.insert(val);
        debug_assert!(id.slot <= SHARD_MASK, "bank {} overflowed the slot tag space", self.shard);
        self.tag(id)
    }

    /// The payload for `id`, or `None` if the id is stale.
    pub fn get(&self, id: ReqId) -> Option<&T> {
        let inner = self.untag(id);
        self.slab.get(inner)
    }

    /// Mutable payload access; `None` on a stale id.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut T> {
        let inner = self.untag(id);
        self.slab.get_mut(inner)
    }

    /// Frees the slot for `id`, returning its payload (`None` if stale).
    pub fn remove(&mut self, id: ReqId) -> Option<T> {
        let inner = self.untag(id);
        self.slab.remove(inner)
    }

    /// Live payloads in the bank.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Whether no payload is live.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Visits every live payload with its shard-tagged id, in slot order.
    pub fn for_each(&self, mut f: impl FnMut(ReqId, &T)) {
        let shard = self.shard;
        self.slab.for_each(|inner, v| {
            f(ReqId { slot: shard << SHARD_SHIFT | inner.slot, gen: inner.gen }, v)
        });
    }

    /// Serializes the bank (see [`ReqSlab::save_state`]). The shard tag
    /// is assembly geometry, never stored.
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &T)) {
        self.slab.save_state(w, enc);
    }

    /// Restores the bank from [`ReqBank::save_state`] output.
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader<'_>,
        dec: &mut dyn FnMut(&mut Reader<'_>) -> Result<T, CkptError>,
    ) -> Result<(), CkptError> {
        self.slab.load_state(r, dec)
    }

    /// Audits the bank's slab consistency (see
    /// [`ReqSlab::audit_invariants`]).
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        self.slab.audit_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_ids_match_the_sharded_slab() {
        let mut bank: ReqBank<u32> = ReqBank::new(3);
        let mut sharded: ShardedReqSlab<u32> = ShardedReqSlab::new(4);
        for i in 0..50 {
            let a = bank.insert(i);
            let b = sharded.insert(3, i);
            assert_eq!(a, b, "bank must mint the ids its sharded twin would");
            assert_eq!(a.shard(), 3);
            assert_eq!(bank.get(a), Some(&i));
            if i % 4 == 0 {
                assert_eq!(bank.remove(a), sharded.remove(b));
                assert_eq!(bank.get(a), None);
            }
        }
        assert_eq!(bank.len(), sharded.bank_len(3));
        bank.audit_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: ReqSlab<&str> = ReqSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn free_list_conservation_under_churn() {
        let mut s: ReqSlab<u64> = ReqSlab::new();
        // Steady-state churn: never more than 8 requests live, so the
        // slab must never grow past the high-water mark.
        let mut live = Vec::new();
        for round in 0..1000u64 {
            for k in 0..8 {
                live.push(s.insert(round * 8 + k));
            }
            s.audit_invariants();
            for id in live.drain(..) {
                assert!(s.remove(id).is_some());
            }
            s.audit_invariants();
        }
        assert!(s.is_empty());
        assert!(s.capacity() <= 8, "slab grew to {} despite recycling", s.capacity());
    }

    #[test]
    fn stale_id_is_rejected_after_reuse() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let old = s.insert(1);
        assert_eq!(s.remove(old), Some(1));
        // The freed slot is recycled under a new generation...
        let new = s.insert(2);
        assert_eq!(new.slot(), old.slot());
        assert_ne!(new, old);
        // ...and every access through the stale id misses.
        assert_eq!(s.get(old), None);
        assert_eq!(s.get_mut(old), None);
        assert_eq!(s.remove(old), None);
        // The new tenant is untouched by the stale traffic.
        assert_eq!(s.get(new), Some(&2));
    }

    #[test]
    fn double_remove_is_inert() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let id = s.insert(7);
        assert_eq!(s.remove(id), Some(7));
        assert_eq!(s.remove(id), None, "second remove through the same id");
        s.audit_invariants();
        assert!(s.is_empty());
    }

    #[test]
    fn for_each_visits_live_only() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let c = s.insert(30);
        s.remove(a);
        let mut seen = Vec::new();
        s.for_each(|id, v| seen.push((id.slot(), *v)));
        assert_eq!(seen, vec![(1, 20), (2, 30)]);
        assert!(s.get(c).is_some());
    }

    #[test]
    fn sharded_ids_carry_their_bank_and_stay_unique() {
        let mut s: ShardedReqSlab<u32> = ShardedReqSlab::new(4);
        let a = s.insert(0, 10);
        let b = s.insert(3, 20);
        let c = s.insert(3, 30);
        assert_eq!(a.shard(), 0);
        assert_eq!(b.shard(), 3);
        // Same intra-bank slot index, different banks → different ids.
        assert_eq!(a.slot() & SHARD_MASK, b.slot() & SHARD_MASK);
        assert_ne!(a.slot(), b.slot());
        assert_eq!(s.get(a), Some(&10));
        assert_eq!(s.get(b), Some(&20));
        assert_eq!(s.get(c), Some(&30));
        assert_eq!(s.len(), 3);
        assert_eq!(s.bank_len(3), 2);
        assert_eq!(s.remove(b), Some(20));
        assert_eq!(s.get(b), None, "stale sharded id must miss");
        assert_eq!(s.bank_len(3), 1);
        s.audit_invariants();
    }

    #[test]
    fn single_bank_ids_match_the_plain_slab() {
        // shards == 1 must mint byte-identical ids to ReqSlab, so the
        // serial path (and anything keyed on slot(), like traces) is
        // unchanged by the sharded wrapper.
        let mut sharded: ShardedReqSlab<u32> = ShardedReqSlab::new(1);
        let mut plain: ReqSlab<u32> = ReqSlab::new();
        let mut ids = Vec::new();
        for i in 0..100 {
            let a = sharded.insert(0, i);
            let b = plain.insert(i);
            assert_eq!(a, b);
            ids.push(a);
            if i % 3 == 0 {
                let victim = ids.remove(ids.len() / 2);
                assert_eq!(sharded.remove(victim), plain.remove(victim));
            }
        }
        assert_eq!(sharded.len(), plain.len());
    }

    #[test]
    fn sharded_for_each_visits_banks_in_shard_order() {
        let mut s: ShardedReqSlab<u32> = ShardedReqSlab::new(3);
        let a = s.insert(2, 1);
        let b = s.insert(0, 2);
        let c = s.insert(1, 3);
        s.remove(c);
        let mut seen = Vec::new();
        s.for_each(|id, v| seen.push((id.shard(), *v)));
        assert_eq!(seen, vec![(0, 2), (2, 1)]);
        assert!(s.get(a).is_some() && s.get(b).is_some());
    }

    #[test]
    fn checkpoint_round_trip_preserves_ids_and_free_order() {
        use crate::checkpoint::{Reader, Writer};
        let mut s: ShardedReqSlab<u64> = ShardedReqSlab::new(2);
        let a = s.insert(0, 10);
        let b = s.insert(1, 20);
        let c = s.insert(0, 30);
        s.remove(a);
        let mut w = Writer::new();
        s.save_state(&mut w, &mut |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut t: ShardedReqSlab<u64> = ShardedReqSlab::new(2);
        let mut r = Reader::new(&bytes);
        t.load_state(&mut r, &mut |r| r.u64()).expect("slab checkpoint round-trip");
        assert!(r.is_exhausted());
        assert_eq!(t.get(b), Some(&20));
        assert_eq!(t.get(c), Some(&30));
        assert_eq!(t.get(a), None, "stale id stays stale across restore");
        // Future allocations follow the identical free-list order, so the
        // restored engine mints the same ids as the original would have.
        assert_eq!(t.insert(0, 40), s.insert(0, 40));
        assert_eq!(t.insert(0, 50), s.insert(0, 50));
        // ReqId bit-packing round-trips exactly.
        assert_eq!(ReqId::from_bits(b.to_bits()), b);
    }

    #[test]
    fn checkpoint_rejects_corrupt_free_list() {
        use crate::checkpoint::{CkptError, Reader, Writer};
        let mut s: ReqSlab<u64> = ReqSlab::new();
        let id = s.insert(1);
        s.remove(id);
        s.free.push(id.slot()); // corrupt: same slot free-listed twice
        let mut w = Writer::new();
        s.save_state(&mut w, &mut |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut t: ReqSlab<u64> = ReqSlab::new();
        let err = t.load_state(&mut Reader::new(&bytes), &mut |r| r.u64());
        assert!(matches!(err, Err(CkptError::Corrupt(_))), "double-free must not restore");
    }

    #[test]
    fn audit_detects_double_free() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let id = s.insert(1);
        s.remove(id);
        s.free.push(id.slot()); // corrupt: same slot free-listed twice
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.audit_invariants()));
        assert!(err.is_err(), "audit must catch a double-freed slot");
    }
}
