//! Generation-tagged slab for in-flight memory requests.
//!
//! The engine used to push every `MemReq` into a grow-only `Vec` — one
//! slot per coalesced sector request, millions per cell, none ever
//! reclaimed. This slab recycles completed slots through a free list, so
//! resident request memory is bounded by the *peak in-flight* request
//! count instead of the total issued. Each slot carries a generation
//! counter, bumped on free; a [`ReqId`] captures the generation it was
//! minted with, so a stale handle (an event that somehow outlived its
//! request) can never silently alias the slot's next tenant — lookups
//! through a stale id return `None`, and checked-mode audits assert it
//! never happens at all.

/// Handle to a slab slot: index plus the generation it was allocated in.
///
/// Copyable and order-free — ids are compared only for identity, never
/// ranked — so they can ride inside calendar events and MSHR waiter lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId {
    slot: u32,
    gen: u32,
}

impl ReqId {
    /// Slot index (stable for the lifetime of the allocation; reused —
    /// under a new generation — after the request is freed).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

/// One slab slot: the payload plus the slot's current generation.
#[derive(Debug, Clone)]
struct Slot<T> {
    /// Bumped every time the slot is freed; a [`ReqId`] is live iff its
    /// generation matches.
    gen: u32,
    /// `None` only while the slot sits on the free list.
    val: Option<T>,
}

/// A free-list slab of request payloads with generation-tagged handles.
#[derive(Debug, Clone, Default)]
pub struct ReqSlab<T> {
    slots: Vec<Slot<T>>,
    /// Retired slot indices, reused LIFO.
    free: Vec<u32>,
}

impl<T> ReqSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new() }
    }

    /// Allocates a slot for `val`, reusing a freed slot if one exists.
    pub fn insert(&mut self, val: T) -> ReqId {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.val.is_none(), "free-listed slot still occupied");
            s.val = Some(val);
            ReqId { slot, gen: s.gen }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { gen: 0, val: Some(val) });
            ReqId { slot, gen: 0 }
        }
    }

    /// The payload for `id`, or `None` if the id is stale (its slot was
    /// freed, and possibly reallocated, since it was minted).
    pub fn get(&self, id: ReqId) -> Option<&T> {
        let s = self.slots.get(id.slot as usize)?;
        if s.gen == id.gen {
            s.val.as_ref()
        } else {
            None
        }
    }

    /// Mutable payload access; `None` on a stale id.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut T> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.gen == id.gen {
            s.val.as_mut()
        } else {
            None
        }
    }

    /// Frees the slot for `id`, returning its payload and bumping the
    /// generation so every outstanding copy of `id` goes stale. `None` if
    /// `id` is already stale.
    pub fn remove(&mut self, id: ReqId) -> Option<T> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.gen != id.gen {
            return None;
        }
        let val = s.val.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(id.slot);
        Some(val)
    }

    /// Number of live (allocated) payloads.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no payload is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the resident-memory high-water mark).
    #[cfg_attr(not(test), allow(dead_code))] // crate-private; test-exercised API completeness
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Visits every live payload with its id, in slot order. Read-only.
    pub fn for_each(&self, mut f: impl FnMut(ReqId, &T)) {
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(v) = &s.val {
                f(ReqId { slot: i as u32, gen: s.gen }, v);
            }
        }
    }

    /// Asserts slab consistency: free-list conservation (every slot is
    /// live or free-listed exactly once, so `live + free == slots`), no
    /// free-listed slot still holding a payload, and no out-of-range or
    /// duplicated free index. Read-only; called periodically by the engine
    /// in checked (`invariants` feature) builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        let occupied = self.slots.iter().filter(|s| s.val.is_some()).count();
        assert_eq!(
            occupied + self.free.len(),
            self.slots.len(),
            "request slab slots leaked: {} occupied + {} free != {} slots",
            occupied,
            self.free.len(),
            self.slots.len()
        );
        let mut seen = vec![false; self.slots.len()];
        for &f in &self.free {
            let i = f as usize;
            assert!(i < self.slots.len(), "free list holds out-of-range slot {f}");
            assert!(!seen[i], "slot {f} free-listed twice");
            seen[i] = true;
            assert!(self.slots[i].val.is_none(), "free slot {f} still holds a request");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: ReqSlab<&str> = ReqSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn free_list_conservation_under_churn() {
        let mut s: ReqSlab<u64> = ReqSlab::new();
        // Steady-state churn: never more than 8 requests live, so the
        // slab must never grow past the high-water mark.
        let mut live = Vec::new();
        for round in 0..1000u64 {
            for k in 0..8 {
                live.push(s.insert(round * 8 + k));
            }
            s.audit_invariants();
            for id in live.drain(..) {
                assert!(s.remove(id).is_some());
            }
            s.audit_invariants();
        }
        assert!(s.is_empty());
        assert!(s.capacity() <= 8, "slab grew to {} despite recycling", s.capacity());
    }

    #[test]
    fn stale_id_is_rejected_after_reuse() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let old = s.insert(1);
        assert_eq!(s.remove(old), Some(1));
        // The freed slot is recycled under a new generation...
        let new = s.insert(2);
        assert_eq!(new.slot(), old.slot());
        assert_ne!(new, old);
        // ...and every access through the stale id misses.
        assert_eq!(s.get(old), None);
        assert_eq!(s.get_mut(old), None);
        assert_eq!(s.remove(old), None);
        // The new tenant is untouched by the stale traffic.
        assert_eq!(s.get(new), Some(&2));
    }

    #[test]
    fn double_remove_is_inert() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let id = s.insert(7);
        assert_eq!(s.remove(id), Some(7));
        assert_eq!(s.remove(id), None, "second remove through the same id");
        s.audit_invariants();
        assert!(s.is_empty());
    }

    #[test]
    fn for_each_visits_live_only() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        let c = s.insert(30);
        s.remove(a);
        let mut seen = Vec::new();
        s.for_each(|id, v| seen.push((id.slot(), *v)));
        assert_eq!(seen, vec![(1, 20), (2, 30)]);
        assert!(s.get(c).is_some());
    }

    #[test]
    fn audit_detects_double_free() {
        let mut s: ReqSlab<u32> = ReqSlab::new();
        let id = s.insert(1);
        s.remove(id);
        s.free.push(id.slot()); // corrupt: same slot free-listed twice
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.audit_invariants()));
        assert!(err.is_err(), "audit must catch a double-freed slot");
    }
}
