//! The discrete-event simulation engine: drives warps through the TLB
//! hierarchy, caches, page-walk system, DRAM, and the speculative
//! translation machinery.
//!
//! The engine is deliberately policy-free: speculation decisions come from
//! the plugged-in [`TranslationAccel`] and compressibility from the
//! [`SectorCompression`] content model. The baseline, the prior-work TLB
//! designs, and Avatar all run on this same plumbing.
//!
//! # Sharded execution model
//!
//! State is split into per-shard [`ShardLane`]s (each owning a contiguous
//! SM range: warps, L1 TLBs, L1 sector caches, their ports/MSHRs, and a
//! [`ReqBank`] partition of the request slab) and one [`SharedLane`] (the
//! L2 TLB, L2 cache, walker, DRAM, UVM managers, and the plugged
//! policies). Each lane has its own event queue and per-actor striped
//! sequence counters, so the global `(time, seq)` order of every event is
//! a pure function of the simulated machine — independent of how many
//! shards the state is packed into or how many worker threads drain them.
//!
//! Execution proceeds in lookahead windows of `W = effective_lookahead()`
//! cycles with a two-phase barrier:
//!
//! 1. **Phase A** — every shard lane drains its queue up to the horizon.
//!    Lanes touch only their own state (plus the immutable speculation
//!    policy for [`TranslationAccel::on_spec_fill`]), so with
//!    `workers > 1` they run on scoped worker threads. Cross-domain
//!    messages are appended to per-lane outboxes, never applied directly.
//! 2. **Phase B** — the coordinator drains lane outboxes into the shared
//!    queue in lane order, advances the shared lane to the same horizon,
//!    and routes the shared outbox back to the lane queues.
//!
//! Safety of the split: every shard→shared edge is scheduled at
//! `now + 1 ≥ start` of the *same* window (delivered at the Phase B
//! barrier before the shared lane advances), and every shared→shard edge
//! at `now + W + delay ≥ horizon` (delivered before the next window
//! opens). No event can ever be scheduled into a lane's past, so the
//! drain order — and the [`Stats::digest`] — is byte-identical across
//! every `(shards, workers)` combination.

use crate::addr::{translate, PhysAddr, Ppn, VirtAddr, Vpn, SECTOR_BYTES};
use crate::cache::{Probe, SectorCache, SectorFlags};
use crate::checkpoint::{CkptError, Reader, Writer, FORMAT_VERSION, MAGIC};
use crate::config::{Cycle, GpuConfig};
use crate::dram::{Dram, DramOp};
use crate::event::EventQueue;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hooks::{
    FetchedSector, NoSpeculation, PageMeta, SectorCompression, SpecFillAction, SpecFillContext,
    TranslationAccel, ValidationKind,
};
use crate::page_table::PT_BASE;
use crate::port::{MshrFile, MshrGrant, Ports};
use crate::probe::{Phase, SpanPoint, Track};
use crate::reqslab::{ReqBank, ReqId};
use crate::sm::{coalesce_into, shard_of, SmState, WarpOp, WarpProgram, WarpState};
use crate::stats::{CoverageBucket, SpecOutcome, Stats};
use crate::tlb::{ContigRun, TlbFill, TlbModel};
use crate::uvm::Uvm;
use crate::walker::{PageWalkSystem, WalkId, WalkProgress};
use std::sync::Arc;

/// Bit position where the tenant id is folded into TLB/walk keys, so one
/// physical TLB hierarchy holds entries of several address spaces without
/// aliasing (the hardware equivalent of ASID-tagged entries).
const ASID_SHIFT: u32 = 44;

#[derive(Debug, Clone, Copy)]
struct SpecState {
    ppn: Ppn,
    ideal: bool,
    killed: bool,
    /// The request is registered as a waiter on its speculative fetch's
    /// L1 MSHR entry.
    fetch_registered: bool,
}

#[derive(Debug, Clone)]
struct MemReq {
    sm: u32,
    warp: u32,
    pc: u64,
    vaddr: VirtAddr,
    issued: Cycle,
    real_ppn: Option<Ppn>,
    translation_done: bool,
    completed: bool,
    is_store: bool,
    spec: Option<SpecState>,
    /// Stored copies of this request's id (calendar events, MSHR waiter
    /// lists, overflow queues). The slab slot is freed when the request
    /// is completed and the count drops to zero — never earlier, because
    /// e.g. `l1_fill` reads `completed` through still-live waiter copies.
    refs: u32,
    /// Lifecycle phase currently charged for this request's wait.
    #[cfg(feature = "probes")]
    phase: Phase,
    /// Cycle the current phase was entered (attribution anchor).
    #[cfg(feature = "probes")]
    phase_entered: Cycle,
    /// Cycles already attributed across earlier phases; at completion
    /// this telescopes to exactly `now - issued` (conservation check).
    #[cfg(feature = "probes")]
    phase_acc: u64,
    /// Cycle the speculative fetch registered (validation-latency anchor).
    #[cfg(feature = "probes")]
    spec_started: Cycle,
}

impl MemReq {
    fn vpn(&self) -> Vpn {
        self.vaddr.vpn()
    }

    fn spec_pa(&self) -> Option<PhysAddr> {
        self.spec.map(|s| translate(self.vaddr, s.ppn))
    }

    fn real_pa(&self) -> Option<PhysAddr> {
        self.real_ppn.map(|p| translate(self.vaddr, p))
    }
}

/// Waiter kinds on the shared L2 cache MSHRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2Waiter {
    Sector { sm: u32 },
    Walk { walk: WalkId },
}

/// One calendar event. Variants are grouped by the lane that handles
/// them; `target_shard` routes the shard-targeted group, and the rest are
/// handled by the shared lane only.
#[derive(Debug, Clone)]
enum Ev {
    // ---- shard-targeted (handled by the owning ShardLane) ----
    WarpIssue { sm: u32, warp: u32 },
    L1TlbResult { req: ReqId },
    SpecL1Result { req: ReqId },
    L1Result { req: ReqId },
    /// A sector arriving at an SM's L1 from the shared hierarchy, with
    /// the content metadata sampled at emission time.
    L1Fill { sm: u32, pa: u64, meta: FetchedSector },
    RemoteDone { req: ReqId },
    /// Evented twin of the inline fast path (`inline_hit_path` off): one
    /// sector of a fully-hitting warp completing at its computed cycle.
    FastComplete { sm: u32, warp: u32, last: bool },
    /// The speculation policy predicted a frame for this request; the
    /// lane starts the speculative L1 probe. Token event: the request is
    /// NOT pinned by it (the translation may complete first).
    SpecDispatch { req: ReqId, ppn: u64, ideal: bool },
    /// A resolved translation being delivered to one SM's L1 TLB.
    ResolveSm { sm: u32, svpn: u64, ppn: u64, pages: u64, run: Option<ContigRun>, via_eaf: bool },
    /// UVM chunk eviction invalidating one SM's L1 structures.
    Shootdown { sm: u32, first_svpn: u64, pages: u64, frames: Arc<FxHashSet<u64>> },
    // ---- shared-targeted (handled by the SharedLane) ----
    /// An L1 TLB miss crossing into the shared hierarchy. Token event:
    /// carries everything the shared lane needs, never dereferenced.
    TlbMiss { req: ReqId, sm: u32, svpn: u64, pc: u64, is_store: bool, need_l2: bool },
    L2TlbResult { sm: u32, svpn: u64 },
    WalkL2 { walk: WalkId, pa: u64 },
    /// A shard-side L1 miss requesting a sector from the L2.
    L2Req { sm: u32, pa: u64 },
    L2Access { sm: u32, pa: u64 },
    DramDone { pa: u64 },
    /// Deferred accel training for a resolved translation (the accel is
    /// shared-lane state; lanes cannot call it mutably).
    AccelTrain { sm: u32, pc: u64, svpn: u64, ppn: u64 },
    /// Early-TLB-Fill release: a lane validated an embedded translation
    /// and the shared side releases walks/MSHRs and propagates it.
    EafResolve { sm: u32, svpn: u64, ppn: u64 },
    /// Rapid validation-on-use verdict arriving for a correct
    /// speculation ([`ValidationKind::Rapid`]): the shared lane
    /// re-checks the mapping, fills the TLBs, and releases walk
    /// resources early, like EAF without the compressed-sector channel.
    RapidResolve { sm: u32, svpn: u64, ppn: u64 },
    /// A dirty sector evicted from an L1 writing back to the L2.
    WritebackL2 { pa: u64 },
}

/// The shard lane that must handle a shard-targeted event. Shared-domain
/// events never reach this function: the shared lane's outbox is routed
/// through it, and only shard-targeted events are ever placed there.
fn target_shard(ev: &Ev, shards: usize, num_sms: usize) -> usize {
    match *ev {
        Ev::WarpIssue { sm, .. }
        | Ev::L1Fill { sm, .. }
        | Ev::FastComplete { sm, .. }
        | Ev::ResolveSm { sm, .. }
        | Ev::Shootdown { sm, .. } => shard_of(sm as usize, shards, num_sms),
        Ev::L1TlbResult { req }
        | Ev::SpecL1Result { req }
        | Ev::L1Result { req }
        | Ev::RemoteDone { req }
        | Ev::SpecDispatch { req, .. } => req.shard(),
        Ev::TlbMiss { .. }
        | Ev::L2TlbResult { .. }
        | Ev::WalkL2 { .. }
        | Ev::L2Req { .. }
        | Ev::L2Access { .. }
        | Ev::DramDone { .. }
        | Ev::AccelTrain { .. }
        | Ev::EafResolve { .. }
        | Ev::RapidResolve { .. }
        | Ev::WritebackL2 { .. } => {
            // A shared-domain event reaching the router is unrecoverable
            // cross-domain corruption. lint:allow(hot-path-panic)
            unreachable!("shared-domain event routed to a shard")
        }
    }
}

/// Encodes one calendar event for a checkpoint (tag byte + fields;
/// request ids as their packed slot/generation bits).
fn enc_ev(w: &mut Writer, ev: &Ev) {
    match *ev {
        Ev::WarpIssue { sm, warp } => {
            w.u8(0);
            w.u32(sm);
            w.u32(warp);
        }
        Ev::L1TlbResult { req } => {
            w.u8(1);
            w.u64(req.to_bits());
        }
        Ev::SpecL1Result { req } => {
            w.u8(2);
            w.u64(req.to_bits());
        }
        Ev::L1Result { req } => {
            w.u8(3);
            w.u64(req.to_bits());
        }
        Ev::L1Fill { sm, pa, meta } => {
            w.u8(4);
            w.u32(sm);
            w.u64(pa);
            enc_sector_meta(w, &meta);
        }
        Ev::RemoteDone { req } => {
            w.u8(5);
            w.u64(req.to_bits());
        }
        Ev::FastComplete { sm, warp, last } => {
            w.u8(6);
            w.u32(sm);
            w.u32(warp);
            w.bool(last);
        }
        Ev::SpecDispatch { req, ppn, ideal } => {
            w.u8(7);
            w.u64(req.to_bits());
            w.u64(ppn);
            w.bool(ideal);
        }
        Ev::ResolveSm { sm, svpn, ppn, pages, run, via_eaf } => {
            w.u8(8);
            w.u32(sm);
            w.u64(svpn);
            w.u64(ppn);
            w.u64(pages);
            match run {
                None => w.bool(false),
                Some(r) => {
                    w.bool(true);
                    w.u64(r.start_vpn);
                    w.u64(r.start_ppn);
                    w.u64(r.len);
                }
            }
            w.bool(via_eaf);
        }
        Ev::Shootdown { sm, first_svpn, pages, ref frames } => {
            w.u8(9);
            w.u32(sm);
            w.u64(first_svpn);
            w.u64(pages);
            // Serialize the frame set in sorted order so checkpoint bytes
            // are deterministic.
            let mut sorted: Vec<u64> = frames.iter().copied().collect();
            sorted.sort_unstable();
            w.u64_slice(&sorted);
        }
        Ev::TlbMiss { req, sm, svpn, pc, is_store, need_l2 } => {
            w.u8(10);
            w.u64(req.to_bits());
            w.u32(sm);
            w.u64(svpn);
            w.u64(pc);
            w.bool(is_store);
            w.bool(need_l2);
        }
        Ev::L2TlbResult { sm, svpn } => {
            w.u8(11);
            w.u32(sm);
            w.u64(svpn);
        }
        Ev::WalkL2 { walk, pa } => {
            w.u8(12);
            w.u64(walk.0);
            w.u64(pa);
        }
        Ev::L2Req { sm, pa } => {
            w.u8(13);
            w.u32(sm);
            w.u64(pa);
        }
        Ev::L2Access { sm, pa } => {
            w.u8(14);
            w.u32(sm);
            w.u64(pa);
        }
        Ev::DramDone { pa } => {
            w.u8(15);
            w.u64(pa);
        }
        Ev::AccelTrain { sm, pc, svpn, ppn } => {
            w.u8(16);
            w.u32(sm);
            w.u64(pc);
            w.u64(svpn);
            w.u64(ppn);
        }
        Ev::EafResolve { sm, svpn, ppn } => {
            w.u8(17);
            w.u32(sm);
            w.u64(svpn);
            w.u64(ppn);
        }
        Ev::WritebackL2 { pa } => {
            w.u8(18);
            w.u64(pa);
        }
        Ev::RapidResolve { sm, svpn, ppn } => {
            w.u8(19);
            w.u32(sm);
            w.u64(svpn);
            w.u64(ppn);
        }
    }
}

/// Decodes one calendar event written by [`enc_ev`].
fn dec_ev(r: &mut Reader<'_>) -> Result<Ev, CkptError> {
    Ok(match r.u8()? {
        0 => Ev::WarpIssue { sm: r.u32()?, warp: r.u32()? },
        1 => Ev::L1TlbResult { req: ReqId::from_bits(r.u64()?) },
        2 => Ev::SpecL1Result { req: ReqId::from_bits(r.u64()?) },
        3 => Ev::L1Result { req: ReqId::from_bits(r.u64()?) },
        4 => Ev::L1Fill { sm: r.u32()?, pa: r.u64()?, meta: dec_sector_meta(r)? },
        5 => Ev::RemoteDone { req: ReqId::from_bits(r.u64()?) },
        6 => Ev::FastComplete { sm: r.u32()?, warp: r.u32()?, last: r.bool()? },
        7 => Ev::SpecDispatch { req: ReqId::from_bits(r.u64()?), ppn: r.u64()?, ideal: r.bool()? },
        8 => Ev::ResolveSm {
            sm: r.u32()?,
            svpn: r.u64()?,
            ppn: r.u64()?,
            pages: r.u64()?,
            run: if r.bool()? {
                Some(ContigRun { start_vpn: r.u64()?, start_ppn: r.u64()?, len: r.u64()? })
            } else {
                None
            },
            via_eaf: r.bool()?,
        },
        9 => Ev::Shootdown {
            sm: r.u32()?,
            first_svpn: r.u64()?,
            pages: r.u64()?,
            frames: Arc::new(r.u64_vec()?.into_iter().collect()),
        },
        10 => Ev::TlbMiss {
            req: ReqId::from_bits(r.u64()?),
            sm: r.u32()?,
            svpn: r.u64()?,
            pc: r.u64()?,
            is_store: r.bool()?,
            need_l2: r.bool()?,
        },
        11 => Ev::L2TlbResult { sm: r.u32()?, svpn: r.u64()? },
        12 => Ev::WalkL2 { walk: WalkId(r.u64()?), pa: r.u64()? },
        13 => Ev::L2Req { sm: r.u32()?, pa: r.u64()? },
        14 => Ev::L2Access { sm: r.u32()?, pa: r.u64()? },
        15 => Ev::DramDone { pa: r.u64()? },
        16 => Ev::AccelTrain { sm: r.u32()?, pc: r.u64()?, svpn: r.u64()?, ppn: r.u64()? },
        17 => Ev::EafResolve { sm: r.u32()?, svpn: r.u64()?, ppn: r.u64()? },
        18 => Ev::WritebackL2 { pa: r.u64()? },
        19 => Ev::RapidResolve { sm: r.u32()?, svpn: r.u64()?, ppn: r.u64()? },
        _ => return Err(CkptError::Corrupt("unknown calendar event tag")),
    })
}

/// Encodes the content metadata riding an [`Ev::L1Fill`].
fn enc_sector_meta(w: &mut Writer, meta: &FetchedSector) {
    w.bool(meta.compressed);
    match meta.embedded {
        None => w.bool(false),
        Some(m) => {
            w.bool(true);
            w.u64(m.vpn.0);
            w.u32(m.asid as u32);
        }
    }
}

/// Decodes metadata written by [`enc_sector_meta`].
fn dec_sector_meta(r: &mut Reader<'_>) -> Result<FetchedSector, CkptError> {
    Ok(FetchedSector {
        compressed: r.bool()?,
        embedded: if r.bool()? {
            Some(PageMeta { vpn: Vpn(r.u64()?), asid: r.u32()? as u16 })
        } else {
            None
        },
    })
}

/// Encodes one L2-MSHR waiter for a checkpoint.
fn enc_l2_waiter(w: &mut Writer, wt: &L2Waiter) {
    match *wt {
        L2Waiter::Sector { sm } => {
            w.u8(0);
            w.u32(sm);
        }
        L2Waiter::Walk { walk } => {
            w.u8(1);
            w.u64(walk.0);
        }
    }
}

/// Decodes one L2-MSHR waiter written by [`enc_l2_waiter`].
fn dec_l2_waiter(r: &mut Reader<'_>) -> Result<L2Waiter, CkptError> {
    Ok(match r.u8()? {
        0 => L2Waiter::Sector { sm: r.u32()? },
        1 => L2Waiter::Walk { walk: WalkId(r.u64()?) },
        _ => return Err(CkptError::Corrupt("unknown L2 waiter tag")),
    })
}

/// Encodes one in-flight request for a checkpoint, every field in
/// declaration order. The probe-attribution fields exist only under the
/// `probes` feature; the checkpoint header's feature flag guarantees the
/// saving and restoring builds agree on the layout.
fn enc_req(w: &mut Writer, req: &MemReq) {
    w.u32(req.sm);
    w.u32(req.warp);
    w.u64(req.pc);
    w.u64(req.vaddr.0);
    w.u64(req.issued);
    w.opt_u64(req.real_ppn.map(|p| p.0));
    w.bool(req.translation_done);
    w.bool(req.completed);
    w.bool(req.is_store);
    match req.spec {
        None => w.bool(false),
        Some(s) => {
            w.bool(true);
            w.u64(s.ppn.0);
            w.bool(s.ideal);
            w.bool(s.killed);
            w.bool(s.fetch_registered);
        }
    }
    w.u32(req.refs);
    #[cfg(feature = "probes")]
    {
        w.u8(req.phase as u8);
        w.u64(req.phase_entered);
        w.u64(req.phase_acc);
        w.u64(req.spec_started);
    }
}

/// Decodes one in-flight request written by [`enc_req`].
fn dec_req(r: &mut Reader<'_>) -> Result<MemReq, CkptError> {
    Ok(MemReq {
        sm: r.u32()?,
        warp: r.u32()?,
        pc: r.u64()?,
        vaddr: VirtAddr(r.u64()?),
        issued: r.u64()?,
        real_ppn: r.opt_u64()?.map(Ppn),
        translation_done: r.bool()?,
        completed: r.bool()?,
        is_store: r.bool()?,
        spec: if r.bool()? {
            Some(SpecState {
                ppn: Ppn(r.u64()?),
                ideal: r.bool()?,
                killed: r.bool()?,
                fetch_registered: r.bool()?,
            })
        } else {
            None
        },
        refs: r.u32()?,
        #[cfg(feature = "probes")]
        phase: {
            let idx = r.u8()? as usize;
            *Phase::ALL
                .get(idx)
                .ok_or(CkptError::Corrupt("request phase tag out of range"))?
        },
        #[cfg(feature = "probes")]
        phase_entered: r.u64()?,
        #[cfg(feature = "probes")]
        phase_acc: r.u64()?,
        #[cfg(feature = "probes")]
        spec_started: r.u64()?,
    })
}

/// The tenant an SM belongs to (contiguous spatial partitioning).
fn tenant_of_sm(cfg: &GpuConfig, sm: u32) -> usize {
    sm as usize * cfg.tenants / cfg.num_sms
}

fn asid_of(tenant: usize) -> u16 {
    tenant as u16 + 1
}

/// Folds the tenant into a TLB/walk key (ASID tagging).
fn salt(tenant: usize, vpn: Vpn) -> u64 {
    debug_assert!(vpn.0 < 1 << ASID_SHIFT);
    vpn.0 | ((tenant as u64) << ASID_SHIFT)
}

fn unsalt(svpn: u64) -> Vpn {
    Vpn(svpn & ((1 << ASID_SHIFT) - 1))
}

fn tenant_of_svpn(svpn: u64) -> usize {
    (svpn >> ASID_SHIFT) as usize
}

/// Salts a contiguity run so its reach stays within the tenant's key
/// space.
fn salt_run(tenant: usize, run: Option<ContigRun>) -> Option<ContigRun> {
    run.map(|r| ContigRun { start_vpn: salt(tenant, Vpn(r.start_vpn)), ..r })
}

// ----------------------------------------------------------------------
// Shard lane: per-shard state + handlers
// ----------------------------------------------------------------------

/// A contiguous SM range and everything those SMs own exclusively: warp
/// state, L1 TLBs/caches/ports/MSHRs, the requests they originate (a
/// [`ReqBank`] partition), an event queue, and per-SM sequence stripes.
/// During Phase A of a window, lanes are advanced independently —
/// possibly on worker threads — and communicate with the shared
/// hierarchy only through their outboxes.
struct ShardLane<'a> {
    cfg: GpuConfig,
    shard: usize,
    /// First SM owned by this lane (global SM id); `l()` localizes.
    sm_lo: u32,
    /// Striping modulus for sequence numbers: one stripe per SM plus one
    /// for the shared actor, so `(time, seq)` orders identically for
    /// every shard packing.
    actors: u64,
    trace_req: Option<u32>,
    q: EventQueue<Ev>,
    /// Per-owned-SM sequence counters (`seq = c * actors + sm`).
    seqs: Vec<u64>,
    sms: Vec<SmState>,
    l1_tlbs: Vec<Box<dyn TlbModel>>,
    l1_tlb_ports: Vec<Ports>,
    l1_caches: Vec<SectorCache>,
    l1_cache_ports: Vec<Ports>,
    reqs: ReqBank<MemReq>,
    l1_tlb_mshrs: Vec<MshrFile<u64, ReqId>>,
    // Per-SM retry queues: the outer Vec is fixed at the owned-SM count
    // and the inner ones are drained every retry, so this never becomes
    // a per-element hot structure. lint:allow(vec-vec)
    tlb_overflow: Vec<Vec<ReqId>>,
    l1_mshrs: Vec<MshrFile<u64, ReqId>>,
    l1_mshr_overflow: Vec<std::collections::VecDeque<ReqId>>,
    /// Requests that found a present-but-unguaranteed sector and wait for
    /// its validation outcome instead of duplicating the fetch.
    unguaranteed_waiters: FxHashMap<(u32, u64), Vec<ReqId>>,
    warp_outstanding: Vec<u32>,
    warp_issue_time: Vec<Cycle>,
    program: Box<dyn WarpProgram + 'a>,
    stats: Stats,
    /// Events bound for the shared lane, applied at the next barrier in
    /// lane order. `(time, seq, event)` — the sequence is assigned here,
    /// by the emitting SM's stripe, so delivery order is packing-free.
    outbox: Vec<(Cycle, u64, Ev)>,
    /// Total events this lane has pushed through its outbox.
    exchange_out: u64,
    /// Scratch for the coalescer: reused across warp instructions so the
    /// issue loop does not allocate in steady state.
    coalesce_buf: Vec<VirtAddr>,
    /// Scratch key list for shootdown wakes (reused, see
    /// `wake_all_unguaranteed`).
    scratch_keys: Vec<u64>,
    /// Distinct cycles at which this lane processed events in the
    /// current window (consecutively deduped; merged across lanes at
    /// each barrier for global idle accounting).
    times: Vec<Cycle>,
    /// Deferred probe records, replayed into the engine sink in lane
    /// order at `finish` (worker threads cannot share the boxed sink).
    #[cfg(feature = "probes")]
    log: crate::probe::RecordLog,
}

impl<'a> ShardLane<'a> {
    /// Localizes a global SM id into this lane's arrays.
    #[inline]
    fn l(&self, sm: u32) -> usize {
        debug_assert!(sm >= self.sm_lo, "SM {sm} not owned by shard {}", self.shard);
        (sm - self.sm_lo) as usize
    }

    /// Next sequence number on `sm`'s stripe.
    #[inline]
    fn next_seq(&mut self, sm: u32) -> u64 {
        let li = (sm - self.sm_lo) as usize;
        let c = self.seqs[li];
        self.seqs[li] += 1;
        c * self.actors + sm as u64
    }

    /// Discards one sequence number on `sm`'s stripe. The inline fast
    /// path burns the seq its evented twin would have used for each
    /// `FastComplete`, keeping the two modes' sequence streams — and
    /// digests — identical.
    #[inline]
    fn burn_seq(&mut self, sm: u32) {
        self.seqs[(sm - self.sm_lo) as usize] += 1;
    }

    /// Schedules a lane-internal event.
    fn sched(&mut self, sm: u32, t: Cycle, ev: Ev) {
        let seq = self.next_seq(sm);
        self.q.schedule_at_seq(t, seq, ev);
    }

    /// Emits an event to the shared lane (applied at the next barrier).
    fn send(&mut self, sm: u32, t: Cycle, ev: Ev) {
        let seq = self.next_seq(sm);
        self.outbox.push((t, seq, ev));
        self.exchange_out += 1;
    }

    fn trace(&self, id: ReqId, msg: &str) {
        if self.trace_req == Some(id.slot()) {
            eprintln!("[req {} @ {}] {msg}", id.slot(), self.q.now());
        }
    }

    /// The live request behind `id`.
    ///
    /// Panics on a stale id: a request was freed while a copy of its id
    /// was still stored somewhere — exactly the bug the reference counts
    /// exist to prevent, so it must never be survivable.
    fn req(&self, id: ReqId) -> &MemReq {
        self.reqs.get(id).expect("stale ReqId: request freed while a reference was still live")
    }

    fn req_mut(&mut self, id: ReqId) -> &mut MemReq {
        self.reqs.get_mut(id).expect("stale ReqId: request freed while a reference was still live")
    }

    /// Records that a copy of `id` was stored — in a calendar event, an
    /// MSHR waiter list, or an overflow queue. Every stored copy pins the
    /// slab slot until [`Self::req_unref`] consumes it.
    fn req_ref(&mut self, id: ReqId) {
        self.req_mut(id).refs += 1;
    }

    /// Consumes one stored copy of `id`, freeing (and recycling) the slab
    /// slot once the request is completed and no copies remain.
    fn req_unref(&mut self, id: ReqId) {
        let r = self.req_mut(id);
        crate::debug_invariant!(r.refs > 0, "unbalanced request unref");
        r.refs -= 1;
        if r.refs == 0 && r.completed {
            self.reqs.remove(id);
        }
    }

    fn warp_slot(&self, sm: u32, warp: u32) -> usize {
        self.l(sm) * self.cfg.warps_per_sm + warp as usize
    }

    fn tenant(&self, sm: u32) -> usize {
        tenant_of_sm(&self.cfg, sm)
    }

    // Probe helpers (`probes` feature): identical to their pre-shard
    // engine twins, except spans land in the lane's deferred log.

    /// Moves `id` into phase `next`, attributing the cycles since the
    /// last transition to the phase being left and emitting it as a span
    /// when a sink is attached. Re-entering the current phase is
    /// harmless: it attributes and re-anchors.
    #[cfg(feature = "probes")]
    fn probe_phase(&mut self, now: Cycle, id: ReqId, next: Phase) {
        let (sm, warp, prev, entered) = {
            let r = self.req_mut(id);
            let prev = r.phase;
            let entered = r.phase_entered;
            r.phase_acc += now - entered;
            r.phase = next;
            r.phase_entered = now;
            (r.sm, r.warp, prev, entered)
        };
        self.stats.latency_breakdown.add(prev, now - entered);
        if self.log.is_active() && self.log.sampled(warp) && now > entered {
            self.log.span(
                SpanPoint::Phase(prev),
                Track::sm_warp(sm, warp),
                entered,
                now,
                id.slot() as u64,
            );
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_phase(&mut self, _now: Cycle, _id: ReqId, _next: Phase) {}

    /// Final attribution for a completing request: charges the tail to
    /// the current phase, counts the sector, and checks per-request
    /// conservation — the telescoped phase sums must equal the request's
    /// end-to-end latency exactly.
    #[cfg(feature = "probes")]
    fn probe_complete(&mut self, now: Cycle, id: ReqId) {
        let (sm, warp, phase, entered) = {
            let r = self.req_mut(id);
            r.phase_acc += now - r.phase_entered;
            (r.sm, r.warp, r.phase, r.phase_entered)
        };
        self.stats.latency_breakdown.add(phase, now - entered);
        self.stats.latency_breakdown.sectors += 1;
        #[cfg(feature = "invariants")]
        {
            let r = self.req(id);
            crate::debug_invariant!(
                r.phase_acc == now - r.issued,
                "phase attribution lost cycles: attributed {}, end-to-end {}",
                r.phase_acc,
                now - r.issued
            );
        }
        if self.log.is_active() && self.log.sampled(warp) && now > entered {
            self.log.span(
                SpanPoint::Phase(phase),
                Track::sm_warp(sm, warp),
                entered,
                now,
                id.slot() as u64,
            );
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_complete(&mut self, _now: Cycle, _id: ReqId) {}

    /// Emits a zero-duration component event. Only called from inside
    /// `probes`-gated accounting blocks, so no cfg-off twin exists.
    #[cfg(feature = "probes")]
    fn probe_instant(&mut self, point: SpanPoint, track: Track, at: Cycle, arg: u64) {
        self.log.instant(point, track, at, arg);
    }

    /// Records a structural-hazard wait (port arbitration) in the
    /// queue-latency histogram. Zero waits are skipped — the histogram
    /// answers "when a request queued, for how long?".
    #[cfg(feature = "probes")]
    fn probe_queue_wait(&mut self, wait: u64) {
        if wait > 0 {
            self.stats.queue_latency_hist.add(wait);
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_queue_wait(&mut self, _wait: u64) {}

    /// Drains this lane's queue up to (strictly before) `horizon`,
    /// touching only lane-owned state plus the immutable speculation
    /// policy. Returns the number of events processed.
    fn drain(&mut self, horizon: Cycle, accel: &dyn TranslationAccel) -> u64 {
        let mut n = 0;
        while let Some((now, ev)) = self.q.pop_before(horizon) {
            n += 1;
            if self.times.last() != Some(&now) {
                self.times.push(now);
            }
            self.handle(now, ev, accel, None);
        }
        self.stats.events_processed += n;
        n
    }

    /// Single-lane drain for ideal-TLB mode, which resolves translations
    /// synchronously against the shared lane's page tables. Only runs
    /// with `shards == 1, workers == 1` (the engine clamps), so handing
    /// the shared lane in mutably is safe and cheap.
    fn drain_ideal(
        &mut self,
        horizon: Cycle,
        shared: &mut SharedLane<'_>,
        accel: &dyn TranslationAccel,
    ) -> u64 {
        let mut n = 0;
        while let Some((now, ev)) = self.q.pop_before(horizon) {
            n += 1;
            if self.times.last() != Some(&now) {
                self.times.push(now);
            }
            self.handle(now, ev, accel, Some(shared));
        }
        self.stats.events_processed += n;
        n
    }

    /// Dispatches one shard-targeted event. `ideal` is `Some` only in
    /// ideal-TLB mode (see [`Self::drain_ideal`]).
    fn handle(
        &mut self,
        now: Cycle,
        ev: Ev,
        accel: &dyn TranslationAccel,
        ideal: Option<&mut SharedLane<'_>>,
    ) {
        match ev {
            Ev::WarpIssue { sm, warp } => self.warp_issue(now, sm, warp, ideal),
            // Request-carrying events hold one pin on their request for
            // the lifetime of the event; it is consumed here, after the
            // handler, so the request stays live throughout.
            Ev::L1TlbResult { req } => {
                self.l1_tlb_result(now, req);
                self.req_unref(req);
            }
            Ev::SpecL1Result { req } => {
                self.spec_l1_result(now, req, accel);
                self.req_unref(req);
            }
            Ev::L1Result { req } => {
                self.l1_result(now, req);
                self.req_unref(req);
            }
            Ev::L1Fill { sm, pa, meta } => self.l1_fill(now, sm, PhysAddr(pa), meta, accel),
            // RemoteDone pins its request only in ideal-TLB mode (where
            // no MSHR waiter holds it); the handler balances the books.
            Ev::RemoteDone { req } => self.remote_done(now, req),
            Ev::FastComplete { sm, warp, last } => self.fast_complete(now, sm, warp, last),
            // Token event: never pinned, the handler tolerates a freed id.
            Ev::SpecDispatch { req, ppn, ideal } => self.spec_dispatch(now, req, Ppn(ppn), ideal),
            Ev::ResolveSm { sm, svpn, ppn, pages, run, via_eaf } => {
                self.resolve_sm(now, sm, svpn, Ppn(ppn), pages, run, via_eaf, accel);
            }
            Ev::Shootdown { sm, first_svpn, pages, frames } => {
                self.shootdown(now, sm, first_svpn, pages, &frames);
            }
            Ev::TlbMiss { .. }
            | Ev::L2TlbResult { .. }
            | Ev::WalkL2 { .. }
            | Ev::L2Req { .. }
            | Ev::L2Access { .. }
            | Ev::DramDone { .. }
            | Ev::AccelTrain { .. }
            | Ev::EafResolve { .. }
            | Ev::RapidResolve { .. }
            | Ev::WritebackL2 { .. } => {
                // Only [`target_shard`]-routable events may sit in a lane
                // calendar; anything else is unrecoverable cross-domain
                // corruption. lint:allow(hot-path-panic)
                unreachable!("shared-domain event in a shard lane")
            }
        }
    }
}

// ----------------------------------------------------------------------
// Shared lane: L2/walker/DRAM/UVM state + handlers
// ----------------------------------------------------------------------

/// Everything below the per-SM structures: L2 TLB and cache, the
/// page-walk system, DRAM, the UVM managers, and the plugged policies.
/// Advanced only by the coordinator thread, between lane windows.
struct SharedLane<'a> {
    cfg: GpuConfig,
    /// Lookahead window `W` — the shard→shared/shared→shard edge delays.
    window: Cycle,
    actors: u64,
    trace_req: Option<u32>,
    q: EventQueue<Ev>,
    /// Sequence counter for the shared actor's stripe
    /// (`seq = c * actors + (actors - 1)`).
    seq: u64,
    l2_tlb: Box<dyn TlbModel>,
    l2_tlb_ports: Ports,
    l2_cache: SectorCache,
    l2_cache_ports: Ports,
    dram: Dram,
    walks: PageWalkSystem,
    /// One UVM manager per tenant (index = tenant id).
    uvms: Vec<Uvm>,
    accel: Box<dyn TranslationAccel>,
    compression: Box<dyn SectorCompression + 'a>,
    l2_tlb_mshr: MshrFile<u64, u32>,
    l2_tlb_overflow: Vec<(u32, u64)>,
    l2_mshr: MshrFile<u64, L2Waiter>,
    l2_mshr_overflow: std::collections::VecDeque<(u64, L2Waiter)>,
    walk_of_vpn: FxHashMap<u64, WalkId>,
    vpn_of_walk: FxHashMap<WalkId, Vpn>,
    walk_started: FxHashMap<u64, Cycle>,
    pw_overflow: std::collections::VecDeque<u64>,
    /// Mirror of which `(sm, salted vpn)` translations are in flight on
    /// the shared side. The L1 TLB MSHRs live in the lanes, so this set
    /// is what dedups L2 lookups and what `ResolveSm` emission clears.
    pending_resolve: FxHashSet<(u32, u64)>,
    stats: Stats,
    /// Events bound for shard lanes, routed at the end of Phase B.
    outbox: Vec<(Cycle, u64, Ev)>,
    exchange_out: u64,
    times: Vec<Cycle>,
    #[cfg(feature = "probes")]
    log: crate::probe::RecordLog,
}

impl<'a> SharedLane<'a> {
    /// Next sequence number on the shared actor's stripe.
    #[inline]
    fn next_seq(&mut self) -> u64 {
        let c = self.seq;
        self.seq += 1;
        c * self.actors + (self.actors - 1)
    }

    /// Schedules a shared-internal event.
    fn sched(&mut self, t: Cycle, ev: Ev) {
        let seq = self.next_seq();
        self.q.schedule_at_seq(t, seq, ev);
    }

    /// Emits an event to a shard lane (routed at the end of Phase B).
    fn send(&mut self, t: Cycle, ev: Ev) {
        let seq = self.next_seq();
        self.outbox.push((t, seq, ev));
        self.exchange_out += 1;
    }

    fn trace_id(&self, id: ReqId, msg: &str) {
        if self.trace_req == Some(id.slot()) {
            eprintln!("[req {} @ {}] {msg}", id.slot(), self.q.now());
        }
    }

    fn tenant(&self, sm: u32) -> usize {
        tenant_of_sm(&self.cfg, sm)
    }

    /// Emits a component-side complete span (never warp-sampled).
    #[cfg(feature = "probes")]
    fn probe_span(&mut self, point: SpanPoint, track: Track, start: Cycle, end: Cycle, arg: u64) {
        self.log.span(point, track, start, end, arg);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_span(
        &mut self,
        _point: SpanPoint,
        _track: Track,
        _start: Cycle,
        _end: Cycle,
        _arg: u64,
    ) {
    }

    /// Emits a zero-duration component event.
    #[cfg(feature = "probes")]
    fn probe_instant(&mut self, point: SpanPoint, track: Track, at: Cycle, arg: u64) {
        self.log.instant(point, track, at, arg);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_instant(&mut self, _point: SpanPoint, _track: Track, _at: Cycle, _arg: u64) {}

    /// Emits a counter sample on a component track.
    #[cfg(feature = "probes")]
    fn probe_counter(&mut self, name: &'static str, track: Track, at: Cycle, value: u64) {
        self.log.counter(name, track, at, value);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_counter(&mut self, _name: &'static str, _track: Track, _at: Cycle, _value: u64) {}

    /// Records a structural-hazard wait (port arbitration or walk-buffer
    /// queueing) in the queue-latency histogram.
    #[cfg(feature = "probes")]
    fn probe_queue_wait(&mut self, wait: u64) {
        if wait > 0 {
            self.stats.queue_latency_hist.add(wait);
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_queue_wait(&mut self, _wait: u64) {}

    /// Drains the shared queue up to (strictly before) `horizon`.
    /// Returns the number of events processed.
    fn drain(&mut self, horizon: Cycle) -> u64 {
        let mut n = 0;
        while let Some((now, ev)) = self.q.pop_before(horizon) {
            n += 1;
            if self.times.last() != Some(&now) {
                self.times.push(now);
            }
            self.handle(now, ev);
        }
        self.stats.events_processed += n;
        n
    }

    /// Dispatches one shared-domain event.
    fn handle(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::TlbMiss { req, sm, svpn, pc, is_store, need_l2 } => {
                self.tlb_miss(now, req, sm, svpn, pc, is_store, need_l2);
            }
            Ev::L2TlbResult { sm, svpn } => self.l2_tlb_result(now, sm, svpn),
            Ev::WalkL2 { walk, pa } => self.walk_l2(now, walk, PhysAddr(pa)),
            Ev::L2Req { sm, pa } => self.l2_req(now, sm, PhysAddr(pa)),
            Ev::L2Access { sm, pa } => self.l2_access(now, sm, PhysAddr(pa)),
            Ev::DramDone { pa } => self.dram_done(now, PhysAddr(pa)),
            Ev::AccelTrain { sm, pc, svpn, ppn } => {
                self.accel.on_translation_resolved(sm as usize, pc, unsalt(svpn), Ppn(ppn));
            }
            Ev::EafResolve { sm, svpn, ppn } => self.eaf_resolve(now, sm, svpn, Ppn(ppn)),
            Ev::RapidResolve { sm, svpn, ppn } => self.rapid_resolve(now, sm, svpn, Ppn(ppn)),
            Ev::WritebackL2 { pa } => self.writeback_to_l2(now, PhysAddr(pa)),
            Ev::WarpIssue { .. }
            | Ev::L1TlbResult { .. }
            | Ev::SpecL1Result { .. }
            | Ev::L1Result { .. }
            | Ev::L1Fill { .. }
            | Ev::RemoteDone { .. }
            | Ev::FastComplete { .. }
            | Ev::SpecDispatch { .. }
            | Ev::ResolveSm { .. }
            | Ev::Shootdown { .. } => {
                // Lane-owned events never enter the shared calendar (the
                // exchange routes them at the barrier); this is
                // unrecoverable cross-domain corruption. lint:allow(hot-path-panic)
                unreachable!("shard-domain event in the shared lane")
            }
        }
    }
}

impl<'a> ShardLane<'a> {
    // ------------------------------------------------------------------
    // Warp issue
    // ------------------------------------------------------------------

    fn warp_issue(&mut self, now: Cycle, sm: u32, warp: u32, mut ideal: Option<&mut SharedLane<'_>>) {
        let li = self.l(sm);
        let issue_free = self.sms[li].issue_free_at;
        if issue_free > now {
            self.sched(sm, issue_free, Ev::WarpIssue { sm, warp });
            return;
        }
        match self.program.next_op(sm as usize, warp as usize) {
            None => {
                self.sms[li].set_warp(warp as usize, WarpState::Retired, now);
            }
            Some(WarpOp::Compute { cycles }) => {
                self.stats.instructions += 1;
                self.sms[li].issue_free_at = now + 1;
                self.sms[li].set_warp(warp as usize, WarpState::Computing, now);
                self.sched(sm, now + cycles.max(1), Ev::WarpIssue { sm, warp });
            }
            Some(op @ (WarpOp::Load { .. } | WarpOp::Store { .. })) => {
                let (pc, addrs, is_store) = match op {
                    WarpOp::Load { pc, addrs } => (pc, addrs, false),
                    WarpOp::Store { pc, addrs } => (pc, addrs, true),
                    // Pattern-restricted by the outer `op @ (Load | Store)`
                    // binding; no runtime path reaches it. lint:allow(hot-path-panic)
                    WarpOp::Compute { .. } => unreachable!("matched above"),
                };
                self.stats.instructions += 1;
                if is_store {
                    self.stats.stores += 1;
                } else {
                    self.stats.loads += 1;
                }
                self.sms[li].issue_free_at = now + 1;
                let mut sectors = std::mem::take(&mut self.coalesce_buf);
                coalesce_into(&addrs, &mut sectors);
                let slot = self.warp_slot(sm, warp);
                self.warp_outstanding[slot] = sectors.len() as u32;
                self.warp_issue_time[slot] = now;
                self.sms[li].set_warp(
                    warp as usize,
                    WarpState::WaitingMemory { outstanding: sectors.len() as u32 },
                    now,
                );
                if !sectors.is_empty() && self.fast_path_classify(now, sm, &sectors, ideal.as_deref())
                {
                    // Every sector is a guaranteed L1 TLB + L1 data hit
                    // and the ports have a free slot this cycle: resolve
                    // the whole instruction at issue with the Table II
                    // latency arithmetic instead of per-sector events.
                    self.fast_path_commit(now, sm, warp, is_store, &sectors, ideal);
                    self.warp_outstanding[slot] = 0;
                } else {
                    for &vaddr in &sectors {
                        self.stats.sector_requests += 1;
                        let id = self.reqs.insert(MemReq {
                            sm,
                            warp,
                            pc,
                            vaddr,
                            issued: now,
                            real_ppn: None,
                            translation_done: false,
                            completed: false,
                            is_store,
                            spec: None,
                            refs: 0,
                            #[cfg(feature = "probes")]
                            phase: Phase::Issue,
                            #[cfg(feature = "probes")]
                            phase_entered: now,
                            #[cfg(feature = "probes")]
                            phase_acc: 0,
                            #[cfg(feature = "probes")]
                            spec_started: 0,
                        });
                        self.start_translation(now, id, ideal.as_deref_mut());
                    }
                }
                self.coalesce_buf = sectors;
            }
        }
    }

    /// Decides whether a warp memory instruction can be resolved by the
    /// inline hit fast path: every coalesced sector must hit the L1 TLB
    /// on a probe (under `ideal_tlb`, be resident and mapped instead),
    /// hit the L1 data cache with a *guaranteed* sector, and each
    /// required port group must have a free slot this cycle. Strictly
    /// read-only — when any sector fails, the warp takes the event path
    /// with no state disturbed. All-or-nothing per warp, so a warp's
    /// sectors never straddle the two mechanisms.
    ///
    /// The pre-shard engine also required residency in the non-ideal
    /// case; a lane cannot see the UVM maps, so a stale-TLB window of at
    /// most `W` cycles exists between an eviction and its `Shootdown`
    /// arriving. The TLB and cache entries are invalidated together by
    /// that shootdown, so a stale fast-path hit reads data that is still
    /// physically present — harmless, and identical for every shard
    /// packing.
    fn fast_path_classify(
        &self,
        now: Cycle,
        sm: u32,
        sectors: &[VirtAddr],
        ideal: Option<&SharedLane<'_>>,
    ) -> bool {
        let tenant = self.tenant(sm);
        let li = self.l(sm);
        // Structural hazards: a fully backed-up port means the grants
        // would land in future cycles; leave that to the event path.
        if !self.cfg.ideal_tlb && self.l1_tlb_ports[li].peek_grant(now) != now {
            return false;
        }
        if self.l1_cache_ports[li].peek_grant(now) != now {
            return false;
        }
        for &vaddr in sectors {
            let vpn = vaddr.vpn();
            let ppn = if let Some(sh) = ideal {
                // lint:exempt(shard-reachability): ideal-TLB mode is
                // clamped to one lane, one worker; the shared lane is
                // handed in synchronously.
                if !sh.uvms[tenant].is_resident(vpn) {
                    return false;
                }
                match sh.uvms[tenant].page_table.translate(vpn) {
                    Some(t) => t.ppn,
                    None => return false,
                }
            } else {
                match self.l1_tlbs[li].probe(Vpn(salt(tenant, vpn))) {
                    Some(Some(hit)) => hit.ppn,
                    // A probe miss — or a model that cannot preview its
                    // lookups (the coalescing CoLT/SnakeByte designs) —
                    // takes the event path.
                    _ => return false,
                }
            };
            if !matches!(self.l1_caches[li].peek_probe(translate(vaddr, ppn)), Probe::Hit) {
                return false;
            }
        }
        true
    }

    /// Commits a classified fast-path warp: performs, at issue time, the
    /// state updates the event path spreads across its TLB-result and
    /// L1-result events — TLB LRU bump and stats, port grants, cache
    /// LRU/dirty bits — and computes each sector's completion cycle from
    /// the Table II latencies. With `inline_hit_path` on, the latency
    /// bookkeeping happens inline and the calendar carries only the warp
    /// wake-up; with it off, the identical bookkeeping rides per-sector
    /// [`Ev::FastComplete`] events. The two must be digest-identical —
    /// that is the CI differential gate's whole claim. The inline mode
    /// burns one sequence number per sector (the seq its evented twin
    /// would consume), so the two modes' event orderings stay aligned.
    fn fast_path_commit(
        &mut self,
        now: Cycle,
        sm: u32,
        warp: u32,
        is_store: bool,
        sectors: &[VirtAddr],
        mut ideal: Option<&mut SharedLane<'_>>,
    ) {
        let tenant = self.tenant(sm);
        let li = self.l(sm);
        let tlb_lat = self.cfg.l1_tlb.latency;
        let cache_lat = self.cfg.l1_cache.latency;
        self.stats.fast_path_hits += 1;
        self.stats.fast_path_sectors += sectors.len() as u64;
        #[cfg(feature = "probes")]
        let emit_span = self.log.is_active() && self.log.sampled(warp);
        #[cfg(feature = "probes")]
        if emit_span {
            self.log.span_enter(SpanPoint::FastPath, Track::sm_warp(sm, warp), now);
        }
        let mut t_done = now;
        for (i, &vaddr) in sectors.iter().enumerate() {
            self.stats.sector_requests += 1;
            let vpn = vaddr.vpn();
            let (ppn, done) = if let Some(sh) = ideal.as_deref_mut() {
                // lint:exempt(shard-reachability): ideal-TLB mode is
                // clamped to one lane, one worker.
                let remote = sh.touch_page(now, tenant, vpn);
                debug_assert!(!remote, "fast path classified a non-resident page as a hit");
                let t = sh.uvms[tenant]
                    .page_table
                    .translate(vpn)
                    .expect("fast path classified an unmapped page as resident");
                (t.ppn, self.l1_cache_ports[li].grant(now))
            } else {
                self.stats.l1_tlb_lookups += 1;
                let g_tlb = self.l1_tlb_ports[li].grant(now);
                let svpn = salt(tenant, vpn);
                let hit = self.l1_tlbs[li]
                    .lookup(Vpn(svpn))
                    .expect("fast path classified an L1 TLB miss as a hit");
                self.stats.l1_tlb_hits += 1;
                self.record_coverage(hit.coverage_pages);
                let g_cache = self.l1_cache_ports[li].grant(now);
                let done = match self.cfg.l1_arrangement {
                    // VIPT: translation and data lookup overlap from
                    // their respective port grants.
                    crate::config::CacheArrangement::Vipt => {
                        (g_tlb + tlb_lat).max(g_cache + cache_lat)
                    }
                    // PIPT: the data access needs both its port slot and
                    // the finished translation before it can start.
                    crate::config::CacheArrangement::Pipt => {
                        (g_tlb + tlb_lat).max(g_cache) + cache_lat
                    }
                };
                (hit.ppn, done)
            };
            let pa = translate(vaddr, ppn);
            self.stats.l1d_lookups += 1;
            let probe = self.l1_caches[li].probe(pa);
            debug_assert!(
                matches!(probe, Probe::Hit),
                "fast path classified an L1 data miss as a hit: {probe:?}"
            );
            self.stats.l1d_hits += 1;
            if is_store {
                self.l1_caches[li].mark_dirty(pa);
            }
            if self.cfg.inline_hit_path {
                self.stats.sector_latency.add(done - now);
                self.stats.sector_latency_hist.add(done - now);
                // Fast-path sectors allocate no request, so they feed the
                // breakdown here: the whole latency is data-side (Fetch).
                // The evented twin adds the identical value at its
                // FastComplete event — commutative, digest-safe.
                #[cfg(feature = "probes")]
                {
                    self.stats.latency_breakdown.add(Phase::Fetch, done - now);
                    self.stats.latency_breakdown.sectors += 1;
                }
                // Seq-stream parity with the evented twin's FastComplete.
                self.burn_seq(sm);
            } else {
                self.sched(sm, done, Ev::FastComplete { sm, warp, last: i + 1 == sectors.len() });
            }
            // Port grants are non-decreasing across the loop, so the last
            // sector carries the warp's completion cycle.
            t_done = t_done.max(done);
        }
        if self.cfg.inline_hit_path {
            self.stats.load_latency.add(t_done - now);
        }
        #[cfg(feature = "probes")]
        if emit_span {
            self.log.span_exit(SpanPoint::FastPath, Track::sm_warp(sm, warp), t_done);
        }
        // The warp re-issues one cycle after its last sector completes —
        // the same wake point `complete_req` produces. Scheduled here, at
        // issue, in *both* modes, so the wake-up occupies the identical
        // calendar position whichever mode does the bookkeeping.
        self.sched(sm, t_done + 1, Ev::WarpIssue { sm, warp });
    }

    /// Evented twin of the inline fast-path latency bookkeeping
    /// (`inline_hit_path` off): credits one sector's latency at its
    /// computed completion cycle, and the whole warp's at the last
    /// sector. All the adds are commutative integer sums, so running
    /// them here instead of inline cannot change `Stats::digest()`.
    fn fast_complete(&mut self, now: Cycle, sm: u32, warp: u32, last: bool) {
        let issued = self.warp_issue_time[self.warp_slot(sm, warp)];
        self.stats.sector_latency.add(now - issued);
        self.stats.sector_latency_hist.add(now - issued);
        #[cfg(feature = "probes")]
        {
            self.stats.latency_breakdown.add(Phase::Fetch, now - issued);
            self.stats.latency_breakdown.sectors += 1;
        }
        if last {
            self.stats.load_latency.add(now - issued);
        }
    }

    fn start_translation(&mut self, now: Cycle, id: ReqId, ideal: Option<&mut SharedLane<'_>>) {
        let (vpn, sm) = {
            let r = self.req(id);
            (r.vpn(), r.sm)
        };
        let tenant = self.tenant(sm);
        if let Some(sh) = ideal {
            // lint:exempt(shard-reachability): ideal-TLB mode is clamped
            // to one lane, one worker; translations resolve synchronously
            // against the shared page tables.
            if sh.touch_page(now, tenant, vpn) {
                // Cold page below the migration threshold: the GMMU
                // faults and the access is serviced from host memory over
                // the interconnect. No GPU TLB entry is installed and MOD
                // is not trained (the paper restricts updates to
                // GPU-mapped regions).
                sh.stats.remote_accesses += 1;
                self.probe_phase(now, id, Phase::Fetch);
                sh.probe_span(
                    SpanPoint::Remote,
                    Track::uvm(tenant as u32),
                    now,
                    now + self.cfg.uvm.remote_latency,
                    id.slot() as u64,
                );
                self.req_ref(id);
                self.sched(sm, now + self.cfg.uvm.remote_latency, Ev::RemoteDone { req: id });
                return;
            }
            let t = sh.uvms[tenant].page_table.translate(vpn).expect("page just touched");
            let r = self.req_mut(id);
            r.real_ppn = Some(t.ppn);
            r.translation_done = true;
            self.probe_phase(now, id, Phase::Fetch);
            self.schedule_l1_access(now, id, 0);
            return;
        }
        let li = self.l(sm);
        let grant = self.l1_tlb_ports[li].grant(now);
        self.probe_phase(now, id, Phase::Tlb);
        self.probe_queue_wait(grant - now);
        self.req_ref(id);
        self.sched(sm, grant + self.cfg.l1_tlb.latency, Ev::L1TlbResult { req: id });
    }

    // ------------------------------------------------------------------
    // Translation path (lane side)
    // ------------------------------------------------------------------

    fn l1_tlb_result(&mut self, now: Cycle, id: ReqId) {
        let (sm, vpn) = {
            let r = self.req(id);
            (r.sm, r.vpn())
        };
        self.stats.l1_tlb_lookups += 1;
        let tenant = self.tenant(sm);
        let svpn = salt(tenant, vpn);
        let li = self.l(sm);
        if let Some(hit) = self.l1_tlbs[li].lookup(Vpn(svpn)) {
            self.stats.l1_tlb_hits += 1;
            self.record_coverage(hit.coverage_pages);
            self.probe_phase(now, id, Phase::Fetch);
            let r = self.req_mut(id);
            r.real_ppn = Some(hit.ppn);
            r.translation_done = true;
            // VIPT: the L1 data lookup proceeded in parallel with the TLB,
            // so only the non-overlapped latency remains. PIPT serializes.
            let latency = match self.cfg.l1_arrangement {
                crate::config::CacheArrangement::Vipt => {
                    self.cfg.l1_cache.latency.saturating_sub(self.cfg.l1_tlb.latency)
                }
                crate::config::CacheArrangement::Pipt => self.cfg.l1_cache.latency,
            };
            self.schedule_l1_access(now, id, latency);
            return;
        }
        // Miss: cross into the shared hierarchy, where residency,
        // speculation (the CAST hook), and the L2 TLB lookup live.
        self.l1_tlb_miss_forward(now, id);
    }

    /// Registers a missing request in the L1 TLB MSHRs and emits the
    /// cross-domain `TlbMiss`. `need_l2` distinguishes the allocating
    /// request (which triggers the shared L2 TLB lookup) from merged
    /// followers (which still want residency/speculation handling).
    fn l1_tlb_miss_forward(&mut self, now: Cycle, id: ReqId) {
        let (sm, vpn, pc, is_store) = {
            let r = self.req(id);
            (r.sm, r.vpn(), r.pc, r.is_store)
        };
        let svpn = salt(self.tenant(sm), vpn);
        self.probe_phase(now, id, Phase::Walk);
        // Whatever the grant, the id gets stored: as an MSHR waiter
        // (allocated or merged) or on the overflow queue.
        self.req_ref(id);
        let li = self.l(sm);
        match self.l1_tlb_mshrs[li].request(svpn, id) {
            MshrGrant::Allocated => {
                self.send(sm, now + 1, Ev::TlbMiss { req: id, sm, svpn, pc, is_store, need_l2: true });
            }
            MshrGrant::Merged => {
                self.send(sm, now + 1, Ev::TlbMiss { req: id, sm, svpn, pc, is_store, need_l2: false });
            }
            MshrGrant::Full => {
                self.stats.l1_tlb_mshr_full += 1;
                self.tlb_overflow[li].push(id);
            }
        }
    }

    /// Handles [`Ev::SpecDispatch`]: the shared-side policy predicted a
    /// frame; start the speculative L1 probe unless the normal path has
    /// already won the race.
    fn spec_dispatch(&mut self, now: Cycle, id: ReqId, ppn: Ppn, pre_validated: bool) {
        // Token event: the request may have completed and been freed
        // while the dispatch was in flight.
        let Some(r) = self.reqs.get(id) else { return };
        if r.completed || r.translation_done || r.spec.is_some() {
            return;
        }
        let sm = r.sm;
        self.req_mut(id).spec =
            Some(SpecState { ppn, ideal: pre_validated, killed: false, fetch_registered: false });
        let li = self.l(sm);
        let grant = self.l1_cache_ports[li].grant(now);
        self.req_ref(id);
        self.sched(sm, grant + self.cfg.l1_cache.latency, Ev::SpecL1Result { req: id });
    }

    /// Handles [`Ev::ResolveSm`]: fills this SM's L1 TLB with a resolved
    /// translation and wakes its waiting requests.
    // The parameter list mirrors the event's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn resolve_sm(
        &mut self,
        now: Cycle,
        sm: u32,
        svpn: u64,
        ppn: Ppn,
        pages: u64,
        run: Option<ContigRun>,
        via_eaf: bool,
        accel: &dyn TranslationAccel,
    ) {
        let fill = TlbFill { vpn: Vpn(svpn), ppn, pages, run };
        let li = self.l(sm);
        let priority = accel.l1_fill_priority(sm as usize, unsalt(svpn));
        self.l1_tlbs[li].fill_prioritized(&fill, priority);
        self.complete_tlb_waiters(now, sm, svpn, ppn, via_eaf);
        self.retry_tlb_overflow(now, sm);
    }

    /// Completes every L1-TLB-MSHR waiter on `svpn` and defers accel
    /// training to the shared lane (one hop; the accel is shared state).
    fn complete_tlb_waiters(&mut self, now: Cycle, sm: u32, svpn: u64, ppn: Ppn, via_eaf: bool) {
        let li = self.l(sm);
        if let Some(mut waiters) = self.l1_tlb_mshrs[li].complete(svpn) {
            for id in waiters.drain(..) {
                let pc = self.req(id).pc;
                self.send(sm, now + 1, Ev::AccelTrain { sm, pc, svpn, ppn: ppn.0 });
                self.translation_resolved_for_req(now, id, ppn, via_eaf);
                self.req_unref(id);
            }
            self.l1_tlb_mshrs[li].recycle(waiters);
        }
    }

    /// MSHR space freed: retry overflow translation requests. The retry
    /// re-pins the id before the queue's own pin is consumed.
    fn retry_tlb_overflow(&mut self, now: Cycle, sm: u32) {
        let li = self.l(sm);
        let pending = std::mem::take(&mut self.tlb_overflow[li]);
        for id in pending {
            self.l1_tlb_miss_forward(now, id);
            self.req_unref(id);
        }
    }

    /// Handles [`Ev::RemoteDone`]: a remote (host-memory) access
    /// completing. In ideal-TLB mode the event itself pins the request;
    /// otherwise the L1-TLB-MSHR waiter entry does, and is released here.
    fn remote_done(&mut self, now: Cycle, id: ReqId) {
        if self.cfg.ideal_tlb {
            if !self.req(id).completed {
                self.complete_req(now, id);
            }
            self.req_unref(id);
            return;
        }
        // Unpinned token: an EAF/resolution may have completed the
        // request and drained its waiter entry already.
        let Some(r) = self.reqs.get(id) else { return };
        let sm = r.sm;
        let svpn = salt(self.tenant(sm), r.vpn());
        if !r.completed {
            self.complete_req(now, id);
        }
        let li = self.l(sm);
        if self.l1_tlb_mshrs[li].remove_waiter(svpn, &id) {
            self.req_unref(id);
            // The waiter slot freed may have been the last one holding an
            // entry: overflowed requests can now retry.
            self.retry_tlb_overflow(now, sm);
        }
    }

    fn translation_resolved_for_req(&mut self, now: Cycle, id: ReqId, ppn: Ppn, via_eaf: bool) {
        if self.trace_req.is_some() {
            // Guarded: the format! must not run (or allocate) per sector
            // when tracing is off.
            self.trace(id, &format!("translation_resolved ppn={}", ppn.0));
        }
        let req = self.req_mut(id);
        req.real_ppn = Some(ppn);
        req.translation_done = true;
        if req.completed {
            return; // already satisfied by rapid/ideal validation
        }
        // Translation known: whatever waiting remains (cache lookup, MSHR
        // merge, DRAM) is data-side time in every branch below.
        self.probe_phase(now, id, Phase::Fetch);
        let req = self.req(id);
        let sm = req.sm;
        let li = self.l(sm);
        let Some(spec) = req.spec else {
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
            return;
        };
        let spec_pa = translate(req.vaddr, spec.ppn);
        let correct = spec.ppn == ppn;
        if correct {
            // Fig 16 accounting: a resolution delivered by Early-TLB-Fill
            // counts as Fast_Translation — one rapid validation serves
            // many accesses.
            if self.l1_mshrs[li].contains(spec_pa.0) {
                // A fetch of the speculated sector is in flight (this
                // request's own, or another warp's): the original access
                // merges with it in the cache MSHR.
                if !spec.fetch_registered && self.l1_mshrs[li].merge(spec_pa.0, id) {
                    self.req_ref(id);
                    self.req_mut(id)
                        .spec
                        .as_mut()
                        .expect("spec state outlives its in-flight sector fetch")
                        .fetch_registered = true;
                }
                self.stats.outcomes.record(if via_eaf {
                    SpecOutcome::FastTranslation
                } else {
                    SpecOutcome::L1dMerge
                });
                self.trace(id, "merge-wait");
                return; // completion happens at the fill
            }
            if self.l1_caches[li].peek(spec_pa).is_some() {
                // Prefetched sector still resident: guarantee and re-access.
                self.l1_caches[li].set_guarantee(spec_pa, true);
                self.wake_unguaranteed(now, sm, spec_pa);
                self.trace(id, "l1d-hit-path");
                self.stats.outcomes.record(if via_eaf {
                    SpecOutcome::FastTranslation
                } else {
                    SpecOutcome::L1dHit
                });
                self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
                return;
            }
            // Not fetched (or evicted) before the translation arrived.
            self.stats.outcomes.record(if via_eaf {
                SpecOutcome::FastTranslation
            } else {
                SpecOutcome::L1dMiss
            });
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
        } else {
            self.req_mut(id).spec.as_mut().expect("spec present").killed = true;
            // Drop the wrongly fetched sector if it is resident and not
            // legitimately owned (guaranteed) by some other request.
            if let Some(flags) = self.l1_caches[li].peek(spec_pa) {
                if !flags.guaranteed {
                    self.l1_caches[li].invalidate_sector(spec_pa);
                    self.wake_unguaranteed(now, sm, spec_pa);
                }
            }
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
        }
    }

    // ------------------------------------------------------------------
    // Data path (lane side)
    // ------------------------------------------------------------------

    fn schedule_l1_access(&mut self, now: Cycle, id: ReqId, latency: Cycle) {
        let sm = self.req(id).sm;
        let li = self.l(sm);
        let grant = self.l1_cache_ports[li].grant(now);
        self.probe_queue_wait(grant - now);
        self.req_ref(id);
        self.sched(sm, grant + latency, Ev::L1Result { req: id });
    }

    fn l1_result(&mut self, now: Cycle, id: ReqId) {
        self.trace(id, "l1_result");
        if self.req(id).completed {
            return;
        }
        let (sm, pa, is_store) = {
            let r = self.req(id);
            (r.sm, r.real_pa().expect("translated before L1 access"), r.is_store)
        };
        let li = self.l(sm);
        self.stats.l1d_lookups += 1;
        match self.l1_caches[li].probe(pa) {
            Probe::Hit => {
                self.stats.l1d_hits += 1;
                if is_store {
                    self.l1_caches[li].mark_dirty(pa);
                }
                self.complete_req(now, id);
            }
            Probe::HitUnguaranteed => {
                // The sector is present but awaiting validation. This
                // request reached the data path with a *confirmed*
                // translation to the same physical sector — exactly the
                // proof the guarantee bit requires ("if the speculation
                // is accurate, set the guarantee bit"). Validate and use.
                self.stats.l1d_hits += 1;
                self.l1_caches[li].set_guarantee(pa, true);
                if is_store {
                    self.l1_caches[li].mark_dirty(pa);
                }
                self.complete_req(now, id);
                self.wake_unguaranteed(now, sm, pa);
            }
            Probe::Miss => self.l1_miss(now, id, pa),
        }
    }

    /// Wakes requests waiting on an unguaranteed sector once its fate is
    /// known: on `usable` they re-probe (and hit); otherwise they fall
    /// back to a normal fetch.
    fn wake_unguaranteed(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        if let Some(waiters) = self.unguaranteed_waiters.remove(&(sm, pa.0)) {
            for id in waiters {
                if !self.req(id).completed {
                    self.schedule_l1_access(now, id, 1);
                }
                self.req_unref(id);
            }
        }
    }

    /// Wakes every unguaranteed-sector waiter of an SM (shootdown path).
    fn wake_all_unguaranteed(&mut self, now: Cycle, sm: u32) {
        let mut keys = std::mem::take(&mut self.scratch_keys);
        keys.clear();
        keys.extend(self.unguaranteed_waiters.keys().filter(|(s, _)| *s == sm).map(|(_, pa)| *pa));
        for &pa in &keys {
            self.wake_unguaranteed(now, sm, PhysAddr(pa));
        }
        self.scratch_keys = keys;
    }

    fn l1_miss(&mut self, now: Cycle, id: ReqId, pa: PhysAddr) {
        let sm = self.req(id).sm;
        let li = self.l(sm);
        // Both grants store the id: as an MSHR waiter or on the overflow
        // queue.
        self.req_ref(id);
        match self.l1_mshrs[li].request(pa.0, id) {
            MshrGrant::Allocated => {
                self.send(sm, now + 1, Ev::L2Req { sm, pa: pa.0 });
            }
            MshrGrant::Merged => {}
            MshrGrant::Full => {
                self.stats.cache_mshr_full += 1;
                self.l1_mshr_overflow[li].push_back(id);
            }
        }
    }

    fn spec_l1_result(&mut self, now: Cycle, id: ReqId, accel: &dyn TranslationAccel) {
        self.trace(id, "spec_l1_result");
        let req = self.req(id);
        if req.completed || req.translation_done {
            // Translation beat the speculative lookup; the normal path owns
            // the request now.
            return;
        }
        let sm = req.sm;
        let li = self.l(sm);
        let Some(spec) = req.spec else { return };
        let spec_pa = translate(req.vaddr, spec.ppn);
        match self.l1_caches[li].probe(spec_pa) {
            Probe::Hit => {
                if spec.ideal {
                    // Ideal validation: the speculation is already
                    // confirmed, so a guaranteed hit completes the load,
                    // and the oracle-known mapping releases the pending
                    // translation machinery exactly like EAF.
                    let vpn = self.req(id).vpn();
                    self.stats.outcomes.record(SpecOutcome::FastTranslation);
                    self.complete_req(now, id);
                    self.eaf_local(now, sm, vpn, spec.ppn, accel);
                }
            }
            Probe::HitUnguaranteed => {
                // Another request's speculative fetch already brought the
                // sector in; wait for validation or translation.
            }
            Probe::Miss => {
                // Demand fetches take priority: speculative fetches lapse
                // when the MSHR file is under pressure (the LSU pending
                // table drops speculative entries rather than stalling).
                let mshrs = &self.l1_mshrs[li];
                if !mshrs.contains(spec_pa.0) && mshrs.len() * 2 >= self.cfg.l1_cache.mshr_entries {
                    return;
                }
                match self.l1_mshrs[li].request(spec_pa.0, id) {
                    MshrGrant::Allocated => {
                        self.req_ref(id);
                        self.stats.spec_fetches += 1;
                        self.req_mut(id)
                            .spec
                            .as_mut()
                            .expect("spec state outlives its in-flight sector fetch")
                            .fetch_registered = true;
                        self.probe_phase(now, id, Phase::Validate);
                        #[cfg(feature = "probes")]
                        {
                            self.req_mut(id).spec_started = now;
                        }
                        self.send(sm, now + 1, Ev::L2Req { sm, pa: spec_pa.0 });
                    }
                    MshrGrant::Merged => {
                        self.req_ref(id);
                        self.stats.spec_fetches += 1;
                        self.req_mut(id)
                            .spec
                            .as_mut()
                            .expect("spec state outlives its in-flight sector fetch")
                            .fetch_registered = true;
                        self.probe_phase(now, id, Phase::Validate);
                        #[cfg(feature = "probes")]
                        {
                            self.req_mut(id).spec_started = now;
                        }
                    }
                    MshrGrant::Full => {
                        // Resource-constrained: the speculation silently
                        // lapses — the id was never stored, so no pin.
                    }
                }
            }
        }
    }

    fn l1_fill(
        &mut self,
        now: Cycle,
        sm: u32,
        pa: PhysAddr,
        meta: FetchedSector,
        accel: &dyn TranslationAccel,
    ) {
        let li = self.l(sm);
        // Fill invisible first; waiters below decide visibility.
        let evicted_line = self.l1_caches[li].fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: false, dirty: false },
        );
        if let Some(ev) = evicted_line {
            for sector in 0..crate::addr::SECTORS_PER_LINE {
                let spa = PhysAddr(ev.line_addr * crate::addr::LINE_BYTES + sector * SECTOR_BYTES);
                self.wake_unguaranteed(now, sm, spa);
                // Write-back: dirty sectors leave the L1 toward the L2.
                let f = ev.sectors[sector as usize];
                if f.valid && f.dirty {
                    self.send(sm, now + 1, Ev::WritebackL2 { pa: spa.0 });
                }
            }
        }
        let mut guarantee = false;
        let mut dirty = false;
        let mut all_killed_specs = true;
        if let Some(mut waiters) = self.l1_mshrs[li].complete(pa.0) {
            for id in waiters.drain(..) {
                if self.trace_req.is_some() {
                    self.trace(id, &format!("l1_fill waiter pa={:#x}", pa.0));
                }
                let req = self.req(id);
                if req.completed {
                    // Already satisfied elsewhere; never a reason to drop
                    // the freshly fetched data. (This read through the
                    // waiter copy is why completion alone must not free a
                    // request — only a zero pin count may.)
                    all_killed_specs = false;
                    self.req_unref(id);
                    continue;
                }
                if req.translation_done {
                    if req.real_pa() == Some(pa) {
                        // Normal fetch (or a correct-spec merge): usable.
                        guarantee = true;
                        all_killed_specs = false;
                        if req.is_store {
                            dirty = true;
                        }
                        self.complete_req(now, id);
                    }
                    // else: stale fill for a killed speculation; ignore.
                    self.req_unref(id);
                    continue;
                }
                // Untranslated waiter: must be a speculative fetch.
                if req.spec_pa() == Some(pa) {
                    let spec = req.spec.expect("spec fetch has state");
                    if spec.ideal {
                        // Pre-confirmed by ideal validation; the oracle
                        // mapping also releases the translation machinery.
                        guarantee = true;
                        all_killed_specs = false;
                        self.stats.outcomes.record(SpecOutcome::FastTranslation);
                        #[cfg(feature = "probes")]
                        {
                            let (warp, started) = {
                                let r = self.req(id);
                                (r.warp, r.spec_started)
                            };
                            self.stats.validation_latency_hist.add(now.saturating_sub(started));
                            self.probe_instant(
                                SpanPoint::Validation,
                                Track::sm_warp(sm, warp),
                                now,
                                1,
                            );
                        }
                        let vpn = self.req(id).vpn();
                        self.complete_req(now, id);
                        self.eaf_local(now, sm, vpn, spec.ppn, accel);
                        self.req_unref(id);
                        continue;
                    }
                    let ctx = SpecFillContext {
                        sm: sm as usize,
                        pc: req.pc,
                        requested_vpn: req.vpn(),
                        asid: asid_of(self.tenant(sm)),
                        spec_ppn: spec.ppn,
                        sector: meta,
                    };
                    match accel.on_spec_fill(&ctx) {
                        SpecFillAction::AwaitTranslation => {
                            all_killed_specs = false;
                        }
                        SpecFillAction::Validated { eaf } => {
                            guarantee = true;
                            all_killed_specs = false;
                            if meta.compressed {
                                self.stats.spec_compressed += 1;
                            }
                            self.stats.outcomes.record(SpecOutcome::FastTranslation);
                            #[cfg(feature = "probes")]
                            {
                                let (warp, started) = {
                                    let r = self.req(id);
                                    (r.warp, r.spec_started)
                                };
                                self.stats
                                    .validation_latency_hist
                                    .add(now.saturating_sub(started));
                                self.probe_instant(
                                    SpanPoint::Validation,
                                    Track::sm_warp(sm, warp),
                                    now,
                                    1,
                                );
                            }
                            let vpn = self.req(id).vpn();
                            self.complete_req(now, id);
                            if eaf {
                                self.eaf_local(now, sm, vpn, spec.ppn, accel);
                            }
                        }
                        SpecFillAction::Invalidate => {
                            self.stats.cava_mismatches += 1;
                            #[cfg(feature = "probes")]
                            {
                                let (warp, started) = {
                                    let r = self.req(id);
                                    (r.warp, r.spec_started)
                                };
                                self.stats
                                    .validation_latency_hist
                                    .add(now.saturating_sub(started));
                                self.probe_instant(
                                    SpanPoint::Validation,
                                    Track::sm_warp(sm, warp),
                                    now,
                                    0,
                                );
                            }
                            self.req_mut(id)
                                .spec
                                .as_mut()
                                .expect("spec state outlives its in-flight sector fetch")
                                .killed = true;
                        }
                    }
                }
                self.req_unref(id);
            }
        } else {
            // No waiters (e.g. a refill after invalidation): plain data.
            guarantee = true;
            all_killed_specs = false;
        }
        if guarantee {
            self.l1_caches[li].set_guarantee(pa, true);
            if dirty {
                self.l1_caches[li].mark_dirty(pa);
            }
            self.wake_unguaranteed(now, sm, pa);
        } else if all_killed_specs {
            // Only mis-speculated fetches wanted this sector: drop it.
            self.l1_caches[li].invalidate_sector(pa);
            self.wake_unguaranteed(now, sm, pa);
        }
        // L1 MSHR space freed: admit overflow waiters into free capacity.
        while let Some(&id) = self.l1_mshr_overflow[li].front() {
            if self.req(id).completed {
                self.l1_mshr_overflow[li].pop_front();
                self.req_unref(id);
                continue;
            }
            let target = self.req(id).real_pa().expect("overflowed after translation");
            if self.l1_mshrs[li].is_full() && !self.l1_mshrs[li].contains(target.0) {
                break;
            }
            self.l1_mshr_overflow[li].pop_front();
            // The retry (`l1_miss`) re-pins before the queue's pin drops.
            self.l1_miss(now, id, target);
            self.req_unref(id);
        }
    }

    /// Lane half of Early TLB Fill: installs the validated translation
    /// in this SM's L1 TLB, wakes its local waiters, and hands the
    /// resource release + cross-SM propagation to the shared lane.
    fn eaf_local(
        &mut self,
        now: Cycle,
        sm: u32,
        vpn: Vpn,
        ppn: Ppn,
        accel: &dyn TranslationAccel,
    ) {
        self.stats.eaf_fills += 1;
        let tenant = self.tenant(sm);
        let svpn = salt(tenant, vpn);
        let fill = TlbFill { vpn: Vpn(svpn), ppn, pages: 1, run: None };
        let li = self.l(sm);
        let priority = accel.l1_fill_priority(sm as usize, vpn);
        self.l1_tlbs[li].fill_prioritized(&fill, priority);
        self.complete_tlb_waiters(now, sm, svpn, ppn, true);
        self.retry_tlb_overflow(now, sm);
        self.send(sm, now + 1, Ev::EafResolve { sm, svpn, ppn: ppn.0 });
    }

    /// Handles [`Ev::Shootdown`]: a UVM chunk eviction reaching this SM.
    /// The shared structures were invalidated at the eviction; here the
    /// SM's L1 TLB and cache drop their now-stale entries.
    fn shootdown(&mut self, now: Cycle, sm: u32, first_svpn: u64, pages: u64, frames: &FxHashSet<u64>) {
        let li = self.l(sm);
        self.l1_tlbs[li].invalidate(Vpn(first_svpn), pages);
        self.l1_caches[li].invalidate_frames(frames);
        self.wake_all_unguaranteed(now, sm);
    }

    fn complete_req(&mut self, now: Cycle, id: ReqId) {
        let (sm, warp, issued) = {
            let req = self.req_mut(id);
            debug_assert!(!req.completed, "double completion of request {id:?}");
            req.completed = true;
            (req.sm, req.warp, req.issued)
        };
        self.trace(id, "complete");
        self.stats.sector_latency.add(now - issued);
        self.stats.sector_latency_hist.add(now - issued);
        self.probe_complete(now, id);
        let slot = self.warp_slot(sm, warp);
        let li = self.l(sm);
        crate::debug_invariant!(
            self.warp_outstanding[slot] > 0,
            "completing request {id:?} for a warp with no outstanding sectors"
        );
        self.warp_outstanding[slot] -= 1;
        let left = self.warp_outstanding[slot];
        if left == 0 {
            self.stats.load_latency.add(now - self.warp_issue_time[slot]);
            self.sms[li].set_warp(warp as usize, WarpState::Ready, now);
            self.sched(sm, now + 1, Ev::WarpIssue { sm, warp });
        } else {
            self.sms[li].set_warp(
                warp as usize,
                WarpState::WaitingMemory { outstanding: left },
                now,
            );
        }
    }

    fn record_coverage(&mut self, pages: u64) {
        let bucket = CoverageBucket::of_pages(pages);
        let idx = CoverageBucket::ALL
            .iter()
            .position(|b| *b == bucket)
            .expect("CoverageBucket::ALL enumerates every bucket of_pages can return");
        self.stats.coverage_hits[idx] += 1;
    }
}

impl<'a> SharedLane<'a> {
    // ------------------------------------------------------------------
    // Translation path (shared side)
    // ------------------------------------------------------------------

    /// Handles [`Ev::TlbMiss`]: the shared half of an L1 TLB miss.
    /// Residency (and hence remoteness), the speculation policy, and the
    /// L2 TLB all live here, behind the horizon barrier.
    // The parameter list mirrors the event's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn tlb_miss(
        &mut self,
        now: Cycle,
        id: ReqId,
        sm: u32,
        svpn: u64,
        pc: u64,
        is_store: bool,
        need_l2: bool,
    ) {
        let tenant = tenant_of_svpn(svpn);
        let vpn = unsalt(svpn);
        self.trace_id(id, "tlb-miss reaches shared lane");
        // Residency first: the pre-shard engine touched at issue; the
        // decomposed protocol touches at the first shared-side sighting.
        if self.touch_page(now, tenant, vpn) {
            // Cold page below the migration threshold: serviced from host
            // memory over the interconnect. No GPU TLB entry is installed
            // and the accel is not trained (the paper restricts updates
            // to GPU-mapped regions). The lane-side MSHR waiter entry
            // drains one RemoteDone at a time.
            self.stats.remote_accesses += 1;
            if need_l2 {
                // Nothing was dispatched for this entry; make sure no
                // stale resolution marker survives from a prior lifetime.
                self.pending_resolve.remove(&(sm, svpn));
            }
            self.probe_span(
                SpanPoint::Remote,
                Track::uvm(tenant as u32),
                now,
                now + self.cfg.uvm.remote_latency,
                id.slot() as u64,
            );
            self.send(now + self.window + self.cfg.uvm.remote_latency, Ev::RemoteDone { req: id });
            return;
        }
        // CAST hook: attempt speculative translation. Stores never
        // speculate — erroneously performed writes cannot be rolled back.
        let prediction =
            if is_store { None } else { self.accel.on_l1_tlb_miss(sm as usize, pc, vpn) };
        if let Some(spec_ppn) = prediction {
            self.stats.speculations += 1;
            // The page can have been evicted (oversubscription) between
            // warp issue and this miss; such speculations validate false.
            let real = self.uvms[tenant].page_table.translate(vpn);
            let correct = real.is_some_and(|r| r.ppn == spec_ppn);
            if correct {
                self.stats.spec_correct += 1;
            }
            if self.frame_owner_any(spec_ppn).is_none() {
                self.stats.spec_false += 1;
            }
            let kind = self.accel.validation_kind();
            if let ValidationKind::Rapid { latency } = kind {
                // Validation-on-use (Revelator): the fetch dispatches
                // unconditionally, and a lightweight mapping check runs
                // alongside it. A correct speculation is confirmed
                // `latency` cycles from now, releasing the background
                // walk early; a wrong one silently waits for the walk.
                self.send(
                    now + self.window,
                    Ev::SpecDispatch { req: id, ppn: spec_ppn.0, ideal: false },
                );
                if correct {
                    self.sched(now + latency, Ev::RapidResolve { sm, svpn, ppn: spec_ppn.0 });
                }
            } else {
                let ideal = kind == ValidationKind::Ideal;
                if !ideal || correct {
                    // Ideal validation confirms speculations before
                    // fetching; incorrect ones never fetch.
                    self.send(
                        now + self.window,
                        Ev::SpecDispatch { req: id, ppn: spec_ppn.0, ideal },
                    );
                }
            }
        }
        // Forward toward the L2 TLB. The allocating waiter dispatches the
        // lookup; merged followers only do so when no resolution is
        // pending for their (sm, page) — which happens when the entry's
        // allocating request went remote in an earlier residency state.
        if need_l2 {
            self.pending_resolve.insert((sm, svpn));
            self.dispatch_l2_lookup(now, sm, svpn);
        } else if self.pending_resolve.insert((sm, svpn)) {
            self.dispatch_l2_lookup(now, sm, svpn);
        }
    }

    fn dispatch_l2_lookup(&mut self, now: Cycle, sm: u32, svpn: u64) {
        self.stats.l2_tlb_lookups += 1;
        let grant = self.l2_tlb_ports.grant(now);
        self.probe_queue_wait(grant - now);
        self.sched(grant + self.cfg.l2_tlb.latency, Ev::L2TlbResult { sm, svpn });
    }

    fn l2_tlb_result(&mut self, now: Cycle, sm: u32, svpn: u64) {
        if !self.pending_resolve.contains(&(sm, svpn)) {
            // Already resolved (e.g. EAF released the entry).
            return;
        }
        if let Some(hit) = self.l2_tlb.lookup(Vpn(svpn)) {
            self.stats.l2_tlb_hits += 1;
            self.record_coverage(hit.coverage_pages);
            let pages = if hit.coverage_pages >= crate::addr::PAGES_PER_CHUNK {
                crate::addr::PAGES_PER_CHUNK
            } else {
                1
            };
            self.resolve_one_sm(now, sm, svpn, hit.ppn, pages, Some(hit.run()), false);
            return;
        }
        match self.l2_tlb_mshr.request(svpn, sm) {
            MshrGrant::Allocated => self.start_walk(now, svpn),
            MshrGrant::Merged => self.stats.walk_merges += 1,
            MshrGrant::Full => {
                self.stats.l2_tlb_mshr_full += 1;
                self.l2_tlb_overflow.push((sm, svpn));
            }
        }
    }

    /// Delivers a resolved translation to one SM: clears its pending
    /// marker and ships the fill across the horizon. The lane installs
    /// it and wakes that SM's waiters.
    // The parameter list mirrors the event's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn resolve_one_sm(
        &mut self,
        now: Cycle,
        sm: u32,
        svpn: u64,
        ppn: Ppn,
        pages: u64,
        run: Option<ContigRun>,
        via_eaf: bool,
    ) {
        self.pending_resolve.remove(&(sm, svpn));
        self.send(
            now + self.window,
            Ev::ResolveSm { sm, svpn, ppn: ppn.0, pages, run, via_eaf },
        );
    }

    fn start_walk(&mut self, now: Cycle, svpn: u64) {
        let tenant = tenant_of_svpn(svpn);
        let levels = self.uvms[tenant].page_table.walk_levels(unsalt(svpn));
        match self.walks.enqueue(Vpn(svpn), levels, now) {
            Some(id) => {
                self.walk_of_vpn.insert(svpn, id);
                self.vpn_of_walk.insert(id, Vpn(svpn));
                self.walk_started.insert(svpn, now);
                // Dispatch synchronously: a zero-delta event would only
                // defer this same call behind the rest of the cycle's
                // queue (and is deny-listed by avatar-lint).
                self.walk_dispatch(now);
            }
            None => {
                self.stats.pw_buffer_full += 1;
                self.pw_overflow.push_back(svpn);
            }
        }
    }

    fn walk_dispatch(&mut self, now: Cycle) {
        while let Some((walk, addr)) = self.walks.dispatch() {
            // The walker records its enqueue cycle as the walk's start:
            // the gap to the dispatch cycle is walk-buffer queueing.
            #[cfg(feature = "probes")]
            if let Some(enqueued) = self.walks.started_at(walk) {
                self.probe_queue_wait(now - enqueued);
            }
            self.walk_mem(now, walk, addr);
        }
    }

    fn walk_mem(&mut self, now: Cycle, walk: WalkId, addr: PhysAddr) {
        self.stats.walk_memory_accesses += 1;
        let pa = PhysAddr(addr.0 & !(SECTOR_BYTES - 1));
        let grant = self.l2_cache_ports.grant(now);
        self.sched(grant + self.cfg.l2_cache.latency, Ev::WalkL2 { walk, pa: pa.0 });
    }

    fn walk_l2(&mut self, now: Cycle, walk: WalkId, pa: PhysAddr) {
        self.stats.l2_lookups += 1;
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => {
                self.stats.l2_hits += 1;
                self.advance_walk(now, walk);
            }
            Probe::Miss => match self.l2_mshr.request(pa.0, L2Waiter::Walk { walk }) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.sched(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => self.l2_mshr_overflow.push_back((pa.0, L2Waiter::Walk { walk })),
            },
        }
    }

    fn advance_walk(&mut self, now: Cycle, walk: WalkId) {
        match self.walks.step(walk) {
            None => {} // aborted by EAF
            Some(WalkProgress::Access(addr)) => self.walk_mem(now, walk, addr),
            Some(WalkProgress::Done) => {
                let svpn = self.vpn_of_walk.remove(&walk).expect("walk has vpn");
                let tenant = tenant_of_svpn(svpn.0);
                let vpn = unsalt(svpn.0);
                self.stats.page_walks += 1;
                if let Some(start) = self.walk_started.remove(&svpn.0) {
                    self.stats.walk_latency.add(now - start);
                    #[cfg(feature = "probes")]
                    {
                        self.stats.walk_latency_hist.add(now - start);
                        let walker = (walk.0 % self.cfg.walker.walkers as u64) as u32;
                        self.probe_span(
                            SpanPoint::WalkService,
                            Track::walker(walker),
                            start,
                            now,
                            svpn.0,
                        );
                    }
                }
                self.walk_of_vpn.remove(&svpn.0);
                // The PTE may have been invalidated by a concurrent
                // eviction; refault instantly (latency excluded).
                if self.uvms[tenant].page_table.translate(vpn).is_none() {
                    // The page was evicted while its walk was in flight;
                    // refault it in (repeat touches satisfy the access
                    // counter when threshold-based migration is active).
                    while self.touch_page(now, tenant, vpn) {}
                }
                let t = self.uvms[tenant].page_table.translate(vpn).expect("resident after touch");
                self.resolve_translation(now, svpn.0, t.ppn, t.pages);
                // A walker freed: dispatch more walks and retry overflow,
                // synchronously rather than via a zero-delta event.
                self.drain_pw_overflow(now);
                self.walk_dispatch(now);
            }
        }
    }

    fn drain_pw_overflow(&mut self, now: Cycle) {
        while !self.pw_overflow.is_empty() && self.walks.has_buffer_space() {
            let vpn = self.pw_overflow.pop_front().expect("checked non-empty");
            self.start_walk(now, vpn);
        }
    }

    /// Resolves a translation globally: fills the L2 TLB and wakes every
    /// waiting SM, then retries overflow queues.
    fn resolve_translation(&mut self, now: Cycle, svpn: u64, ppn: Ppn, pages: u64) {
        let tenant = tenant_of_svpn(svpn);
        let run = self.uvms[tenant].page_table.contiguous_run(unsalt(svpn), 16);
        let run = salt_run(tenant, run);
        let fill = TlbFill { vpn: Vpn(svpn), ppn, pages, run };
        self.l2_tlb.fill(&fill);
        self.charge_merge_refs(now);
        if let Some(mut waiters) = self.l2_tlb_mshr.complete(svpn) {
            let mut seen = Vec::new();
            for sm in waiters.drain(..) {
                if !seen.contains(&sm) {
                    seen.push(sm);
                    self.resolve_one_sm(now, sm, svpn, ppn, pages, run, false);
                }
            }
            self.l2_tlb_mshr.recycle(waiters);
        }
        self.drain_l2_tlb_overflow(now);
    }

    fn charge_merge_refs(&mut self, now: Cycle) {
        let refs = self.l2_tlb.drain_extra_memory_refs();
        if refs > 0 {
            self.stats.merge_memory_accesses += refs;
            // Merge traffic consumes page-table bandwidth: fire-and-forget
            // DRAM reads in the page-table region.
            for i in 0..refs {
                let pa = PhysAddr(PT_BASE + (self.stats.merge_memory_accesses + i) * 64 % (1 << 30));
                self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
            }
        }
    }

    fn drain_l2_tlb_overflow(&mut self, now: Cycle) {
        let pending = std::mem::take(&mut self.l2_tlb_overflow);
        for (sm, vpn) in pending {
            self.l2_tlb_result(now, sm, vpn);
        }
    }

    /// Shared half of Early TLB Fill ([`Ev::EafResolve`]): installs the
    /// validated translation in the L2 TLB, releases pending translation
    /// resources, aborts the in-flight walk, and propagates the entry to
    /// other SMs. The originating SM's L1 side was already served by
    /// `eaf_local`.
    fn eaf_resolve(&mut self, now: Cycle, sm: u32, svpn: u64, ppn: Ppn) {
        let tenant = tenant_of_svpn(svpn);
        let fill = TlbFill { vpn: Vpn(svpn), ppn, pages: 1, run: None };
        self.l2_tlb.fill(&fill);
        // The origin resolved locally; retire its pending marker so a
        // later L2TlbResult doesn't double-deliver.
        self.pending_resolve.remove(&(sm, svpn));
        // Release the shared translation machinery.
        if let Some(mut waiters) = self.l2_tlb_mshr.complete(svpn) {
            self.stats.eaf_releases += 1;
            if let Some(walk) = self.walk_of_vpn.remove(&svpn) {
                if self.walks.abort(walk) {
                    self.stats.walks_aborted += 1;
                }
                self.vpn_of_walk.remove(&walk);
                self.walk_started.remove(&svpn);
                // The aborted walk freed a walker: dispatch synchronously.
                self.walk_dispatch(now);
            }
            self.pw_overflow.retain(|&v| v != svpn);
            let mut seen = Vec::new();
            for other in waiters.drain(..) {
                if other != sm && !seen.contains(&other) {
                    seen.push(other);
                    self.resolve_one_sm(now, other, svpn, ppn, 1, None, true);
                }
            }
            self.l2_tlb_mshr.recycle(waiters);
        }
        // Cross-SM propagation: the entry is *prefetched* into every
        // other SM's L1 TLB ("ensuring the desired translation is
        // efficiently prefetched across SMs"), not only handed to SMs
        // with a pending miss.
        if self.accel.propagates_cross_sm() {
            for other in 0..self.cfg.num_sms as u32 {
                // Isolation: entries are only forwarded within the tenant.
                if other != sm && self.tenant(other) == tenant {
                    self.stats.eaf_cross_sm_fills += 1;
                    self.resolve_one_sm(now, other, svpn, ppn, 1, None, true);
                }
            }
        }
        self.drain_l2_tlb_overflow(now);
    }

    /// Handles [`Ev::RapidResolve`]: the rapid validation-on-use verdict
    /// for a correct speculation. Re-checks the mapping at verdict time
    /// (the page can have been evicted while the check was in flight),
    /// then delivers the translation to the originating SM and runs the
    /// same shared-side release path as EAF: L2 TLB fill, MSHR release,
    /// walk abort, waiter delivery.
    fn rapid_resolve(&mut self, now: Cycle, sm: u32, svpn: u64, ppn: Ppn) {
        if !self.pending_resolve.contains(&(sm, svpn)) {
            // The background translation (or a merged EAF) won the race.
            return;
        }
        let tenant = tenant_of_svpn(svpn);
        match self.uvms[tenant].page_table.translate(unsalt(svpn)) {
            Some(real) if real.ppn == ppn => {}
            // Evicted or remapped since the miss: the verdict is stale
            // and the request falls back to the background walk.
            _ => return,
        }
        self.stats.rapid_validations += 1;
        self.resolve_one_sm(now, sm, svpn, ppn, 1, None, true);
        self.eaf_resolve(now, sm, svpn, ppn);
    }

    // ------------------------------------------------------------------
    // Data path (shared side)
    // ------------------------------------------------------------------

    /// Handles [`Ev::L2Req`]: a lane-side L1 miss arriving at the L2.
    /// The port is charged at arrival, matching the pre-shard engine's
    /// grant-at-allocation.
    fn l2_req(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        let grant = self.l2_cache_ports.grant(now);
        self.sched(grant + self.cfg.l2_cache.latency, Ev::L2Access { sm, pa: pa.0 });
    }

    fn l2_access(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        self.stats.l2_lookups += 1;
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => {
                self.stats.l2_hits += 1;
                self.send_l1_fill(now, sm, pa);
            }
            Probe::Miss => match self.l2_mshr.request(pa.0, L2Waiter::Sector { sm }) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.sched(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => {
                    self.stats.cache_mshr_full += 1;
                    self.l2_mshr_overflow.push_back((pa.0, L2Waiter::Sector { sm }));
                }
            },
        }
    }

    /// Ships a sector to an SM's L1, sampling the stored metadata (the
    /// compression bit rides the wire with the data) at emission time.
    fn send_l1_fill(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        let extra = if meta.compressed { self.cfg.spec.decompression_latency } else { 0 };
        self.send(now + self.window + extra, Ev::L1Fill { sm, pa: pa.0, meta });
    }

    fn dram_done(&mut self, now: Cycle, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        let evicted = self.l2_cache.fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: true, dirty: false },
        );
        self.writeback_evicted_l2(now, evicted);
        if let Some(mut waiters) = self.l2_mshr.complete(pa.0) {
            for w in waiters.drain(..) {
                match w {
                    L2Waiter::Sector { sm } => self.send_l1_fill(now, sm, pa),
                    L2Waiter::Walk { walk } => self.advance_walk(now, walk),
                }
            }
            self.l2_mshr.recycle(waiters);
        }
        // MSHR space freed: admit overflow waiters into the capacity that
        // opened up. They already paid the L2 port on their original
        // access — re-probe directly (no extra port grant or latency).
        while let Some(&(pa, _)) = self.l2_mshr_overflow.front() {
            if self.l2_mshr.is_full() && !self.l2_mshr.contains(pa) {
                break;
            }
            let (pa, w) = self.l2_mshr_overflow.pop_front().expect("checked non-empty");
            self.l2_retry(now, PhysAddr(pa), w);
        }
    }

    /// Re-probes the L2 for an overflow waiter without charging the port
    /// again.
    fn l2_retry(&mut self, now: Cycle, pa: PhysAddr, w: L2Waiter) {
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => match w {
                L2Waiter::Sector { sm } => self.send_l1_fill(now, sm, pa),
                L2Waiter::Walk { walk } => self.advance_walk(now, walk),
            },
            Probe::Miss => match self.l2_mshr.request(pa.0, w) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.sched(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => self.l2_mshr_overflow.push_front((pa.0, w)),
            },
        }
    }

    /// Writes a dirty L1 sector back into the L2 (write-back,
    /// write-allocate hierarchy). Cascading L2 evictions write to DRAM.
    fn writeback_to_l2(&mut self, now: Cycle, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        let evicted = self.l2_cache.fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: true, dirty: true },
        );
        self.writeback_evicted_l2(now, evicted);
    }

    /// Writes the dirty sectors of an evicted L2 line to DRAM.
    fn writeback_evicted_l2(&mut self, now: Cycle, evicted: Option<crate::cache::EvictedLine>) {
        if let Some(ev) = evicted {
            for sector in 0..crate::addr::SECTORS_PER_LINE {
                let f = ev.sectors[sector as usize];
                if f.valid && f.dirty {
                    let spa =
                        PhysAddr(ev.line_addr * crate::addr::LINE_BYTES + sector * SECTOR_BYTES);
                    // Fire-and-forget: the writeback occupies the channel
                    // but nothing waits on it.
                    self.dram.access(spa, DramOp::Write, now, SECTOR_BYTES);
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // UVM
    // ------------------------------------------------------------------

    /// Touches a page; returns `true` when the access must be served
    /// remotely (cold page under threshold-based migration). Evictions
    /// invalidate the shared structures immediately and broadcast one
    /// [`Ev::Shootdown`] per SM for the L1 side.
    fn touch_page(&mut self, now: Cycle, tenant: usize, vpn: Vpn) -> bool {
        let result = self.uvms[tenant].touch(vpn);
        if result.remote {
            return true;
        }
        if !result.faulted {
            return false;
        }
        self.stats.page_faults += 1;
        self.stats.pages_migrated += result.migrated.len() as u64;
        self.probe_instant(
            SpanPoint::UvmFault,
            Track::uvm(tenant as u32),
            now,
            result.migrated.len() as u64,
        );
        // Migration traffic: page contents written into GPU DRAM (timing
        // excluded per §IV-B, traffic counted).
        self.dram
            .account_untimed(DramOp::Write, result.migrated.len() as u64 * crate::addr::PAGE_BYTES);
        if result.promoted {
            self.stats.promotions += 1;
        }
        for chunk in result.evicted {
            self.stats.chunks_evicted += 1;
            self.stats.tlb_shootdowns += 1;
            self.probe_instant(SpanPoint::Eviction, Track::uvm(tenant as u32), now, chunk.pages);
            if chunk.was_promoted {
                self.stats.splinters += 1;
            }
            // Eviction reads the chunk out of DRAM for transfer to the host.
            self.dram
                .account_untimed(DramOp::Read, chunk.frames.len() as u64 * crate::addr::PAGE_BYTES);
            let salted_first = Vpn(chunk.first_vpn.0 | ((tenant as u64) << ASID_SHIFT));
            self.l2_tlb.invalidate(salted_first, chunk.pages);
            let frames: Arc<FxHashSet<u64>> =
                Arc::new(chunk.frames.iter().map(|p| p.0).collect());
            self.l2_cache.invalidate_frames(&frames);
            // The L1 side is a lane concern: one shootdown per SM crosses
            // the horizon. Until it lands, that SM may hit stale entries
            // for at most `window` cycles — bounded, shard-count
            // independent staleness.
            for sm in 0..self.cfg.num_sms as u32 {
                self.send(
                    now + self.window,
                    Ev::Shootdown {
                        sm,
                        first_svpn: salted_first.0,
                        pages: chunk.pages,
                        frames: Arc::clone(&frames),
                    },
                );
            }
        }
        self.probe_counter(
            "resident_pages",
            Track::uvm(tenant as u32),
            now,
            self.uvms[tenant].used_frames(),
        );
        false
    }

    /// The frame owner, whichever tenant's region the frame lies in.
    fn frame_owner_any(&self, ppn: Ppn) -> Option<(usize, crate::uvm::FrameOwner)> {
        let tenant = crate::uvm::tenant_of_frame(ppn);
        let uvm = self.uvms.get(tenant)?;
        uvm.frame_owner(ppn).map(|o| (tenant, o))
    }

    /// What the memory controller sees in the stored sector at `pa`.
    fn sector_meta(&mut self, pa: PhysAddr) -> FetchedSector {
        if pa.0 >= PT_BASE {
            return FetchedSector { compressed: false, embedded: None };
        }
        match self.frame_owner_any(pa.ppn()) {
            Some((tenant, owner)) if owner.embedded => {
                let sector = (pa.page_offset() / SECTOR_BYTES) as u32;
                if self.compression.compressible(owner.vpn, sector) {
                    let asid = asid_of(tenant);
                    FetchedSector {
                        compressed: true,
                        embedded: Some(PageMeta { vpn: owner.vpn, asid }),
                    }
                } else {
                    FetchedSector { compressed: false, embedded: None }
                }
            }
            _ => FetchedSector { compressed: false, embedded: None },
        }
    }

    fn record_coverage(&mut self, pages: u64) {
        let bucket = CoverageBucket::of_pages(pages);
        let idx = CoverageBucket::ALL
            .iter()
            .position(|b| *b == bucket)
            .expect("CoverageBucket::ALL enumerates every bucket of_pages can return");
        self.stats.coverage_hits[idx] += 1;
    }
}

// ----------------------------------------------------------------------
// Engine: window loop, worker pool, barriers, checkpoint
// ----------------------------------------------------------------------

/// Ideal-TLB drains carry no speculation; the lane still needs *an*
/// accel reference, satisfied by this inert policy (the shared lane's
/// own box is mutably borrowed during an ideal drain).
static NOSPEC: NoSpeculation = NoSpeculation;

/// The assembled system: shard lanes (per-SM state), the shared lane
/// (L2/walker/DRAM/UVM), and the window loop that advances them under
/// the two-phase horizon barrier.
pub struct Engine<'a> {
    cfg: GpuConfig,
    /// Lookahead window `W`: Phase A drains `[start, start + W)`.
    window: Cycle,
    /// Worker threads for Phase A (1 = serial on the coordinator).
    workers: usize,
    lanes: Vec<ShardLane<'a>>,
    shared: SharedLane<'a>,
    max_cycles: Cycle,
    /// The initial warp-issue events have been seeded (by [`Engine::start`]
    /// or by [`Engine::restore_checkpoint`], whose calendars arrive
    /// mid-flight). Makes [`Engine::run`] compose with both fresh and
    /// restored engines.
    started: bool,
    /// The cycle cap tripped; [`Engine::finish`] skips the
    /// everything-completed accounting.
    timed_out: bool,
    /// Global idle accounting: the last processed cycle across all
    /// domains, and the accumulated strictly-idle cycles between
    /// processed cycles. Folded from the per-domain `times` buffers at
    /// every barrier, so the result is a pure function of the global
    /// event-time set — independent of shard packing and worker count.
    idle_prev: Cycle,
    idle_acc: u64,
    barriers: u64,
    /// `(window, domain)` pairs where a domain processed zero events
    /// while the window processed some: the serial tax (or imbalance)
    /// the worker pool is meant to absorb.
    stalls: u64,
    /// Events moved across the shard/shared edge, counted at delivery.
    exchange_delivered: u64,
    /// Scratch for `merge_idle` (reused across barriers).
    time_merge: Vec<Cycle>,
    /// Checked-mode audit cadence (`invariants` feature): interval in
    /// events, read once at construction, and the countdown to the next
    /// audit. Host-side only — never serialized, so a restored engine
    /// restarts its countdown without affecting simulated state.
    #[cfg(feature = "invariants")]
    audit_every: u64,
    #[cfg(feature = "invariants")]
    until_audit: u64,
    /// Attached probe sink: per-domain logs are replayed into it, in
    /// deterministic domain order, at [`Engine::finish`].
    #[cfg(feature = "probes")]
    sink: Option<Box<dyn crate::probe::Probe>>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now())
            .field("reqs", &self.lanes.iter().map(|l| l.reqs.len()).sum::<usize>())
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    /// Builds an engine from a configuration, TLB models, a speculation
    /// policy, a content model, and a warp program.
    pub fn new(
        cfg: GpuConfig,
        l1_tlbs: Vec<Box<dyn TlbModel>>,
        l2_tlb: Box<dyn TlbModel>,
        accel: Box<dyn TranslationAccel>,
        compression: Box<dyn SectorCompression + 'a>,
        program: Box<dyn WarpProgram + 'a>,
    ) -> Self {
        assert_eq!(l1_tlbs.len(), cfg.num_sms, "one L1 TLB per SM");
        assert!(cfg.tenants >= 1 && cfg.tenants <= cfg.num_sms, "tenants partition the SMs");
        let n = cfg.num_sms;
        // The shard count is a host-side structure knob clamped to the
        // SM count; the simulated event order (and digest) is identical
        // for every value by construction. Ideal-TLB mode resolves
        // translations synchronously against shared state, so it runs
        // on a single lane.
        let shards = if cfg.ideal_tlb { 1 } else { cfg.shards.max(1).min(n) };
        let window = cfg.effective_lookahead();
        let actors = n as u64 + 1;
        // Spatial sharing partitions GPU memory evenly among tenants.
        let mut uvm_cfg = cfg.uvm.clone();
        if cfg.tenants > 1 && uvm_cfg.gpu_memory_bytes != u64::MAX {
            uvm_cfg.gpu_memory_bytes /= cfg.tenants as u64;
        }
        let uvms: Vec<Uvm> =
            (0..cfg.tenants).map(|t| Uvm::for_tenant(uvm_cfg.clone(), cfg.seed, t)).collect();
        // `AVATAR_TRACE_REQ`, parsed once at construction — `trace` sits
        // on the per-event path and must not re-read the environment.
        let trace_req = std::env::var("AVATAR_TRACE_REQ").ok().and_then(|v| v.parse().ok());
        // Worker-pool width: `AVATAR_SHARD_WORKERS` seeds the default;
        // `set_workers` overrides. Purely host-side — any value produces
        // the same digest.
        let workers = std::env::var("AVATAR_SHARD_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1usize)
            .max(1);
        // Lane 0 runs the caller's program box (preserving borrowed
        // programs on the common shards=1 path); further lanes run
        // replicas. Each replica is only ever asked about its own SMs.
        let mut progs: Vec<Box<dyn WarpProgram + 'a>> = Vec::with_capacity(shards);
        progs.push(program);
        while progs.len() < shards {
            let replica: Box<dyn WarpProgram + 'a> = progs[0].clone_box();
            progs.push(replica);
        }
        let mut prog_iter = progs.into_iter();
        let mut tlb_iter = l1_tlbs.into_iter();
        let mut lanes = Vec::with_capacity(shards);
        for s in 0..shards {
            // Contiguous partition agreeing with `shard_of`: lane `s`
            // owns exactly the SMs with `sm * shards / n == s`.
            let lo = (s * n).div_ceil(shards);
            let hi = ((s + 1) * n).div_ceil(shards);
            let count = hi - lo;
            debug_assert!(count > 0, "shard {s} owns no SMs");
            debug_assert!((lo..hi).all(|sm| shard_of(sm, shards, n) == s));
            lanes.push(ShardLane {
                shard: s,
                sm_lo: lo as u32,
                actors,
                trace_req,
                q: EventQueue::new(),
                seqs: vec![0; count],
                sms: (0..count).map(|_| SmState::new(cfg.warps_per_sm)).collect(),
                l1_tlbs: tlb_iter.by_ref().take(count).collect(),
                l1_tlb_ports: (0..count).map(|_| Ports::new(cfg.l1_tlb.ports)).collect(),
                l1_caches: (0..count)
                    .map(|_| SectorCache::new(cfg.l1_cache.lines(), cfg.l1_cache.assoc))
                    .collect(),
                l1_cache_ports: (0..count).map(|_| Ports::new(cfg.l1_cache.ports)).collect(),
                reqs: ReqBank::new(s),
                l1_tlb_mshrs: (0..count).map(|_| MshrFile::new(cfg.l1_tlb.mshr_entries)).collect(),
                tlb_overflow: vec![Vec::new(); count],
                l1_mshrs: (0..count).map(|_| MshrFile::new(cfg.l1_cache.mshr_entries)).collect(),
                l1_mshr_overflow: vec![std::collections::VecDeque::new(); count],
                unguaranteed_waiters: FxHashMap::default(),
                warp_outstanding: vec![0; count * cfg.warps_per_sm],
                warp_issue_time: vec![0; count * cfg.warps_per_sm],
                program: prog_iter.next().expect("one program per lane"),
                stats: Stats::default(),
                outbox: Vec::new(),
                exchange_out: 0,
                coalesce_buf: Vec::new(),
                scratch_keys: Vec::new(),
                times: Vec::new(),
                #[cfg(feature = "probes")]
                log: crate::probe::RecordLog::default(),
                cfg: cfg.clone(),
            });
        }
        let shared = SharedLane {
            window,
            actors,
            trace_req,
            q: EventQueue::new(),
            seq: 0,
            l2_tlb,
            l2_tlb_ports: Ports::new(cfg.l2_tlb.ports),
            l2_cache: SectorCache::new(cfg.l2_cache.lines(), cfg.l2_cache.assoc),
            l2_cache_ports: Ports::new(cfg.l2_cache.ports),
            dram: Dram::new(cfg.dram.clone()),
            walks: PageWalkSystem::new(cfg.walker.clone()),
            uvms,
            accel,
            compression,
            l2_tlb_mshr: MshrFile::new(cfg.l2_tlb.mshr_entries),
            l2_tlb_overflow: Vec::new(),
            l2_mshr: MshrFile::new(cfg.l2_cache.mshr_entries),
            l2_mshr_overflow: std::collections::VecDeque::new(),
            walk_of_vpn: FxHashMap::default(),
            vpn_of_walk: FxHashMap::default(),
            walk_started: FxHashMap::default(),
            pw_overflow: std::collections::VecDeque::new(),
            pending_resolve: FxHashSet::default(),
            stats: Stats::default(),
            outbox: Vec::new(),
            exchange_out: 0,
            times: Vec::new(),
            #[cfg(feature = "probes")]
            log: crate::probe::RecordLog::default(),
            cfg: cfg.clone(),
        };
        Engine {
            window,
            workers,
            lanes,
            shared,
            max_cycles: 2_000_000_000,
            started: false,
            timed_out: false,
            idle_prev: 0,
            idle_acc: 0,
            barriers: 0,
            stalls: 0,
            exchange_delivered: 0,
            time_merge: Vec::new(),
            #[cfg(feature = "invariants")]
            audit_every: crate::invariant::audit_interval(),
            #[cfg(feature = "invariants")]
            until_audit: crate::invariant::audit_interval().max(1),
            #[cfg(feature = "probes")]
            sink: None,
            cfg,
        }
    }

    /// Caps the simulated cycle count (safety valve; the default is ample).
    pub fn set_max_cycles(&mut self, cycles: Cycle) {
        self.max_cycles = cycles;
    }

    /// Sets the Phase-A worker-thread count (overrides
    /// `AVATAR_SHARD_WORKERS`). Host-side: the digest is identical for
    /// every value. Capped at the lane count when the loop runs.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The latest cycle any domain has advanced to.
    fn now(&self) -> Cycle {
        let mut now = self.shared.q.now();
        for lane in &self.lanes {
            now = now.max(lane.q.now());
        }
        now
    }

    /// Inspection access to a tenant's UVM manager.
    pub fn uvm(&self) -> &Uvm {
        &self.shared.uvms[0]
    }

    /// Attaches a probe sink (e.g.
    /// [`ChromeTraceProbe`](crate::trace_export::ChromeTraceProbe)).
    /// Request-level spans are emitted only for warps where
    /// `warp % warp_sample == 0` (0 or 1 keeps every warp); component
    /// spans are never sampled away. Each domain records into its own
    /// log (workers cannot share the sink); the logs are replayed into
    /// the sink in deterministic domain order — and the sink flushed —
    /// when [`Engine::finish`] runs.
    #[cfg(feature = "probes")]
    pub fn attach_probe(&mut self, sink: Box<dyn crate::probe::Probe>, warp_sample: u32) {
        for lane in &mut self.lanes {
            lane.log.arm(warp_sample);
        }
        self.shared.log.arm(warp_sample);
        self.sink = Some(sink);
    }

    /// Seeds the calendars with every warp's first issue event.
    /// Idempotent: later calls — including on a restored engine, whose
    /// calendars arrive mid-flight from the checkpoint — do nothing, so
    /// [`Engine::run`] composes with both fresh and restored engines.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let warps = self.cfg.warps_per_sm as u32;
        for lane in &mut self.lanes {
            for i in 0..lane.sms.len() {
                let sm = lane.sm_lo + i as u32;
                for warp in 0..warps {
                    lane.sched(sm, 0, Ev::WarpIssue { sm, warp });
                }
            }
        }
    }

    /// Processes at least `max_events` calendar events (rounded up to a
    /// whole barrier window). Returns `true` while more events remain,
    /// `false` once every calendar drains or the cycle cap trips — after
    /// which [`Engine::finish`] produces the statistics. Between calls
    /// the engine sits at a barrier boundary, exactly the state
    /// [`Engine::save_checkpoint`] captures; splitting a run across any
    /// sequence of `run_steps` calls (with or without a
    /// checkpoint/restore in between, and whatever the worker count)
    /// cannot change the event order, so the final [`Stats::digest`] is
    /// identical to a straight-through run — the checkpoint and
    /// parallel-shard differential tests' claim.
    ///
    /// Checked mode (`invariants` feature) re-audits every structure at
    /// the configured event cadence (rounded to barriers). The interval
    /// is read once at construction — the audit must not touch the
    /// environment (or anything else nondeterministic) on the event path.
    pub fn run_steps(&mut self, max_events: u64) -> bool {
        let mut done = 0u64;
        while done < max_events {
            // The next window starts at the globally earliest pending
            // event; nothing anywhere means the run is complete.
            let mut start: Option<Cycle> = None;
            for lane in &self.lanes {
                if let Some((t, _)) = lane.q.peek_key() {
                    start = Some(start.map_or(t, |s: Cycle| s.min(t)));
                }
            }
            if let Some((t, _)) = self.shared.q.peek_key() {
                start = Some(start.map_or(t, |s: Cycle| s.min(t)));
            }
            let Some(start) = start else {
                return false;
            };
            if start > self.max_cycles {
                self.timed_out = true;
                return false;
            }
            let horizon = (start + self.window).min(self.max_cycles.saturating_add(1));

            // Phase A: every lane advances independently to the horizon.
            // Cross-domain effects only accumulate in outboxes, and all
            // shard→shared edges carry ≥1 cycle of latency, so the lanes
            // cannot observe each other inside the window — any
            // execution order (serial, or any thread interleaving)
            // produces identical per-lane state.
            let mut total = 0u64;
            let mut zero_domains = 0u64;
            if self.cfg.ideal_tlb {
                // Single lane, synchronous shared access (see drain_ideal).
                let n = self.lanes[0].drain_ideal(horizon, &mut self.shared, &NOSPEC);
                total += n;
                zero_domains += u64::from(n == 0);
            } else if self.workers <= 1 || self.lanes.len() == 1 {
                let accel: &dyn TranslationAccel = &*self.shared.accel;
                for lane in &mut self.lanes {
                    let n = lane.drain(horizon, accel);
                    total += n;
                    zero_domains += u64::from(n == 0);
                }
            } else {
                let accel: &dyn TranslationAccel = &*self.shared.accel;
                let workers = self.workers.min(self.lanes.len());
                let chunk = self.lanes.len().div_ceil(workers);
                let counts = std::thread::scope(|scope| {
                    let mut it = self.lanes.chunks_mut(chunk);
                    let first = it.next();
                    let handles: Vec<_> = it
                        .map(|lanes| {
                            scope.spawn(move || {
                                lanes.iter_mut().map(|l| l.drain(horizon, accel)).collect::<Vec<u64>>()
                            })
                        })
                        .collect();
                    // The coordinator advances the first chunk itself
                    // instead of idling at the join.
                    let mut counts: Vec<u64> = first
                        .map(|lanes| lanes.iter_mut().map(|l| l.drain(horizon, accel)).collect())
                        .unwrap_or_default();
                    for h in handles {
                        match h.join() {
                            Ok(c) => counts.extend(c),
                            // A worker panicked (a simulation bug tripped
                            // an assert): re-raise on the coordinator so
                            // the caller's catch_unwind sees it.
                            Err(p) => std::panic::resume_unwind(p),
                        }
                    }
                    counts
                });
                for &n in &counts {
                    total += n;
                    zero_domains += u64::from(n == 0);
                }
            }

            // Phase B, step 1: deliver lane outboxes in lane order. The
            // (time, seq) key makes the queue order independent of the
            // delivery order anyway; the fixed order keeps the exchange
            // counters and any debug output deterministic too.
            {
                let shared_q = &mut self.shared.q;
                let delivered = &mut self.exchange_delivered;
                for lane in &mut self.lanes {
                    for (t, seq, ev) in lane.outbox.drain(..) {
                        shared_q.schedule_at_seq(t, seq, ev);
                        *delivered += 1;
                    }
                }
            }
            // Phase B, step 2: the shared lane catches up to the same
            // horizon, seeing every +1-cycle lane emission of this window.
            let n = self.shared.drain(horizon);
            total += n;
            zero_domains += u64::from(n == 0);
            // Phase B, step 3: route shared emissions (all timed at or
            // beyond the horizon) back to their owning lanes.
            let mut out = std::mem::take(&mut self.shared.outbox);
            for (t, seq, ev) in out.drain(..) {
                let shard = target_shard(&ev, self.lanes.len(), self.cfg.num_sms);
                self.lanes[shard].q.schedule_at_seq(t, seq, ev);
                self.exchange_delivered += 1;
            }
            self.shared.outbox = out;

            self.barriers += 1;
            if total > 0 {
                self.stalls += zero_domains;
            }
            self.merge_idle();
            done += total;

            #[cfg(feature = "invariants")]
            if self.audit_every != 0 {
                self.until_audit = self.until_audit.saturating_sub(total);
                if self.until_audit == 0 {
                    self.until_audit = self.audit_every.max(1);
                    self.audit_invariants();
                }
            }
        }
        true
    }

    /// Folds the per-domain processed-cycle buffers into the global idle
    /// accumulator. The merged, deduped cycle sequence is a pure
    /// function of the global event set, so the accumulated idle count
    /// is identical for every shard packing and worker count.
    fn merge_idle(&mut self) {
        let mut buf = std::mem::take(&mut self.time_merge);
        for lane in &mut self.lanes {
            buf.append(&mut lane.times);
        }
        buf.append(&mut self.shared.times);
        buf.sort_unstable();
        buf.dedup();
        for &t in &buf {
            self.idle_acc += (t - self.idle_prev).saturating_sub(1);
            self.idle_prev = t;
        }
        buf.clear();
        self.time_merge = buf;
    }

    /// Runs the program to completion and returns the statistics.
    pub fn run(mut self) -> Stats {
        self.start();
        self.run_steps(u64::MAX);
        self.finish()
    }

    /// End-of-run bookkeeping once [`Engine::run_steps`] has returned
    /// `false`: final audit, SM stall accounting, per-domain stats
    /// merge, calendar/DRAM counter harvest, probe replay, and the
    /// everything-completed check. Consumes the engine and returns the
    /// statistics.
    pub fn finish(mut self) -> Stats {
        let timed_out = self.timed_out;
        #[cfg(feature = "invariants")]
        self.audit_invariants();
        self.merge_idle();
        let now = self.now();
        let fast_forward = self.cfg.fast_forward;
        let mut stats = Stats::default();
        for lane in &mut self.lanes {
            for sm in &mut lane.sms {
                sm.finish(now);
            }
            lane.stats.stall_cycles = lane.sms.iter().map(|s| s.stall_cycles).sum();
            stats.merge(&lane.stats);
        }
        stats.merge(&self.shared.stats);
        // Global fields the merge cannot derive. The structure counters
        // (barriers/stalls/exchange/shard_events) are digest-excluded:
        // they describe how the host advanced the calendars, not what
        // the simulated GPU did.
        stats.cycles = now;
        stats.idle_cycles_skipped = if fast_forward { self.idle_acc } else { 0 };
        stats.horizon_barriers = self.barriers;
        stats.horizon_stalls = self.stalls;
        stats.exchange_enqueued =
            self.lanes.iter().map(|l| l.exchange_out).sum::<u64>() + self.shared.exchange_out;
        stats.exchange_dequeued = self.exchange_delivered;
        stats.exchange_bypass = 0;
        stats.shard_events = self
            .lanes
            .iter()
            .map(|l| l.stats.events_processed)
            .chain(std::iter::once(self.shared.stats.events_processed))
            .collect();
        stats.dram_read_bytes = self.shared.dram.read_bytes;
        stats.dram_write_bytes = self.shared.dram.write_bytes;
        stats.dram_row_hits = self.shared.dram.row_hits;
        stats.dram_row_misses = self.shared.dram.row_misses;
        // Per-policy table-activity counters, read once at finish. All
        // zero for policies keeping the trait default, so pre-existing
        // configurations digest identically to the hook-era engine.
        let pc = self.shared.accel.policy_counters();
        stats.policy_installs = pc.installs;
        stats.policy_evictions = pc.evictions;
        stats.policy_hits = pc.hits;
        #[cfg(feature = "probes")]
        {
            stats.dram_service_hist.merge(&self.shared.dram.service_hist);
            if let Some(sink) = self.sink.as_mut() {
                for lane in &mut self.lanes {
                    lane.log.replay_into(sink.as_mut());
                }
                self.shared.log.replay_into(sink.as_mut());
                sink.finish(now);
            }
        }
        // With the calendars drained, every request should have completed
        // and been recycled. Anything left is a lost event. Counted in
        // all builds (so `--features invariants` release runs report it
        // through `Stats::lost_requests` instead of dying); debug builds
        // additionally halt so the bug cannot slip through development.
        if !timed_out {
            let mut lost = 0u64;
            for lane in &self.lanes {
                lane.reqs.for_each(|id, r| {
                    if !r.completed {
                        lost += 1;
                        if cfg!(debug_assertions) {
                            eprintln!(
                                "INCOMPLETE req {}: sm={} pc={:#x} va={:#x} tdone={} spec={:?}",
                                id.slot(),
                                r.sm,
                                r.pc,
                                r.vaddr.0,
                                r.translation_done,
                                r.spec
                            );
                        }
                    }
                });
            }
            stats.lost_requests = lost;
            if cfg!(debug_assertions) {
                assert!(
                    lost == 0 && self.lanes.iter().all(|l| l.reqs.is_empty()),
                    "all sector requests must complete and be freed (lost events?)"
                );
            }
        }
        stats
    }

    /// Serializes the engine's complete mutable state at a barrier
    /// boundary into the versioned checkpoint format (see
    /// [`crate::checkpoint`]). Static geometry — the configuration and
    /// model wiring — is never stored; it is re-supplied by assembling a
    /// fresh engine, and the header carries the configuration's
    /// [`GpuConfig::key_digest`] so restoring onto a
    /// differently-configured engine fails loudly instead of silently
    /// diverging. Host-side scratch (coalescing buffers, trace knobs,
    /// probe sinks, audit cadence, worker count) is likewise omitted:
    /// none of it affects the simulated event order. At a barrier every
    /// outbox and idle-time buffer is empty, so the exchange state
    /// reduces to its counters.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u32(FORMAT_VERSION);
        w.bool(cfg!(feature = "probes"));
        w.u64(self.cfg.key_digest());
        w.usize(self.lanes.len());
        for lane in &self.lanes {
            debug_assert!(
                lane.outbox.is_empty() && lane.times.is_empty(),
                "checkpoint must be taken at a barrier boundary"
            );
            lane.q.save_state(&mut w, &mut enc_ev);
            w.u64_slice(&lane.seqs);
            for sm in &lane.sms {
                sm.save_state(&mut w);
            }
            for t in &lane.l1_tlbs {
                t.save_state(&mut w);
            }
            for p in &lane.l1_tlb_ports {
                p.save_state(&mut w);
            }
            for c in &lane.l1_caches {
                c.save_state(&mut w);
            }
            for p in &lane.l1_cache_ports {
                p.save_state(&mut w);
            }
            lane.reqs.save_state(&mut w, &mut enc_req);
            for m in &lane.l1_tlb_mshrs {
                m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, id| w.u64(id.to_bits()));
            }
            for v in &lane.tlb_overflow {
                w.seq(v.iter(), |w, id| w.u64(id.to_bits()));
            }
            for m in &lane.l1_mshrs {
                m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, id| w.u64(id.to_bits()));
            }
            for dq in &lane.l1_mshr_overflow {
                w.seq(dq.iter(), |w, id| w.u64(id.to_bits()));
            }
            // Hash-map state is serialized in sorted-key order so the
            // bytes — and therefore any digest over them — are
            // independent of insertion history.
            let mut unguaranteed: Vec<(u32, u64)> =
                lane.unguaranteed_waiters.keys().copied().collect();
            unguaranteed.sort_unstable();
            w.usize(unguaranteed.len());
            for key in unguaranteed {
                w.u32(key.0);
                w.u64(key.1);
                let waiters = &lane.unguaranteed_waiters[&key];
                w.seq(waiters.iter(), |w, id| w.u64(id.to_bits()));
            }
            lane.program.save_state(&mut w);
            lane.stats.save_state(&mut w);
            w.u32_slice(&lane.warp_outstanding);
            w.u64_slice(&lane.warp_issue_time);
            w.u64(lane.exchange_out);
        }
        debug_assert!(
            self.shared.outbox.is_empty() && self.shared.times.is_empty(),
            "checkpoint must be taken at a barrier boundary"
        );
        self.shared.q.save_state(&mut w, &mut enc_ev);
        w.u64(self.shared.seq);
        self.shared.l2_tlb.save_state(&mut w);
        self.shared.l2_tlb_ports.save_state(&mut w);
        self.shared.l2_cache.save_state(&mut w);
        self.shared.l2_cache_ports.save_state(&mut w);
        self.shared.dram.save_state(&mut w);
        self.shared.walks.save_state(&mut w);
        w.usize(self.shared.uvms.len());
        for u in &self.shared.uvms {
            u.save_state(&mut w);
        }
        self.shared.accel.save_state(&mut w);
        self.shared.compression.save_state(&mut w);
        self.shared.l2_tlb_mshr.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, sm| w.u32(*sm));
        w.seq(self.shared.l2_tlb_overflow.iter(), |w, &(sm, vpn)| {
            w.u32(sm);
            w.u64(vpn);
        });
        self.shared.l2_mshr.save_state(&mut w, &mut |w, k| w.u64(*k), &mut enc_l2_waiter);
        w.seq(self.shared.l2_mshr_overflow.iter(), |w, &(pa, wt)| {
            w.u64(pa);
            enc_l2_waiter(w, &wt);
        });
        // `vpn_of_walk` is the exact inverse of `walk_of_vpn` (an audited
        // invariant), so only the forward map is stored.
        let mut walk_pairs: Vec<(u64, u64)> =
            self.shared.walk_of_vpn.iter().map(|(&svpn, &walk)| (svpn, walk.0)).collect();
        walk_pairs.sort_unstable();
        w.seq(walk_pairs.iter(), |w, &(svpn, walk)| {
            w.u64(svpn);
            w.u64(walk);
        });
        let mut started_pairs: Vec<(u64, u64)> =
            self.shared.walk_started.iter().map(|(&svpn, &at)| (svpn, at)).collect();
        started_pairs.sort_unstable();
        w.seq(started_pairs.iter(), |w, &(svpn, at)| {
            w.u64(svpn);
            w.u64(at);
        });
        w.seq(self.shared.pw_overflow.iter(), |w, &svpn| w.u64(svpn));
        let mut pending: Vec<(u32, u64)> = self.shared.pending_resolve.iter().copied().collect();
        pending.sort_unstable();
        w.seq(pending.iter(), |w, &(sm, svpn)| {
            w.u32(sm);
            w.u64(svpn);
        });
        self.shared.stats.save_state(&mut w);
        w.u64(self.shared.exchange_out);
        w.u64(self.max_cycles);
        w.bool(self.timed_out);
        w.u64(self.idle_prev);
        w.u64(self.idle_acc);
        w.u64(self.barriers);
        w.u64(self.stalls);
        w.u64(self.exchange_delivered);
        w.into_bytes()
    }

    /// Restores a checkpoint written by [`Engine::save_checkpoint`] onto
    /// a freshly assembled (not yet started) engine built from the *same*
    /// configuration, programs, and policies — including the same shard
    /// count, which shapes the lane partition. On success the engine is
    /// marked started and continues from the checkpointed barrier via
    /// [`Engine::run_steps`]/[`Engine::finish`] (or [`Engine::run`],
    /// whose seeding step skips restored engines). The worker count is
    /// deliberately *not* restored: it is host-side, so a checkpoint
    /// taken under one pool width replays identically under another.
    ///
    /// Every error is hard: a partially restored engine must be
    /// discarded, never run.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CkptError::VersionMismatch { found: version });
        }
        let saved_probes = r.bool()?;
        if saved_probes != cfg!(feature = "probes") {
            return Err(CkptError::FeatureMismatch { saved_probes });
        }
        let saved = r.u64()?;
        let current = self.cfg.key_digest();
        if saved != current {
            return Err(CkptError::ConfigMismatch { saved, current });
        }
        if r.usize()? != self.lanes.len() {
            return Err(CkptError::Corrupt("shard lane count mismatch"));
        }
        for lane in &mut self.lanes {
            lane.q.load_state(&mut r, &mut dec_ev)?;
            r.u64_slice_into(&mut lane.seqs)?;
            for sm in &mut lane.sms {
                sm.load_state(&mut r)?;
            }
            for t in &mut lane.l1_tlbs {
                t.load_state(&mut r)?;
            }
            for p in &mut lane.l1_tlb_ports {
                p.load_state(&mut r)?;
            }
            for c in &mut lane.l1_caches {
                c.load_state(&mut r)?;
            }
            for p in &mut lane.l1_cache_ports {
                p.load_state(&mut r)?;
            }
            lane.reqs.load_state(&mut r, &mut dec_req)?;
            for m in &mut lane.l1_tlb_mshrs {
                m.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u64().map(ReqId::from_bits))?;
            }
            for v in &mut lane.tlb_overflow {
                let n = r.seq_len()?;
                v.clear();
                for _ in 0..n {
                    v.push(ReqId::from_bits(r.u64()?));
                }
            }
            for m in &mut lane.l1_mshrs {
                m.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u64().map(ReqId::from_bits))?;
            }
            for dq in &mut lane.l1_mshr_overflow {
                let n = r.seq_len()?;
                dq.clear();
                for _ in 0..n {
                    dq.push_back(ReqId::from_bits(r.u64()?));
                }
            }
            let n = r.usize()?;
            lane.unguaranteed_waiters.clear();
            for _ in 0..n {
                let key = (r.u32()?, r.u64()?);
                let count = r.seq_len()?;
                let mut waiters = Vec::with_capacity(count);
                for _ in 0..count {
                    waiters.push(ReqId::from_bits(r.u64()?));
                }
                if lane.unguaranteed_waiters.insert(key, waiters).is_some() {
                    return Err(CkptError::Corrupt("repeated unguaranteed-waiter key"));
                }
            }
            lane.program.load_state(&mut r)?;
            lane.stats.load_state(&mut r)?;
            r.u32_slice_into(&mut lane.warp_outstanding)?;
            r.u64_slice_into(&mut lane.warp_issue_time)?;
            lane.exchange_out = r.u64()?;
        }
        self.shared.q.load_state(&mut r, &mut dec_ev)?;
        self.shared.seq = r.u64()?;
        self.shared.l2_tlb.load_state(&mut r)?;
        self.shared.l2_tlb_ports.load_state(&mut r)?;
        self.shared.l2_cache.load_state(&mut r)?;
        self.shared.l2_cache_ports.load_state(&mut r)?;
        self.shared.dram.load_state(&mut r)?;
        self.shared.walks.load_state(&mut r)?;
        if r.usize()? != self.shared.uvms.len() {
            return Err(CkptError::Corrupt("tenant count mismatch"));
        }
        for u in &mut self.shared.uvms {
            u.load_state(&mut r)?;
        }
        self.shared.accel.load_state(&mut r)?;
        self.shared.compression.load_state(&mut r)?;
        self.shared.l2_tlb_mshr.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u32())?;
        let n = r.seq_len()?;
        self.shared.l2_tlb_overflow.clear();
        for _ in 0..n {
            self.shared.l2_tlb_overflow.push((r.u32()?, r.u64()?));
        }
        self.shared.l2_mshr.load_state(&mut r, &mut |r| r.u64(), &mut dec_l2_waiter)?;
        let n = r.seq_len()?;
        self.shared.l2_mshr_overflow.clear();
        for _ in 0..n {
            self.shared.l2_mshr_overflow.push_back((r.u64()?, dec_l2_waiter(&mut r)?));
        }
        let n = r.seq_len()?;
        self.shared.walk_of_vpn.clear();
        self.shared.vpn_of_walk.clear();
        for _ in 0..n {
            let svpn = r.u64()?;
            let walk = WalkId(r.u64()?);
            if self.shared.walk_of_vpn.insert(svpn, walk).is_some() {
                return Err(CkptError::Corrupt("repeated walk page key"));
            }
            if self.shared.vpn_of_walk.insert(walk, Vpn(svpn)).is_some() {
                return Err(CkptError::Corrupt("two pages claim one walk id"));
            }
        }
        let n = r.seq_len()?;
        self.shared.walk_started.clear();
        for _ in 0..n {
            let svpn = r.u64()?;
            let at = r.u64()?;
            if !self.shared.walk_of_vpn.contains_key(&svpn) {
                return Err(CkptError::Corrupt("walk start-time for a page with no live walk"));
            }
            if self.shared.walk_started.insert(svpn, at).is_some() {
                return Err(CkptError::Corrupt("repeated walk start-time key"));
            }
        }
        let n = r.seq_len()?;
        self.shared.pw_overflow.clear();
        for _ in 0..n {
            self.shared.pw_overflow.push_back(r.u64()?);
        }
        let n = r.seq_len()?;
        self.shared.pending_resolve.clear();
        for _ in 0..n {
            let key = (r.u32()?, r.u64()?);
            if !self.shared.pending_resolve.insert(key) {
                return Err(CkptError::Corrupt("repeated pending-resolve key"));
            }
        }
        self.shared.stats.load_state(&mut r)?;
        self.shared.exchange_out = r.u64()?;
        self.max_cycles = r.u64()?;
        self.timed_out = r.bool()?;
        self.idle_prev = r.u64()?;
        self.idle_acc = r.u64()?;
        self.barriers = r.u64()?;
        self.stalls = r.u64()?;
        self.exchange_delivered = r.u64()?;
        if !r.is_exhausted() {
            return Err(CkptError::Corrupt("trailing bytes after checkpoint payload"));
        }
        self.started = true;
        Ok(())
    }

    /// Asserts whole-system consistency: every structure's own audit
    /// (calendars, cache/TLB directories, MSHR files, walker, UVM) plus
    /// the cross-structure invariants only the engine can see — the
    /// walk-to-page maps are mutual inverses, every walk the walker
    /// tracks is known to the shared lane, walk start-times belong to
    /// live walks, each lane's per-warp outstanding counters sum to
    /// exactly its incomplete sector requests, request pin counts match
    /// their stored copies, requests live in the bank of the shard that
    /// owns their SM, and the exchange counters conserve (everything a
    /// domain ever emitted was delivered).
    ///
    /// Read-only and O(total structure size): called at barrier
    /// boundaries, never inside a window. Checked (`invariants` feature)
    /// builds run it every [`crate::invariant::audit_interval`] events
    /// (rounded up to a barrier) and at end of run; tests may call it
    /// directly in any build.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        for lane in &self.lanes {
            lane.q.audit_invariants();
            lane.reqs.audit_invariants();
            for c in &lane.l1_caches {
                c.audit_invariants();
            }
            for t in &lane.l1_tlbs {
                t.audit_invariants();
            }
            for m in &lane.l1_tlb_mshrs {
                m.audit_invariants();
            }
            for m in &lane.l1_mshrs {
                m.audit_invariants();
            }
            assert!(
                lane.outbox.is_empty(),
                "shard {} outbox not drained at the barrier",
                lane.shard
            );

            // Waiter conservation: each warp's outstanding counter drops
            // by one exactly when one of its sector requests completes
            // (fast-path warps allocate no requests and zero their
            // counter at issue), so the sums must agree at every barrier.
            let outstanding: u64 = lane.warp_outstanding.iter().map(|&o| o as u64).sum();
            let mut incomplete = 0u64;
            lane.reqs.for_each(|_, r| {
                if !r.completed {
                    incomplete += 1;
                }
            });
            assert_eq!(
                outstanding, incomplete,
                "shard {}: warp outstanding counters desynchronized from incomplete requests",
                lane.shard
            );

            // Reference conservation: each live request's pin count must
            // equal the stored copies of its id across this lane's
            // calendar, MSHR waiter lists, and overflow queues — and no
            // stored id may be stale. A mismatch here is what would let
            // the slab free (and recycle) a slot that an in-flight event
            // still points at. Request ids never cross the shard/shared
            // edge as pins (shared-domain events carry `(sm, svpn)` keys
            // or unpinned tokens), so the scan is lane-local — except
            // RemoteDone, which is pinned only in ideal mode where it
            // stays on the one lane's own calendar.
            let ideal = self.cfg.ideal_tlb;
            let mut counted: FxHashMap<ReqId, u32> = FxHashMap::default();
            {
                let mut bump = |id: ReqId| *counted.entry(id).or_insert(0) += 1;
                lane.q.for_each_event(|ev| match *ev {
                    Ev::L1TlbResult { req } | Ev::SpecL1Result { req } | Ev::L1Result { req } => {
                        bump(req)
                    }
                    Ev::RemoteDone { req } if ideal => bump(req),
                    _ => {}
                });
                for m in &lane.l1_tlb_mshrs {
                    m.for_each_waiter(|&id| bump(id));
                }
                for m in &lane.l1_mshrs {
                    m.for_each_waiter(|&id| bump(id));
                }
                for v in &lane.tlb_overflow {
                    for &id in v {
                        bump(id);
                    }
                }
                for dq in &lane.l1_mshr_overflow {
                    for &id in dq {
                        bump(id);
                    }
                }
                for v in lane.unguaranteed_waiters.values() {
                    for &id in v {
                        bump(id);
                    }
                }
            }
            for (&id, &n) in &counted {
                assert!(
                    lane.reqs.get(id).is_some(),
                    "stale request id {id:?} still referenced by {n} holder(s)"
                );
            }
            let shards = self.lanes.len();
            let n_sms = self.cfg.num_sms;
            lane.reqs.for_each(|id, r| {
                let stored = counted.get(&id).copied().unwrap_or(0);
                assert_eq!(
                    r.refs, stored,
                    "request {id:?} pin count disagrees with its stored copies"
                );
                assert!(
                    r.refs > 0,
                    "live request {id:?} is unreachable: no event or waiter references it"
                );
                // Per-shard slab accounting: a request must live in the
                // bank of the shard that owns its SM, or request-carrying
                // events would route to a lane whose handler state is
                // foreign.
                assert_eq!(
                    id.shard(),
                    lane.shard,
                    "request {id:?} stored in a foreign shard bank"
                );
                assert_eq!(
                    shard_of(r.sm as usize, shards, n_sms),
                    lane.shard,
                    "request {id:?} for SM {} owned by the wrong lane",
                    r.sm
                );
            });
        }

        self.shared.q.audit_invariants();
        self.shared.l2_cache.audit_invariants();
        self.shared.l2_tlb.audit_invariants();
        self.shared.l2_tlb_mshr.audit_invariants();
        self.shared.l2_mshr.audit_invariants();
        self.shared.walks.audit_invariants();
        for u in &self.shared.uvms {
            u.audit_invariants();
        }
        assert!(self.shared.outbox.is_empty(), "shared outbox not drained at the barrier");

        // The walk maps are mutual inverses (keys are salted VPNs).
        assert_eq!(
            self.shared.walk_of_vpn.len(),
            self.shared.vpn_of_walk.len(),
            "walk maps disagree on live walk count"
        );
        for (&svpn, &walk) in &self.shared.walk_of_vpn {
            let back = self
                .shared
                .vpn_of_walk
                .get(&walk)
                // Audit code: panicking is the whole point. lint:allow(hot-path-panic)
                .unwrap_or_else(|| panic!("walk {} for page {svpn} has no inverse entry", walk.0));
            assert_eq!(back.0, svpn, "walk {} maps back to page {}, not {svpn}", walk.0, back.0);
        }
        for &svpn in self.shared.walk_started.keys() {
            assert!(
                self.shared.walk_of_vpn.contains_key(&svpn),
                "walk start-time recorded for page {svpn} with no live walk"
            );
        }
        for id in self.shared.walks.pending_walk_ids() {
            assert!(
                self.shared.vpn_of_walk.contains_key(&id),
                "walker tracks walk {} unknown to the shared lane",
                id.0
            );
        }
        for &(sm, _) in &self.shared.pending_resolve {
            assert!(
                (sm as usize) < self.cfg.num_sms,
                "pending-resolve entry names nonexistent SM {sm}"
            );
        }

        // Exchange conservation: everything any domain pushed into its
        // outbox was delivered to a calendar at a barrier. A mismatch
        // means a cross-domain event was dropped or double-delivered.
        let emitted =
            self.lanes.iter().map(|l| l.exchange_out).sum::<u64>() + self.shared.exchange_out;
        assert_eq!(
            emitted, self.exchange_delivered,
            "exchange counters desynchronized: a cross-domain event was lost or duplicated"
        );
    }

    /// Deliberately corrupts a lane calendar's free list so checked-mode
    /// tests can prove the audit detects real damage.
    #[cfg(feature = "invariants")]
    pub fn corrupt_event_queue_for_test(&mut self) {
        self.lanes[0].q.corrupt_free_list_for_test();
    }

    /// Deliberately unbalances the exchange conservation counters (a
    /// dropped cross-domain event), the barrier audit's negative-test
    /// hook.
    #[cfg(feature = "invariants")]
    pub fn corrupt_exchange_for_test(&mut self) {
        self.exchange_delivered += 1;
    }
}
