//! The discrete-event simulation engine: drives warps through the TLB
//! hierarchy, caches, page-walk system, DRAM, and the speculative
//! translation machinery.
//!
//! The engine is deliberately policy-free: speculation decisions come from
//! the plugged-in [`TranslationAccel`] and compressibility from the
//! [`SectorCompression`] content model. The baseline, the prior-work TLB
//! designs, and Avatar all run on this same plumbing.

use crate::addr::{translate, PhysAddr, Ppn, VirtAddr, Vpn, SECTOR_BYTES};
use crate::cache::{Probe, SectorCache, SectorFlags};
use crate::checkpoint::{CkptError, Reader, Writer, FORMAT_VERSION, MAGIC};
use crate::config::{Cycle, GpuConfig};
use crate::dram::{Dram, DramOp};
use crate::event::{Domain, ShardRoutable, ShardedCalendar};
use crate::hooks::{
    FetchedSector, PageMeta, SectorCompression, SpecFillAction, SpecFillContext, TranslationAccel,
    ValidationKind,
};
use crate::page_table::PT_BASE;
use crate::port::{MshrFile, MshrGrant, Ports};
use crate::probe::{Phase, SpanPoint, Track};
use crate::reqslab::{ReqId, ShardedReqSlab};
use crate::sm::{coalesce_into, shard_of, SmState, WarpOp, WarpProgram, WarpState};
use crate::stats::{CoverageBucket, SpecOutcome, Stats};
use crate::tlb::{TlbFill, TlbModel};
use crate::uvm::Uvm;
use crate::walker::{PageWalkSystem, WalkId, WalkProgress};
use crate::fxhash::{FxHashMap, FxHashSet};

/// Bit position where the tenant id is folded into TLB/walk keys, so one
/// physical TLB hierarchy holds entries of several address spaces without
/// aliasing (the hardware equivalent of ASID-tagged entries).
const ASID_SHIFT: u32 = 44;

#[derive(Debug, Clone, Copy)]
struct SpecState {
    ppn: Ppn,
    ideal: bool,
    killed: bool,
    /// The request is registered as a waiter on its speculative fetch's
    /// L1 MSHR entry.
    fetch_registered: bool,
}

#[derive(Debug, Clone)]
struct MemReq {
    sm: u32,
    warp: u32,
    pc: u64,
    vaddr: VirtAddr,
    issued: Cycle,
    real_ppn: Option<Ppn>,
    translation_done: bool,
    completed: bool,
    is_store: bool,
    spec: Option<SpecState>,
    /// Stored copies of this request's id (calendar events, MSHR waiter
    /// lists, overflow queues). The slab slot is freed when the request
    /// is completed and the count drops to zero — never earlier, because
    /// e.g. `l1_fill` reads `completed` through still-live waiter copies.
    refs: u32,
    /// Lifecycle phase currently charged for this request's wait.
    #[cfg(feature = "probes")]
    phase: Phase,
    /// Cycle the current phase was entered (attribution anchor).
    #[cfg(feature = "probes")]
    phase_entered: Cycle,
    /// Cycles already attributed across earlier phases; at completion
    /// this telescopes to exactly `now - issued` (conservation check).
    #[cfg(feature = "probes")]
    phase_acc: u64,
    /// Cycle the speculative fetch registered (validation-latency anchor).
    #[cfg(feature = "probes")]
    spec_started: Cycle,
}

impl MemReq {
    fn vpn(&self) -> Vpn {
        self.vaddr.vpn()
    }

    fn spec_pa(&self) -> Option<PhysAddr> {
        self.spec.map(|s| translate(self.vaddr, s.ppn))
    }

    fn real_pa(&self) -> Option<PhysAddr> {
        self.real_ppn.map(|p| translate(self.vaddr, p))
    }
}

/// Waiter kinds on the shared L2 cache MSHRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2Waiter {
    Sector { sm: u32 },
    Walk { walk: WalkId },
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    WarpIssue { sm: u32, warp: u32 },
    L1TlbResult { req: ReqId },
    L2TlbResult { sm: u32, vpn: u64 },
    WalkL2 { walk: WalkId, pa: u64 },
    SpecL1Result { req: ReqId },
    L1Result { req: ReqId },
    L2Access { sm: u32, pa: u64 },
    DramDone { pa: u64 },
    L1Fill { sm: u32, pa: u64 },
    RemoteDone { req: ReqId },
    /// Evented twin of the inline fast path (`inline_hit_path` off): one
    /// sector of a fully-hitting warp completing at its computed cycle.
    FastComplete { sm: u32, warp: u32, last: bool },
}

impl ShardRoutable for Ev {
    fn domain(&self, shards: u32, num_sms: u32) -> Domain {
        match *self {
            // SM-keyed events: warp issue, L1 fills, and fast-path
            // completions run against one SM's warps/L1 structures.
            Ev::WarpIssue { sm, .. } | Ev::L1Fill { sm, .. } | Ev::FastComplete { sm, .. } => {
                Domain::Shard(sm * shards / num_sms)
            }
            // Request-carrying events: the owning shard rides in the
            // ReqId's tag bits, so routing needs no slab lookup.
            Ev::L1TlbResult { req }
            | Ev::SpecL1Result { req }
            | Ev::L1Result { req }
            | Ev::RemoteDone { req } => Domain::Shard(req.shard() as u32),
            // Shared-hierarchy events: L2 TLB, walker steps, L2 cache,
            // and DRAM completions.
            Ev::L2TlbResult { .. }
            | Ev::WalkL2 { .. }
            | Ev::L2Access { .. }
            | Ev::DramDone { .. } => Domain::Shared,
        }
    }
}

/// Encodes one calendar event for a checkpoint (tag byte + fields;
/// request ids as their packed slot/generation bits).
fn enc_ev(w: &mut Writer, ev: &Ev) {
    match *ev {
        Ev::WarpIssue { sm, warp } => {
            w.u8(0);
            w.u32(sm);
            w.u32(warp);
        }
        Ev::L1TlbResult { req } => {
            w.u8(1);
            w.u64(req.to_bits());
        }
        Ev::L2TlbResult { sm, vpn } => {
            w.u8(2);
            w.u32(sm);
            w.u64(vpn);
        }
        Ev::WalkL2 { walk, pa } => {
            w.u8(3);
            w.u64(walk.0);
            w.u64(pa);
        }
        Ev::SpecL1Result { req } => {
            w.u8(4);
            w.u64(req.to_bits());
        }
        Ev::L1Result { req } => {
            w.u8(5);
            w.u64(req.to_bits());
        }
        Ev::L2Access { sm, pa } => {
            w.u8(6);
            w.u32(sm);
            w.u64(pa);
        }
        Ev::DramDone { pa } => {
            w.u8(7);
            w.u64(pa);
        }
        Ev::L1Fill { sm, pa } => {
            w.u8(8);
            w.u32(sm);
            w.u64(pa);
        }
        Ev::RemoteDone { req } => {
            w.u8(9);
            w.u64(req.to_bits());
        }
        Ev::FastComplete { sm, warp, last } => {
            w.u8(10);
            w.u32(sm);
            w.u32(warp);
            w.bool(last);
        }
    }
}

/// Decodes one calendar event written by [`enc_ev`].
fn dec_ev(r: &mut Reader<'_>) -> Result<Ev, CkptError> {
    Ok(match r.u8()? {
        0 => Ev::WarpIssue { sm: r.u32()?, warp: r.u32()? },
        1 => Ev::L1TlbResult { req: ReqId::from_bits(r.u64()?) },
        2 => Ev::L2TlbResult { sm: r.u32()?, vpn: r.u64()? },
        3 => Ev::WalkL2 { walk: WalkId(r.u64()?), pa: r.u64()? },
        4 => Ev::SpecL1Result { req: ReqId::from_bits(r.u64()?) },
        5 => Ev::L1Result { req: ReqId::from_bits(r.u64()?) },
        6 => Ev::L2Access { sm: r.u32()?, pa: r.u64()? },
        7 => Ev::DramDone { pa: r.u64()? },
        8 => Ev::L1Fill { sm: r.u32()?, pa: r.u64()? },
        9 => Ev::RemoteDone { req: ReqId::from_bits(r.u64()?) },
        10 => Ev::FastComplete { sm: r.u32()?, warp: r.u32()?, last: r.bool()? },
        _ => return Err(CkptError::Corrupt("unknown calendar event tag")),
    })
}

/// Encodes one L2-MSHR waiter for a checkpoint.
fn enc_l2_waiter(w: &mut Writer, wt: &L2Waiter) {
    match *wt {
        L2Waiter::Sector { sm } => {
            w.u8(0);
            w.u32(sm);
        }
        L2Waiter::Walk { walk } => {
            w.u8(1);
            w.u64(walk.0);
        }
    }
}

/// Decodes one L2-MSHR waiter written by [`enc_l2_waiter`].
fn dec_l2_waiter(r: &mut Reader<'_>) -> Result<L2Waiter, CkptError> {
    Ok(match r.u8()? {
        0 => L2Waiter::Sector { sm: r.u32()? },
        1 => L2Waiter::Walk { walk: WalkId(r.u64()?) },
        _ => return Err(CkptError::Corrupt("unknown L2 waiter tag")),
    })
}

/// Encodes one in-flight request for a checkpoint, every field in
/// declaration order. The probe-attribution fields exist only under the
/// `probes` feature; the checkpoint header's feature flag guarantees the
/// saving and restoring builds agree on the layout.
fn enc_req(w: &mut Writer, req: &MemReq) {
    w.u32(req.sm);
    w.u32(req.warp);
    w.u64(req.pc);
    w.u64(req.vaddr.0);
    w.u64(req.issued);
    w.opt_u64(req.real_ppn.map(|p| p.0));
    w.bool(req.translation_done);
    w.bool(req.completed);
    w.bool(req.is_store);
    match req.spec {
        None => w.bool(false),
        Some(s) => {
            w.bool(true);
            w.u64(s.ppn.0);
            w.bool(s.ideal);
            w.bool(s.killed);
            w.bool(s.fetch_registered);
        }
    }
    w.u32(req.refs);
    #[cfg(feature = "probes")]
    {
        w.u8(req.phase as u8);
        w.u64(req.phase_entered);
        w.u64(req.phase_acc);
        w.u64(req.spec_started);
    }
}

/// Decodes one in-flight request written by [`enc_req`].
fn dec_req(r: &mut Reader<'_>) -> Result<MemReq, CkptError> {
    Ok(MemReq {
        sm: r.u32()?,
        warp: r.u32()?,
        pc: r.u64()?,
        vaddr: VirtAddr(r.u64()?),
        issued: r.u64()?,
        real_ppn: r.opt_u64()?.map(Ppn),
        translation_done: r.bool()?,
        completed: r.bool()?,
        is_store: r.bool()?,
        spec: if r.bool()? {
            Some(SpecState {
                ppn: Ppn(r.u64()?),
                ideal: r.bool()?,
                killed: r.bool()?,
                fetch_registered: r.bool()?,
            })
        } else {
            None
        },
        refs: r.u32()?,
        #[cfg(feature = "probes")]
        phase: {
            let idx = r.u8()? as usize;
            *Phase::ALL
                .get(idx)
                .ok_or(CkptError::Corrupt("request phase tag out of range"))?
        },
        #[cfg(feature = "probes")]
        phase_entered: r.u64()?,
        #[cfg(feature = "probes")]
        phase_acc: r.u64()?,
        #[cfg(feature = "probes")]
        spec_started: r.u64()?,
    })
}

/// The assembled system: all hardware structures plus the plugged policies.
pub struct Engine<'a> {
    cfg: GpuConfig,
    q: ShardedCalendar<Ev>,
    sms: Vec<SmState>,
    l1_tlbs: Vec<Box<dyn TlbModel>>,
    l2_tlb: Box<dyn TlbModel>,
    l1_tlb_ports: Vec<Ports>,
    l2_tlb_ports: Ports,
    l1_caches: Vec<SectorCache>,
    l2_cache: SectorCache,
    l1_cache_ports: Vec<Ports>,
    l2_cache_ports: Ports,
    dram: Dram,
    walks: PageWalkSystem,
    /// One UVM manager per tenant (index = tenant id).
    uvms: Vec<Uvm>,
    accel: Box<dyn TranslationAccel>,
    compression: Box<dyn SectorCompression + 'a>,
    program: Box<dyn WarpProgram + 'a>,
    stats: Stats,

    reqs: ShardedReqSlab<MemReq>,
    l1_tlb_mshrs: Vec<MshrFile<u64, ReqId>>,
    // Per-SM retry queues: the outer Vec is fixed at SM count and the
    // inner ones are drained every retry event, so this never becomes a
    // per-element hot structure. lint:allow(vec-vec)
    tlb_overflow: Vec<Vec<ReqId>>,
    l2_tlb_mshr: MshrFile<u64, u32>,
    l2_tlb_overflow: Vec<(u32, u64)>,
    l1_mshrs: Vec<MshrFile<u64, ReqId>>,
    l1_mshr_overflow: Vec<std::collections::VecDeque<ReqId>>,
    l2_mshr: MshrFile<u64, L2Waiter>,
    l2_mshr_overflow: std::collections::VecDeque<(u64, L2Waiter)>,
    /// Requests that found a present-but-unguaranteed sector and wait for
    /// its validation outcome instead of duplicating the fetch.
    unguaranteed_waiters: FxHashMap<(u32, u64), Vec<ReqId>>,
    walk_of_vpn: FxHashMap<u64, WalkId>,
    vpn_of_walk: FxHashMap<WalkId, Vpn>,
    walk_started: FxHashMap<u64, Cycle>,
    pw_overflow: std::collections::VecDeque<u64>,
    /// Scratch for the coalescer: reused across warp instructions so the
    /// issue loop does not allocate in steady state.
    coalesce_buf: Vec<VirtAddr>,
    /// Scratch key list for shootdown wakes (reused, see
    /// `wake_all_unguaranteed`).
    scratch_keys: Vec<u64>,

    warp_outstanding: Vec<u32>,
    warp_issue_time: Vec<Cycle>,
    max_cycles: Cycle,
    /// The initial warp-issue events have been seeded (by [`Engine::start`]
    /// or by [`Engine::restore_checkpoint`], whose calendar arrives
    /// mid-flight). Makes [`Engine::run`] compose with both fresh and
    /// restored engines.
    started: bool,
    /// The cycle cap tripped; [`Engine::finish`] skips the
    /// everything-completed accounting.
    timed_out: bool,
    /// Checked-mode audit cadence (`invariants` feature): interval in
    /// events, read once at construction, and the countdown to the next
    /// audit. Host-side only — never serialized, so a restored engine
    /// restarts its countdown without affecting simulated state.
    #[cfg(feature = "invariants")]
    audit_every: u64,
    #[cfg(feature = "invariants")]
    until_audit: u64,
    /// `AVATAR_TRACE_REQ`, parsed once at construction — `trace` sits on
    /// the per-event path and must not re-read the environment. Matches
    /// requests by slab slot index (slots recycle, so one trace value may
    /// follow several requests over a run).
    trace_req: Option<u32>,
    /// Observability hub: forwards spans/instants to an attached
    /// [`crate::probe::Probe`] sink (no-op without one) and feeds the
    /// probe-fed `Stats` fields. Exists only under the `probes` feature;
    /// default builds carry no probe state or call sites at all.
    #[cfg(feature = "probes")]
    probe: crate::probe::ProbeHub,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.q.now())
            .field("reqs", &self.reqs.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Engine<'a> {
    /// Builds an engine from a configuration, TLB models, a speculation
    /// policy, a content model, and a warp program.
    pub fn new(
        cfg: GpuConfig,
        l1_tlbs: Vec<Box<dyn TlbModel>>,
        l2_tlb: Box<dyn TlbModel>,
        accel: Box<dyn TranslationAccel>,
        compression: Box<dyn SectorCompression + 'a>,
        program: Box<dyn WarpProgram + 'a>,
    ) -> Self {
        assert_eq!(l1_tlbs.len(), cfg.num_sms, "one L1 TLB per SM");
        assert!(cfg.tenants >= 1 && cfg.tenants <= cfg.num_sms, "tenants partition the SMs");
        let n = cfg.num_sms;
        // Spatial sharing partitions GPU memory evenly among tenants.
        let mut uvm_cfg = cfg.uvm.clone();
        if cfg.tenants > 1 && uvm_cfg.gpu_memory_bytes != u64::MAX {
            uvm_cfg.gpu_memory_bytes /= cfg.tenants as u64;
        }
        let uvms: Vec<Uvm> = (0..cfg.tenants)
            .map(|t| Uvm::for_tenant(uvm_cfg.clone(), cfg.seed, t))
            .collect();
        // The shard count is a host-side structure knob: the calendar
        // clamps it to the SM count, and the simulated event order (and
        // digest) is identical for every value by construction.
        let mut q = ShardedCalendar::new(cfg.shards, n, cfg.effective_lookahead());
        q.set_fast_forward(cfg.fast_forward);
        let shards = q.shards();
        Engine {
            q,
            sms: (0..n).map(|_| SmState::new(cfg.warps_per_sm)).collect(),
            l1_tlb_ports: (0..n).map(|_| Ports::new(cfg.l1_tlb.ports)).collect(),
            l2_tlb_ports: Ports::new(cfg.l2_tlb.ports),
            l1_caches: (0..n)
                .map(|_| SectorCache::new(cfg.l1_cache.lines(), cfg.l1_cache.assoc))
                .collect(),
            l2_cache: SectorCache::new(cfg.l2_cache.lines(), cfg.l2_cache.assoc),
            l1_cache_ports: (0..n).map(|_| Ports::new(cfg.l1_cache.ports)).collect(),
            l2_cache_ports: Ports::new(cfg.l2_cache.ports),
            dram: Dram::new(cfg.dram.clone()),
            walks: PageWalkSystem::new(cfg.walker.clone()),
            uvms,
            accel,
            compression,
            program,
            stats: Stats::default(),
            reqs: ShardedReqSlab::new(shards),
            l1_tlb_mshrs: (0..n).map(|_| MshrFile::new(cfg.l1_tlb.mshr_entries)).collect(),
            tlb_overflow: vec![Vec::new(); n],
            l2_tlb_mshr: MshrFile::new(cfg.l2_tlb.mshr_entries),
            l2_tlb_overflow: Vec::new(),
            l1_mshrs: (0..n).map(|_| MshrFile::new(cfg.l1_cache.mshr_entries)).collect(),
            l1_mshr_overflow: vec![std::collections::VecDeque::new(); n],
            l2_mshr: MshrFile::new(cfg.l2_cache.mshr_entries),
            l2_mshr_overflow: std::collections::VecDeque::new(),
            unguaranteed_waiters: FxHashMap::default(),
            walk_of_vpn: FxHashMap::default(),
            vpn_of_walk: FxHashMap::default(),
            walk_started: FxHashMap::default(),
            pw_overflow: std::collections::VecDeque::new(),
            coalesce_buf: Vec::new(),
            scratch_keys: Vec::new(),
            warp_outstanding: vec![0; n * cfg.warps_per_sm],
            warp_issue_time: vec![0; n * cfg.warps_per_sm],
            max_cycles: 2_000_000_000,
            started: false,
            timed_out: false,
            #[cfg(feature = "invariants")]
            audit_every: crate::invariant::audit_interval(),
            #[cfg(feature = "invariants")]
            until_audit: crate::invariant::audit_interval().max(1),
            trace_req: std::env::var("AVATAR_TRACE_REQ").ok().and_then(|v| v.parse().ok()),
            #[cfg(feature = "probes")]
            probe: crate::probe::ProbeHub::default(),
            l1_tlbs,
            l2_tlb,
            cfg,
        }
    }

    /// Caps the simulated cycle count (safety valve; the default is ample).
    pub fn set_max_cycles(&mut self, cycles: Cycle) {
        self.max_cycles = cycles;
    }

    fn trace(&self, id: ReqId, msg: &str) {
        if self.trace_req == Some(id.slot()) {
            eprintln!("[req {} @ {}] {msg}", id.slot(), self.q.now());
        }
    }

    // ------------------------------------------------------------------
    // Observability (`probes` feature)
    //
    // Every probe helper has an empty `#[inline(always)]` twin for the
    // default build, so the call sites below compile away entirely and
    // the hot path carries no probe code when the feature is off.
    // ------------------------------------------------------------------

    /// Attaches a probe sink (e.g.
    /// [`ChromeTraceProbe`](crate::trace_export::ChromeTraceProbe)).
    /// Request-level spans are emitted only for warps where
    /// `warp % warp_sample == 0` (0 or 1 keeps every warp); component
    /// spans are never sampled away. The sink is flushed when
    /// [`Engine::run`] finishes.
    #[cfg(feature = "probes")]
    pub fn attach_probe(&mut self, sink: Box<dyn crate::probe::Probe>, warp_sample: u32) {
        // Under a sharded calendar, group spans into per-shard streams
        // and merge them in shard order at export, so the trace layout
        // follows the domain partition (and stays a pure function of
        // the deterministic pop sequence).
        let shards = self.q.shards();
        let sink = if shards > 1 {
            Box::new(crate::probe::ShardMergeProbe::new(sink, shards, self.cfg.num_sms))
        } else {
            sink
        };
        self.probe.attach(sink, warp_sample);
    }

    /// Moves `id` into phase `next`, attributing the cycles since the
    /// last transition to the phase being left and emitting it as a span
    /// when a sink is attached. Re-entering the current phase is
    /// harmless: it attributes and re-anchors.
    #[cfg(feature = "probes")]
    fn probe_phase(&mut self, now: Cycle, id: ReqId, next: Phase) {
        let (sm, warp, prev, entered) = {
            let r = self.req_mut(id);
            let prev = r.phase;
            let entered = r.phase_entered;
            r.phase_acc += now - entered;
            r.phase = next;
            r.phase_entered = now;
            (r.sm, r.warp, prev, entered)
        };
        self.stats.latency_breakdown.add(prev, now - entered);
        if self.probe.is_active() && self.probe.sampled(warp) && now > entered {
            self.probe.span(
                SpanPoint::Phase(prev),
                Track::sm_warp(sm, warp),
                entered,
                now,
                id.slot() as u64,
            );
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_phase(&mut self, _now: Cycle, _id: ReqId, _next: Phase) {}

    /// Final attribution for a completing request: charges the tail to
    /// the current phase, counts the sector, and checks per-request
    /// conservation — the telescoped phase sums must equal the request's
    /// end-to-end latency exactly.
    #[cfg(feature = "probes")]
    fn probe_complete(&mut self, now: Cycle, id: ReqId) {
        let (sm, warp, phase, entered) = {
            let r = self.req_mut(id);
            r.phase_acc += now - r.phase_entered;
            (r.sm, r.warp, r.phase, r.phase_entered)
        };
        self.stats.latency_breakdown.add(phase, now - entered);
        self.stats.latency_breakdown.sectors += 1;
        #[cfg(feature = "invariants")]
        {
            let r = self.req(id);
            crate::debug_invariant!(
                r.phase_acc == now - r.issued,
                "phase attribution lost cycles: attributed {}, end-to-end {}",
                r.phase_acc,
                now - r.issued
            );
        }
        if self.probe.is_active() && self.probe.sampled(warp) && now > entered {
            self.probe.span(
                SpanPoint::Phase(phase),
                Track::sm_warp(sm, warp),
                entered,
                now,
                id.slot() as u64,
            );
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_complete(&mut self, _now: Cycle, _id: ReqId) {}

    /// Emits a component-side complete span (never warp-sampled).
    #[cfg(feature = "probes")]
    fn probe_span(&mut self, point: SpanPoint, track: Track, start: Cycle, end: Cycle, arg: u64) {
        self.probe.span(point, track, start, end, arg);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_span(
        &mut self,
        _point: SpanPoint,
        _track: Track,
        _start: Cycle,
        _end: Cycle,
        _arg: u64,
    ) {
    }

    /// Emits a zero-duration component event.
    #[cfg(feature = "probes")]
    fn probe_instant(&mut self, point: SpanPoint, track: Track, at: Cycle, arg: u64) {
        self.probe.instant(point, track, at, arg);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_instant(&mut self, _point: SpanPoint, _track: Track, _at: Cycle, _arg: u64) {}

    /// Emits a counter sample on a component track.
    #[cfg(feature = "probes")]
    fn probe_counter(&mut self, name: &'static str, track: Track, at: Cycle, value: u64) {
        self.probe.counter(name, track, at, value);
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_counter(&mut self, _name: &'static str, _track: Track, _at: Cycle, _value: u64) {}

    /// Records a structural-hazard wait (port arbitration or walk-buffer
    /// queueing) in the queue-latency histogram. Zero waits are skipped —
    /// the histogram answers "when a request queued, for how long?".
    #[cfg(feature = "probes")]
    fn probe_queue_wait(&mut self, wait: u64) {
        if wait > 0 {
            self.stats.queue_latency_hist.add(wait);
        }
    }

    #[cfg(not(feature = "probes"))]
    #[inline(always)]
    fn probe_queue_wait(&mut self, _wait: u64) {}

    /// The live request behind `id`.
    ///
    /// Panics on a stale id: a request was freed while a copy of its id
    /// was still stored somewhere — exactly the bug the reference counts
    /// exist to prevent, so it must never be survivable.
    fn req(&self, id: ReqId) -> &MemReq {
        self.reqs.get(id).expect("stale ReqId: request freed while a reference was still live")
    }

    fn req_mut(&mut self, id: ReqId) -> &mut MemReq {
        self.reqs.get_mut(id).expect("stale ReqId: request freed while a reference was still live")
    }

    /// Records that a copy of `id` was stored — in a calendar event, an
    /// MSHR waiter list, or an overflow queue. Every stored copy pins the
    /// slab slot until [`Self::req_unref`] consumes it.
    fn req_ref(&mut self, id: ReqId) {
        self.req_mut(id).refs += 1;
    }

    /// Consumes one stored copy of `id`, freeing (and recycling) the slab
    /// slot once the request is completed and no copies remain.
    fn req_unref(&mut self, id: ReqId) {
        let r = self.req_mut(id);
        crate::debug_invariant!(r.refs > 0, "unbalanced request unref");
        r.refs -= 1;
        if r.refs == 0 && r.completed {
            self.reqs.remove(id);
        }
    }

    fn warp_slot(&self, sm: u32, warp: u32) -> usize {
        sm as usize * self.cfg.warps_per_sm + warp as usize
    }

    /// The calendar shard owning an SM (0 for everything when the
    /// calendar is unsharded).
    fn shard_for_sm(&self, sm: u32) -> usize {
        shard_of(sm as usize, self.q.shards(), self.cfg.num_sms)
    }

    /// The tenant an SM belongs to (contiguous spatial partitioning).
    fn tenant_of_sm(&self, sm: u32) -> usize {
        sm as usize * self.cfg.tenants / self.cfg.num_sms
    }

    fn asid_of(&self, tenant: usize) -> u16 {
        tenant as u16 + 1
    }

    /// Folds the tenant into a TLB/walk key (ASID tagging).
    fn salt(&self, tenant: usize, vpn: Vpn) -> u64 {
        debug_assert!(vpn.0 < 1 << ASID_SHIFT);
        vpn.0 | ((tenant as u64) << ASID_SHIFT)
    }

    fn unsalt(svpn: u64) -> Vpn {
        Vpn(svpn & ((1 << ASID_SHIFT) - 1))
    }

    fn tenant_of_svpn(svpn: u64) -> usize {
        (svpn >> ASID_SHIFT) as usize
    }

    /// Salts a contiguity run so its reach stays within the tenant's key
    /// space.
    fn salt_run(&self, tenant: usize, run: Option<crate::tlb::ContigRun>) -> Option<crate::tlb::ContigRun> {
        run.map(|r| crate::tlb::ContigRun {
            start_vpn: self.salt(tenant, Vpn(r.start_vpn)),
            ..r
        })
    }

    /// Inspection access to a tenant's UVM manager.
    pub fn uvm(&self) -> &Uvm {
        &self.uvms[0]
    }

    /// Seeds the calendar with every warp's first issue event. Idempotent:
    /// later calls — including on a restored engine, whose calendar
    /// arrives mid-flight from the checkpoint — do nothing, so
    /// [`Engine::run`] composes with both fresh and restored engines.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for sm in 0..self.cfg.num_sms as u32 {
            for warp in 0..self.cfg.warps_per_sm as u32 {
                self.q.schedule(0, Ev::WarpIssue { sm, warp });
            }
        }
    }

    /// Processes up to `max_events` calendar events. Returns `true` while
    /// more events remain, `false` once the calendar drains or the cycle
    /// cap trips — after which [`Engine::finish`] produces the
    /// statistics. Between calls the engine sits at an event boundary,
    /// exactly the state [`Engine::save_checkpoint`] captures; splitting
    /// a run across any sequence of `run_steps` calls (with or without a
    /// checkpoint/restore in between) cannot change the event order, so
    /// the final [`Stats::digest`] is identical to a straight-through
    /// run — the checkpoint differential test's claim.
    ///
    /// Checked mode (`invariants` feature) re-audits every structure at
    /// the configured event cadence. The interval is read once at
    /// construction — the audit must not touch the environment (or
    /// anything else nondeterministic) on the event path.
    pub fn run_steps(&mut self, max_events: u64) -> bool {
        let mut left = max_events;
        while left > 0 {
            let Some((now, ev)) = self.q.pop() else {
                return false;
            };
            if now > self.max_cycles {
                self.timed_out = true;
                return false;
            }
            self.stats.events_processed += 1;
            self.handle(now, ev);
            #[cfg(feature = "invariants")]
            if self.audit_every != 0 {
                self.until_audit -= 1;
                if self.until_audit == 0 {
                    self.until_audit = self.audit_every;
                    self.audit_invariants();
                }
            }
            left -= 1;
        }
        true
    }

    /// Runs the program to completion and returns the statistics.
    pub fn run(mut self) -> Stats {
        self.start();
        self.run_steps(u64::MAX);
        self.finish()
    }

    /// End-of-run bookkeeping once [`Engine::run_steps`] has returned
    /// `false`: final audit, SM stall accounting, calendar/DRAM counter
    /// harvest, and the everything-completed check. Consumes the engine
    /// and returns the statistics.
    pub fn finish(mut self) -> Stats {
        let timed_out = self.timed_out;
        #[cfg(feature = "invariants")]
        self.audit_invariants();
        let now = self.q.now();
        for sm in &mut self.sms {
            sm.finish(now);
        }
        self.stats.cycles = now;
        self.stats.idle_cycles_skipped = self.q.idle_cycles_skipped();
        self.stats.stall_cycles = self.sms.iter().map(|s| s.stall_cycles).sum();
        // Sharded-calendar structure counters (all zero — and the event
        // vector empty — on the single-calendar path). Digest-excluded:
        // they describe how the host advanced the calendar, not what the
        // simulated GPU did.
        self.stats.horizon_barriers = self.q.horizon_barriers();
        self.stats.horizon_stalls = self.q.horizon_stalls();
        self.stats.exchange_enqueued = self.q.exchange_enqueued();
        self.stats.exchange_dequeued = self.q.exchange_dequeued();
        self.stats.exchange_bypass = self.q.exchange_bypass();
        self.stats.shard_events = self.q.domain_event_counts().to_vec();
        self.stats.dram_read_bytes = self.dram.read_bytes;
        self.stats.dram_write_bytes = self.dram.write_bytes;
        self.stats.dram_row_hits = self.dram.row_hits;
        self.stats.dram_row_misses = self.dram.row_misses;
        #[cfg(feature = "probes")]
        {
            self.stats.dram_service_hist.merge(&self.dram.service_hist);
            self.probe.finish(now);
        }
        // With the calendar drained, every request should have completed
        // and been recycled. Anything left is a lost event. Counted in
        // all builds (so `--features invariants` release runs report it
        // through `Stats::lost_requests` instead of dying); debug builds
        // additionally halt so the bug cannot slip through development.
        if !timed_out {
            let mut lost = 0u64;
            self.reqs.for_each(|id, r| {
                if !r.completed {
                    lost += 1;
                    if cfg!(debug_assertions) {
                        eprintln!(
                            "INCOMPLETE req {}: sm={} pc={:#x} va={:#x} tdone={} spec={:?}",
                            id.slot(),
                            r.sm,
                            r.pc,
                            r.vaddr.0,
                            r.translation_done,
                            r.spec
                        );
                    }
                }
            });
            self.stats.lost_requests = lost;
            if cfg!(debug_assertions) {
                assert!(
                    lost == 0 && self.reqs.is_empty(),
                    "all sector requests must complete and be freed (lost events?)"
                );
            }
        }
        self.stats
    }

    /// Serializes the engine's complete mutable state at an event
    /// boundary into the versioned checkpoint format (see
    /// [`crate::checkpoint`]). Static geometry — the configuration and
    /// model wiring — is never stored; it is re-supplied by assembling a
    /// fresh engine, and the header carries the configuration's
    /// [`GpuConfig::key_digest`] so restoring onto a
    /// differently-configured engine fails loudly instead of silently
    /// diverging. Host-side scratch (coalescing buffers, trace knobs,
    /// probe sinks, audit cadence) is likewise omitted: none of it
    /// affects the simulated event order.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u32(FORMAT_VERSION);
        w.bool(cfg!(feature = "probes"));
        w.u64(self.cfg.key_digest());
        self.q.save_state(&mut w, &mut enc_ev);
        w.usize(self.sms.len());
        for sm in &self.sms {
            sm.save_state(&mut w);
        }
        for t in &self.l1_tlbs {
            t.save_state(&mut w);
        }
        self.l2_tlb.save_state(&mut w);
        for p in &self.l1_tlb_ports {
            p.save_state(&mut w);
        }
        self.l2_tlb_ports.save_state(&mut w);
        for c in &self.l1_caches {
            c.save_state(&mut w);
        }
        self.l2_cache.save_state(&mut w);
        for p in &self.l1_cache_ports {
            p.save_state(&mut w);
        }
        self.l2_cache_ports.save_state(&mut w);
        self.dram.save_state(&mut w);
        self.walks.save_state(&mut w);
        w.usize(self.uvms.len());
        for u in &self.uvms {
            u.save_state(&mut w);
        }
        self.accel.save_state(&mut w);
        self.compression.save_state(&mut w);
        self.program.save_state(&mut w);
        self.stats.save_state(&mut w);
        self.reqs.save_state(&mut w, &mut enc_req);
        w.usize(self.l1_tlb_mshrs.len());
        for m in &self.l1_tlb_mshrs {
            m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, id| w.u64(id.to_bits()));
        }
        w.usize(self.tlb_overflow.len());
        for v in &self.tlb_overflow {
            w.seq(v.iter(), |w, id| w.u64(id.to_bits()));
        }
        self.l2_tlb_mshr.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, sm| w.u32(*sm));
        w.seq(self.l2_tlb_overflow.iter(), |w, &(sm, vpn)| {
            w.u32(sm);
            w.u64(vpn);
        });
        w.usize(self.l1_mshrs.len());
        for m in &self.l1_mshrs {
            m.save_state(&mut w, &mut |w, k| w.u64(*k), &mut |w, id| w.u64(id.to_bits()));
        }
        w.usize(self.l1_mshr_overflow.len());
        for dq in &self.l1_mshr_overflow {
            w.seq(dq.iter(), |w, id| w.u64(id.to_bits()));
        }
        self.l2_mshr.save_state(&mut w, &mut |w, k| w.u64(*k), &mut enc_l2_waiter);
        w.seq(self.l2_mshr_overflow.iter(), |w, &(pa, wt)| {
            w.u64(pa);
            enc_l2_waiter(w, &wt);
        });
        // Hash-map state is serialized in sorted-key order so the bytes —
        // and therefore any digest over them — are independent of
        // insertion history.
        let mut unguaranteed: Vec<(u32, u64)> = self.unguaranteed_waiters.keys().copied().collect();
        unguaranteed.sort_unstable();
        w.usize(unguaranteed.len());
        for key in unguaranteed {
            w.u32(key.0);
            w.u64(key.1);
            let waiters = &self.unguaranteed_waiters[&key];
            w.seq(waiters.iter(), |w, id| w.u64(id.to_bits()));
        }
        // `vpn_of_walk` is the exact inverse of `walk_of_vpn` (an audited
        // invariant), so only the forward map is stored.
        let mut walk_pairs: Vec<(u64, u64)> =
            self.walk_of_vpn.iter().map(|(&svpn, &walk)| (svpn, walk.0)).collect();
        walk_pairs.sort_unstable();
        w.seq(walk_pairs.iter(), |w, &(svpn, walk)| {
            w.u64(svpn);
            w.u64(walk);
        });
        let mut started_pairs: Vec<(u64, u64)> =
            self.walk_started.iter().map(|(&svpn, &at)| (svpn, at)).collect();
        started_pairs.sort_unstable();
        w.seq(started_pairs.iter(), |w, &(svpn, at)| {
            w.u64(svpn);
            w.u64(at);
        });
        w.seq(self.pw_overflow.iter(), |w, &svpn| w.u64(svpn));
        w.u32_slice(&self.warp_outstanding);
        w.u64_slice(&self.warp_issue_time);
        w.u64(self.max_cycles);
        w.bool(self.timed_out);
        w.into_bytes()
    }

    /// Restores a checkpoint written by [`Engine::save_checkpoint`] onto
    /// a freshly assembled (not yet started) engine built from the *same*
    /// configuration, programs, and policies. On success the engine is
    /// marked started and continues from the checkpointed event boundary
    /// via [`Engine::run_steps`]/[`Engine::finish`] (or [`Engine::run`],
    /// whose seeding step skips restored engines).
    ///
    /// Every error is hard: a partially restored engine must be
    /// discarded, never run.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(CkptError::VersionMismatch { found: version });
        }
        let saved_probes = r.bool()?;
        if saved_probes != cfg!(feature = "probes") {
            return Err(CkptError::FeatureMismatch { saved_probes });
        }
        let saved = r.u64()?;
        let current = self.cfg.key_digest();
        if saved != current {
            return Err(CkptError::ConfigMismatch { saved, current });
        }
        self.q.load_state(&mut r, &mut dec_ev)?;
        if r.usize()? != self.sms.len() {
            return Err(CkptError::Corrupt("SM count mismatch"));
        }
        for sm in &mut self.sms {
            sm.load_state(&mut r)?;
        }
        for t in &mut self.l1_tlbs {
            t.load_state(&mut r)?;
        }
        self.l2_tlb.load_state(&mut r)?;
        for p in &mut self.l1_tlb_ports {
            p.load_state(&mut r)?;
        }
        self.l2_tlb_ports.load_state(&mut r)?;
        for c in &mut self.l1_caches {
            c.load_state(&mut r)?;
        }
        self.l2_cache.load_state(&mut r)?;
        for p in &mut self.l1_cache_ports {
            p.load_state(&mut r)?;
        }
        self.l2_cache_ports.load_state(&mut r)?;
        self.dram.load_state(&mut r)?;
        self.walks.load_state(&mut r)?;
        if r.usize()? != self.uvms.len() {
            return Err(CkptError::Corrupt("tenant count mismatch"));
        }
        for u in &mut self.uvms {
            u.load_state(&mut r)?;
        }
        self.accel.load_state(&mut r)?;
        self.compression.load_state(&mut r)?;
        self.program.load_state(&mut r)?;
        self.stats.load_state(&mut r)?;
        self.reqs.load_state(&mut r, &mut dec_req)?;
        if r.usize()? != self.l1_tlb_mshrs.len() {
            return Err(CkptError::Corrupt("L1 TLB MSHR file count mismatch"));
        }
        for m in &mut self.l1_tlb_mshrs {
            m.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u64().map(ReqId::from_bits))?;
        }
        if r.usize()? != self.tlb_overflow.len() {
            return Err(CkptError::Corrupt("TLB overflow queue count mismatch"));
        }
        for v in &mut self.tlb_overflow {
            let n = r.seq_len()?;
            v.clear();
            for _ in 0..n {
                v.push(ReqId::from_bits(r.u64()?));
            }
        }
        self.l2_tlb_mshr.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u32())?;
        let n = r.seq_len()?;
        self.l2_tlb_overflow.clear();
        for _ in 0..n {
            self.l2_tlb_overflow.push((r.u32()?, r.u64()?));
        }
        if r.usize()? != self.l1_mshrs.len() {
            return Err(CkptError::Corrupt("L1 cache MSHR file count mismatch"));
        }
        for m in &mut self.l1_mshrs {
            m.load_state(&mut r, &mut |r| r.u64(), &mut |r| r.u64().map(ReqId::from_bits))?;
        }
        if r.usize()? != self.l1_mshr_overflow.len() {
            return Err(CkptError::Corrupt("L1 MSHR overflow queue count mismatch"));
        }
        for dq in &mut self.l1_mshr_overflow {
            let n = r.seq_len()?;
            dq.clear();
            for _ in 0..n {
                dq.push_back(ReqId::from_bits(r.u64()?));
            }
        }
        self.l2_mshr.load_state(&mut r, &mut |r| r.u64(), &mut dec_l2_waiter)?;
        let n = r.seq_len()?;
        self.l2_mshr_overflow.clear();
        for _ in 0..n {
            self.l2_mshr_overflow.push_back((r.u64()?, dec_l2_waiter(&mut r)?));
        }
        let n = r.seq_len()?;
        self.unguaranteed_waiters.clear();
        for _ in 0..n {
            let key = (r.u32()?, r.u64()?);
            let count = r.seq_len()?;
            let mut waiters = Vec::with_capacity(count);
            for _ in 0..count {
                waiters.push(ReqId::from_bits(r.u64()?));
            }
            if self.unguaranteed_waiters.insert(key, waiters).is_some() {
                return Err(CkptError::Corrupt("repeated unguaranteed-waiter key"));
            }
        }
        let n = r.seq_len()?;
        self.walk_of_vpn.clear();
        self.vpn_of_walk.clear();
        for _ in 0..n {
            let svpn = r.u64()?;
            let walk = WalkId(r.u64()?);
            if self.walk_of_vpn.insert(svpn, walk).is_some() {
                return Err(CkptError::Corrupt("repeated walk page key"));
            }
            if self.vpn_of_walk.insert(walk, Vpn(svpn)).is_some() {
                return Err(CkptError::Corrupt("two pages claim one walk id"));
            }
        }
        let n = r.seq_len()?;
        self.walk_started.clear();
        for _ in 0..n {
            let svpn = r.u64()?;
            let at = r.u64()?;
            if !self.walk_of_vpn.contains_key(&svpn) {
                return Err(CkptError::Corrupt("walk start-time for a page with no live walk"));
            }
            if self.walk_started.insert(svpn, at).is_some() {
                return Err(CkptError::Corrupt("repeated walk start-time key"));
            }
        }
        let n = r.seq_len()?;
        self.pw_overflow.clear();
        for _ in 0..n {
            self.pw_overflow.push_back(r.u64()?);
        }
        r.u32_slice_into(&mut self.warp_outstanding)?;
        r.u64_slice_into(&mut self.warp_issue_time)?;
        self.max_cycles = r.u64()?;
        self.timed_out = r.bool()?;
        if !r.is_exhausted() {
            return Err(CkptError::Corrupt("trailing bytes after checkpoint payload"));
        }
        self.started = true;
        Ok(())
    }

    fn handle(&mut self, now: Cycle, ev: Ev) {
        match ev {
            Ev::WarpIssue { sm, warp } => self.warp_issue(now, sm, warp),
            // Request-carrying events hold one pin on their request for
            // the lifetime of the event; it is consumed here, after the
            // handler, so the request stays live throughout.
            Ev::L1TlbResult { req } => {
                self.l1_tlb_result(now, req);
                self.req_unref(req);
            }
            Ev::L2TlbResult { sm, vpn } => self.l2_tlb_result(now, sm, vpn),
            Ev::WalkL2 { walk, pa } => self.walk_l2(now, walk, PhysAddr(pa)),
            Ev::SpecL1Result { req } => {
                self.spec_l1_result(now, req);
                self.req_unref(req);
            }
            Ev::L1Result { req } => {
                self.l1_result(now, req);
                self.req_unref(req);
            }
            Ev::L2Access { sm, pa } => self.l2_access(now, sm, PhysAddr(pa)),
            Ev::DramDone { pa } => self.dram_done(now, PhysAddr(pa)),
            Ev::L1Fill { sm, pa } => self.l1_fill(now, sm, PhysAddr(pa)),
            Ev::RemoteDone { req } => {
                if !self.req(req).completed {
                    self.complete_req(now, req);
                }
                self.req_unref(req);
            }
            Ev::FastComplete { sm, warp, last } => self.fast_complete(now, sm, warp, last),
        }
    }

    // ------------------------------------------------------------------
    // Warp issue
    // ------------------------------------------------------------------

    fn warp_issue(&mut self, now: Cycle, sm: u32, warp: u32) {
        let issue_free = self.sms[sm as usize].issue_free_at;
        if issue_free > now {
            self.q.schedule(issue_free, Ev::WarpIssue { sm, warp });
            return;
        }
        match self.program.next_op(sm as usize, warp as usize) {
            None => {
                self.sms[sm as usize].set_warp(warp as usize, WarpState::Retired, now);
            }
            Some(WarpOp::Compute { cycles }) => {
                self.stats.instructions += 1;
                self.sms[sm as usize].issue_free_at = now + 1;
                self.sms[sm as usize].set_warp(warp as usize, WarpState::Computing, now);
                self.q.schedule(now + cycles.max(1), Ev::WarpIssue { sm, warp });
            }
            Some(op @ (WarpOp::Load { .. } | WarpOp::Store { .. })) => {
                let (pc, addrs, is_store) = match op {
                    WarpOp::Load { pc, addrs } => (pc, addrs, false),
                    WarpOp::Store { pc, addrs } => (pc, addrs, true),
                    // Pattern-restricted by the outer `op @ (Load | Store)`
                    // binding; no runtime path reaches it. lint:allow(hot-path-panic)
                    WarpOp::Compute { .. } => unreachable!("matched above"),
                };
                self.stats.instructions += 1;
                if is_store {
                    self.stats.stores += 1;
                } else {
                    self.stats.loads += 1;
                }
                self.sms[sm as usize].issue_free_at = now + 1;
                let mut sectors = std::mem::take(&mut self.coalesce_buf);
                coalesce_into(&addrs, &mut sectors);
                let slot = self.warp_slot(sm, warp);
                self.warp_outstanding[slot] = sectors.len() as u32;
                self.warp_issue_time[slot] = now;
                self.sms[sm as usize].set_warp(
                    warp as usize,
                    WarpState::WaitingMemory { outstanding: sectors.len() as u32 },
                    now,
                );
                if !sectors.is_empty() && self.fast_path_classify(now, sm, &sectors) {
                    // Every sector is a guaranteed L1 TLB + L1 data hit
                    // and the ports have a free slot this cycle: resolve
                    // the whole instruction at issue with the Table II
                    // latency arithmetic instead of per-sector events.
                    self.fast_path_commit(now, sm, warp, is_store, &sectors);
                    self.warp_outstanding[slot] = 0;
                } else {
                    let shard = self.shard_for_sm(sm);
                    for &vaddr in &sectors {
                        self.stats.sector_requests += 1;
                        let id = self.reqs.insert(shard, MemReq {
                            sm,
                            warp,
                            pc,
                            vaddr,
                            issued: now,
                            real_ppn: None,
                            translation_done: false,
                            completed: false,
                            is_store,
                            spec: None,
                            refs: 0,
                            #[cfg(feature = "probes")]
                            phase: Phase::Issue,
                            #[cfg(feature = "probes")]
                            phase_entered: now,
                            #[cfg(feature = "probes")]
                            phase_acc: 0,
                            #[cfg(feature = "probes")]
                            spec_started: 0,
                        });
                        self.start_translation(now, id);
                    }
                }
                self.coalesce_buf = sectors;
            }
        }
    }

    /// Decides whether a warp memory instruction can be resolved by the
    /// inline hit fast path: every coalesced sector must be backed by a
    /// resident page, hit the L1 TLB on a probe (skipped under
    /// `ideal_tlb`), hit the L1 data cache with a *guaranteed* sector,
    /// and each required port group must have a free slot this cycle.
    /// Strictly read-only — when any sector fails, the warp takes the
    /// event path with no state disturbed. All-or-nothing per warp, so a
    /// warp's sectors never straddle the two mechanisms.
    fn fast_path_classify(&self, now: Cycle, sm: u32, sectors: &[VirtAddr]) -> bool {
        let tenant = self.tenant_of_sm(sm);
        // Structural hazards: a fully backed-up port means the grants
        // would land in future cycles; leave that to the event path.
        if !self.cfg.ideal_tlb && self.l1_tlb_ports[sm as usize].peek_grant(now) != now {
            return false;
        }
        if self.l1_cache_ports[sm as usize].peek_grant(now) != now {
            return false;
        }
        for &vaddr in sectors {
            let vpn = vaddr.vpn();
            if !self.uvms[tenant].is_resident(vpn) {
                return false;
            }
            let ppn = if self.cfg.ideal_tlb {
                match self.uvms[tenant].page_table.translate(vpn) {
                    Some(t) => t.ppn,
                    None => return false,
                }
            } else {
                match self.l1_tlbs[sm as usize].probe(Vpn(self.salt(tenant, vpn))) {
                    Some(Some(hit)) => hit.ppn,
                    // A probe miss — or a model that cannot preview its
                    // lookups (the coalescing CoLT/SnakeByte designs) —
                    // takes the event path.
                    _ => return false,
                }
            };
            if !matches!(self.l1_caches[sm as usize].peek_probe(translate(vaddr, ppn)), Probe::Hit)
            {
                return false;
            }
        }
        true
    }

    /// Commits a classified fast-path warp: performs, at issue time, the
    /// state updates the event path spreads across its TLB-result and
    /// L1-result events — page touch, TLB LRU bump and stats, port
    /// grants, cache LRU/dirty bits — and computes each sector's
    /// completion cycle from the Table II latencies. With
    /// `inline_hit_path` on, the latency bookkeeping happens inline and
    /// the calendar carries only the warp wake-up; with it off, the
    /// identical bookkeeping rides per-sector [`Ev::FastComplete`]
    /// events. The two must be digest-identical — that is the CI
    /// differential gate's whole claim.
    fn fast_path_commit(
        &mut self,
        now: Cycle,
        sm: u32,
        warp: u32,
        is_store: bool,
        sectors: &[VirtAddr],
    ) {
        let tenant = self.tenant_of_sm(sm);
        let tlb_lat = self.cfg.l1_tlb.latency;
        let cache_lat = self.cfg.l1_cache.latency;
        self.stats.fast_path_hits += 1;
        self.stats.fast_path_sectors += sectors.len() as u64;
        #[cfg(feature = "probes")]
        let emit_span = self.probe.is_active() && self.probe.sampled(warp);
        #[cfg(feature = "probes")]
        if emit_span {
            self.probe.span_enter(SpanPoint::FastPath, Track::sm_warp(sm, warp), now);
        }
        let mut t_done = now;
        for (i, &vaddr) in sectors.iter().enumerate() {
            self.stats.sector_requests += 1;
            let vpn = vaddr.vpn();
            let remote = self.touch_page(tenant, vpn);
            debug_assert!(!remote, "fast path classified a non-resident page as a hit");
            let (ppn, done) = if self.cfg.ideal_tlb {
                let t = self
                    .uvms[tenant]
                    .page_table
                    .translate(vpn)
                    .expect("fast path classified an unmapped page as resident");
                (t.ppn, self.l1_cache_ports[sm as usize].grant(now))
            } else {
                self.stats.l1_tlb_lookups += 1;
                let g_tlb = self.l1_tlb_ports[sm as usize].grant(now);
                let svpn = self.salt(tenant, vpn);
                let hit = self.l1_tlbs[sm as usize]
                    .lookup(Vpn(svpn))
                    .expect("fast path classified an L1 TLB miss as a hit");
                self.stats.l1_tlb_hits += 1;
                self.record_coverage(hit.coverage_pages);
                let g_cache = self.l1_cache_ports[sm as usize].grant(now);
                let done = match self.cfg.l1_arrangement {
                    // VIPT: translation and data lookup overlap from
                    // their respective port grants.
                    crate::config::CacheArrangement::Vipt => {
                        (g_tlb + tlb_lat).max(g_cache + cache_lat)
                    }
                    // PIPT: the data access needs both its port slot and
                    // the finished translation before it can start.
                    crate::config::CacheArrangement::Pipt => {
                        (g_tlb + tlb_lat).max(g_cache) + cache_lat
                    }
                };
                (hit.ppn, done)
            };
            let pa = translate(vaddr, ppn);
            self.stats.l1d_lookups += 1;
            let probe = self.l1_caches[sm as usize].probe(pa);
            debug_assert!(
                matches!(probe, Probe::Hit),
                "fast path classified an L1 data miss as a hit: {probe:?}"
            );
            self.stats.l1d_hits += 1;
            if is_store {
                self.l1_caches[sm as usize].mark_dirty(pa);
            }
            if self.cfg.inline_hit_path {
                self.stats.sector_latency.add(done - now);
                self.stats.sector_latency_hist.add(done - now);
                // Fast-path sectors allocate no request, so they feed the
                // breakdown here: the whole latency is data-side (Fetch).
                // The evented twin adds the identical value at its
                // FastComplete event — commutative, digest-safe.
                #[cfg(feature = "probes")]
                {
                    self.stats.latency_breakdown.add(Phase::Fetch, done - now);
                    self.stats.latency_breakdown.sectors += 1;
                }
            } else {
                self.q.schedule(
                    done,
                    Ev::FastComplete { sm, warp, last: i + 1 == sectors.len() },
                );
            }
            // Port grants are non-decreasing across the loop, so the last
            // sector carries the warp's completion cycle.
            t_done = t_done.max(done);
        }
        if self.cfg.inline_hit_path {
            self.stats.load_latency.add(t_done - now);
        }
        #[cfg(feature = "probes")]
        if emit_span {
            self.probe.span_exit(SpanPoint::FastPath, Track::sm_warp(sm, warp), t_done);
        }
        // The warp re-issues one cycle after its last sector completes —
        // the same wake point `complete_req` produces. Scheduled here, at
        // issue, in *both* modes, so the wake-up occupies the identical
        // calendar FIFO position whichever mode does the bookkeeping.
        self.q.schedule(t_done + 1, Ev::WarpIssue { sm, warp });
    }

    /// Evented twin of the inline fast-path latency bookkeeping
    /// (`inline_hit_path` off): credits one sector's latency at its
    /// computed completion cycle, and the whole warp's at the last
    /// sector. All the adds are commutative integer sums, so running
    /// them here instead of inline cannot change `Stats::digest()`.
    fn fast_complete(&mut self, now: Cycle, sm: u32, warp: u32, last: bool) {
        let issued = self.warp_issue_time[self.warp_slot(sm, warp)];
        self.stats.sector_latency.add(now - issued);
        self.stats.sector_latency_hist.add(now - issued);
        #[cfg(feature = "probes")]
        {
            self.stats.latency_breakdown.add(Phase::Fetch, now - issued);
            self.stats.latency_breakdown.sectors += 1;
        }
        if last {
            self.stats.load_latency.add(now - issued);
        }
    }

    fn start_translation(&mut self, now: Cycle, id: ReqId) {
        let (vpn, sm) = {
            let r = self.req(id);
            (r.vpn(), r.sm)
        };
        let tenant = self.tenant_of_sm(sm);
        if self.touch_page(tenant, vpn) {
            // Cold page below the migration threshold: the GMMU faults and
            // the access is serviced from host memory over the
            // interconnect. No GPU TLB entry is installed and MOD is not
            // trained (the paper restricts updates to GPU-mapped regions).
            self.stats.remote_accesses += 1;
            self.probe_phase(now, id, Phase::Fetch);
            self.probe_span(
                SpanPoint::Remote,
                Track::uvm(tenant as u32),
                now,
                now + self.cfg.uvm.remote_latency,
                id.slot() as u64,
            );
            self.req_ref(id);
            self.q.schedule(now + self.cfg.uvm.remote_latency, Ev::RemoteDone { req: id });
            return;
        }
        if self.cfg.ideal_tlb {
            let t = self.uvms[tenant].page_table.translate(vpn).expect("page just touched");
            let r = self.req_mut(id);
            r.real_ppn = Some(t.ppn);
            r.translation_done = true;
            self.probe_phase(now, id, Phase::Fetch);
            self.schedule_l1_access(now, id, 0);
            return;
        }
        let grant = self.l1_tlb_ports[sm as usize].grant(now);
        self.probe_phase(now, id, Phase::Tlb);
        self.probe_queue_wait(grant - now);
        self.req_ref(id);
        self.q.schedule(grant + self.cfg.l1_tlb.latency, Ev::L1TlbResult { req: id });
    }

    /// Touches a page; returns `true` when the access must be served
    /// remotely (cold page under threshold-based migration).
    fn touch_page(&mut self, tenant: usize, vpn: Vpn) -> bool {
        let result = self.uvms[tenant].touch(vpn);
        if result.remote {
            return true;
        }
        if !result.faulted {
            return false;
        }
        self.stats.page_faults += 1;
        self.stats.pages_migrated += result.migrated.len() as u64;
        self.probe_instant(
            SpanPoint::UvmFault,
            Track::uvm(tenant as u32),
            self.q.now(),
            result.migrated.len() as u64,
        );
        // Migration traffic: page contents written into GPU DRAM (timing
        // excluded per §IV-B, traffic counted).
        self.dram
            .account_untimed(DramOp::Write, result.migrated.len() as u64 * crate::addr::PAGE_BYTES);
        if result.promoted {
            self.stats.promotions += 1;
        }
        for chunk in result.evicted {
            self.stats.chunks_evicted += 1;
            self.stats.tlb_shootdowns += 1;
            self.probe_instant(
                SpanPoint::Eviction,
                Track::uvm(tenant as u32),
                self.q.now(),
                chunk.pages,
            );
            if chunk.was_promoted {
                self.stats.splinters += 1;
            }
            // Eviction reads the chunk out of DRAM for transfer to the host.
            self.dram
                .account_untimed(DramOp::Read, chunk.frames.len() as u64 * crate::addr::PAGE_BYTES);
            let salted_first = Vpn(chunk.first_vpn.0 | ((tenant as u64) << ASID_SHIFT));
            for tlb in &mut self.l1_tlbs {
                tlb.invalidate(salted_first, chunk.pages);
            }
            self.l2_tlb.invalidate(salted_first, chunk.pages);
            let frames: FxHashSet<u64> = chunk.frames.iter().map(|p| p.0).collect();
            for cache in &mut self.l1_caches {
                cache.invalidate_frames(&frames);
            }
            self.l2_cache.invalidate_frames(&frames);
            let now = self.q.now();
            for sm in 0..self.cfg.num_sms as u32 {
                self.wake_all_unguaranteed(now, sm);
            }
        }
        self.probe_counter(
            "resident_pages",
            Track::uvm(tenant as u32),
            self.q.now(),
            self.uvms[tenant].used_frames(),
        );
        false
    }

    // ------------------------------------------------------------------
    // Translation path
    // ------------------------------------------------------------------

    fn l1_tlb_result(&mut self, now: Cycle, id: ReqId) {
        let (sm, pc, vpn) = {
            let r = self.req(id);
            (r.sm, r.pc, r.vpn())
        };
        self.stats.l1_tlb_lookups += 1;
        let tenant = self.tenant_of_sm(sm);
        let svpn = self.salt(tenant, vpn);
        if let Some(hit) = self.l1_tlbs[sm as usize].lookup(Vpn(svpn)) {
            self.stats.l1_tlb_hits += 1;
            self.record_coverage(hit.coverage_pages);
            self.probe_phase(now, id, Phase::Fetch);
            let r = self.req_mut(id);
            r.real_ppn = Some(hit.ppn);
            r.translation_done = true;
            // VIPT: the L1 data lookup proceeded in parallel with the TLB,
            // so only the non-overlapped latency remains. PIPT serializes.
            let latency = match self.cfg.l1_arrangement {
                crate::config::CacheArrangement::Vipt => {
                    self.cfg.l1_cache.latency.saturating_sub(self.cfg.l1_tlb.latency)
                }
                crate::config::CacheArrangement::Pipt => self.cfg.l1_cache.latency,
            };
            self.schedule_l1_access(now, id, latency);
            return;
        }

        // CAST hook: attempt speculative translation. Stores never
        // speculate — erroneously performed writes cannot be rolled back.
        let is_store = self.req(id).is_store;
        let prediction =
            if is_store { None } else { self.accel.on_l1_tlb_miss(sm as usize, pc, vpn) };
        if let Some(spec_ppn) = prediction {
            self.stats.speculations += 1;
            // The page can have been evicted (oversubscription) between
            // warp issue and this miss; such speculations validate false.
            let real = self.uvms[tenant].page_table.translate(vpn);
            let correct = real.is_some_and(|r| r.ppn == spec_ppn);
            if correct {
                self.stats.spec_correct += 1;
            }
            if self.frame_owner_any(spec_ppn).is_none() {
                self.stats.spec_false += 1;
            }
            let ideal = self.accel.validation_kind() == ValidationKind::Ideal;
            if !ideal || correct {
                // Ideal validation confirms speculations before fetching;
                // incorrect ones never fetch.
                self.req_mut(id).spec =
                    Some(SpecState { ppn: spec_ppn, ideal, killed: false, fetch_registered: false });
                let grant = self.l1_cache_ports[sm as usize].grant(now);
                self.req_ref(id);
                self.q.schedule(grant + self.cfg.l1_cache.latency, Ev::SpecL1Result { req: id });
            }
        }

        // Forward the translation request toward the L2 TLB.
        self.request_l2_translation(now, id);
    }

    fn request_l2_translation(&mut self, now: Cycle, id: ReqId) {
        let (sm, vpn) = {
            let r = self.req(id);
            (r.sm, r.vpn())
        };
        let svpn = self.salt(self.tenant_of_sm(sm), vpn);
        self.probe_phase(now, id, Phase::Walk);
        // Whatever the grant, the id gets stored: as an MSHR waiter
        // (allocated or merged) or on the overflow queue.
        self.req_ref(id);
        match self.l1_tlb_mshrs[sm as usize].request(svpn, id) {
            MshrGrant::Allocated => {
                self.stats.l2_tlb_lookups += 1;
                let grant = self.l2_tlb_ports.grant(now);
                self.probe_queue_wait(grant - now);
                self.q.schedule(grant + self.cfg.l2_tlb.latency, Ev::L2TlbResult { sm, vpn: svpn });
            }
            MshrGrant::Merged => {}
            MshrGrant::Full => {
                self.stats.l1_tlb_mshr_full += 1;
                self.tlb_overflow[sm as usize].push(id);
            }
        }
    }

    fn l2_tlb_result(&mut self, now: Cycle, sm: u32, vpn: u64) {
        if !self.l1_tlb_mshrs[sm as usize].contains(vpn) {
            // Already resolved (e.g. EAF released the MSHR).
            return;
        }
        if let Some(hit) = self.l2_tlb.lookup(Vpn(vpn)) {
            self.stats.l2_tlb_hits += 1;
            self.record_coverage(hit.coverage_pages);
            let pages = if hit.coverage_pages >= crate::addr::PAGES_PER_CHUNK {
                crate::addr::PAGES_PER_CHUNK
            } else {
                1
            };
            let fill = TlbFill { vpn: Vpn(vpn), ppn: hit.ppn, pages, run: Some(hit.run()) };
            self.resolve_for_sm(now, sm, vpn, hit.ppn, &fill, false);
            return;
        }
        match self.l2_tlb_mshr.request(vpn, sm) {
            MshrGrant::Allocated => self.start_walk(now, vpn),
            MshrGrant::Merged => self.stats.walk_merges += 1,
            MshrGrant::Full => {
                self.stats.l2_tlb_mshr_full += 1;
                self.l2_tlb_overflow.push((sm, vpn));
            }
        }
    }

    fn start_walk(&mut self, now: Cycle, vpn: u64) {
        let tenant = Self::tenant_of_svpn(vpn);
        let levels = self.uvms[tenant].page_table.walk_levels(Self::unsalt(vpn));
        match self.walks.enqueue(Vpn(vpn), levels, now) {
            Some(id) => {
                self.walk_of_vpn.insert(vpn, id);
                self.vpn_of_walk.insert(id, Vpn(vpn));
                self.walk_started.insert(vpn, now);
                // Dispatch synchronously: a zero-delta event would only
                // defer this same call behind the rest of the cycle's
                // queue (and is deny-listed by avatar-lint).
                self.walk_dispatch(now);
            }
            None => {
                self.stats.pw_buffer_full += 1;
                self.pw_overflow.push_back(vpn);
            }
        }
    }

    fn walk_dispatch(&mut self, now: Cycle) {
        while let Some((walk, addr)) = self.walks.dispatch() {
            // The walker records its enqueue cycle as the walk's start:
            // the gap to the dispatch cycle is walk-buffer queueing.
            #[cfg(feature = "probes")]
            if let Some(enqueued) = self.walks.started_at(walk) {
                self.probe_queue_wait(now - enqueued);
            }
            self.walk_mem(now, walk, addr);
        }
    }

    fn walk_mem(&mut self, now: Cycle, walk: WalkId, addr: PhysAddr) {
        self.stats.walk_memory_accesses += 1;
        let pa = PhysAddr(addr.0 & !(SECTOR_BYTES - 1));
        let grant = self.l2_cache_ports.grant(now);
        self.q.schedule(grant + self.cfg.l2_cache.latency, Ev::WalkL2 { walk, pa: pa.0 });
    }

    fn walk_l2(&mut self, now: Cycle, walk: WalkId, pa: PhysAddr) {
        self.stats.l2_lookups += 1;
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => {
                self.stats.l2_hits += 1;
                self.advance_walk(now, walk);
            }
            Probe::Miss => match self.l2_mshr.request(pa.0, L2Waiter::Walk { walk }) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.q.schedule(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => self.l2_mshr_overflow.push_back((pa.0, L2Waiter::Walk { walk })),
            },
        }
    }

    fn advance_walk(&mut self, now: Cycle, walk: WalkId) {
        match self.walks.step(walk) {
            None => {} // aborted by EAF
            Some(WalkProgress::Access(addr)) => self.walk_mem(now, walk, addr),
            Some(WalkProgress::Done) => {
                let svpn = self.vpn_of_walk.remove(&walk).expect("walk has vpn");
                let tenant = Self::tenant_of_svpn(svpn.0);
                let vpn = Self::unsalt(svpn.0);
                self.stats.page_walks += 1;
                if let Some(start) = self.walk_started.remove(&svpn.0) {
                    self.stats.walk_latency.add(now - start);
                    #[cfg(feature = "probes")]
                    {
                        self.stats.walk_latency_hist.add(now - start);
                        let walker =
                            (walk.0 % self.cfg.walker.walkers as u64) as u32;
                        self.probe_span(
                            SpanPoint::WalkService,
                            Track::walker(walker),
                            start,
                            now,
                            svpn.0,
                        );
                    }
                }
                self.walk_of_vpn.remove(&svpn.0);
                // The PTE may have been invalidated by a concurrent
                // eviction; refault instantly (latency excluded).
                if self.uvms[tenant].page_table.translate(vpn).is_none() {
                    // The page was evicted while its walk was in flight;
                    // refault it in (repeat touches satisfy the access
                    // counter when threshold-based migration is active).
                    while self.touch_page(tenant, vpn) {}
                }
                let t = self.uvms[tenant].page_table.translate(vpn).expect("resident after touch");
                self.resolve_translation(now, svpn.0, t.ppn, t.pages);
                // A walker freed: dispatch more walks and retry overflow,
                // synchronously rather than via a zero-delta event.
                self.drain_pw_overflow(now);
                self.walk_dispatch(now);
            }
        }
    }

    fn drain_pw_overflow(&mut self, now: Cycle) {
        while !self.pw_overflow.is_empty() && self.walks.has_buffer_space() {
            let vpn = self.pw_overflow.pop_front().expect("checked non-empty");
            self.start_walk(now, vpn);
        }
    }

    /// Resolves a translation globally: fills the L2 TLB, wakes every
    /// waiting SM, and retries overflow queues.
    fn resolve_translation(&mut self, now: Cycle, svpn: u64, ppn: Ppn, pages: u64) {
        let tenant = Self::tenant_of_svpn(svpn);
        let run = self.uvms[tenant].page_table.contiguous_run(Self::unsalt(svpn), 16);
        let run = self.salt_run(tenant, run);
        let vpn = svpn;
        let fill = TlbFill { vpn: Vpn(vpn), ppn, pages, run };
        self.l2_tlb.fill(&fill);
        self.charge_merge_refs(now);
        if let Some(mut waiters) = self.l2_tlb_mshr.complete(vpn) {
            let mut seen = Vec::new();
            for sm in waiters.drain(..) {
                if !seen.contains(&sm) {
                    seen.push(sm);
                    self.resolve_for_sm(now, sm, vpn, ppn, &fill, false);
                }
            }
            self.l2_tlb_mshr.recycle(waiters);
        }
        self.drain_l2_tlb_overflow(now);
    }

    fn charge_merge_refs(&mut self, now: Cycle) {
        let refs = self.l2_tlb.drain_extra_memory_refs();
        if refs > 0 {
            self.stats.merge_memory_accesses += refs;
            // Merge traffic consumes page-table bandwidth: fire-and-forget
            // DRAM reads in the page-table region.
            for i in 0..refs {
                let pa = PhysAddr(PT_BASE + (self.stats.merge_memory_accesses + i) * 64 % (1 << 30));
                self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
            }
        }
    }

    fn drain_l2_tlb_overflow(&mut self, now: Cycle) {
        let pending = std::mem::take(&mut self.l2_tlb_overflow);
        for (sm, vpn) in pending {
            self.l2_tlb_result(now, sm, vpn);
        }
    }

    /// Fills one SM's L1 TLB and wakes its waiting requests. `via_eaf`
    /// marks resolutions produced by Early-TLB-Fill, which the paper's
    /// Fig 16 accounting attributes to `Fast_Translation`.
    fn resolve_for_sm(&mut self, now: Cycle, sm: u32, vpn: u64, ppn: Ppn, fill: &TlbFill, via_eaf: bool) {
        self.l1_tlbs[sm as usize].fill(fill);
        if let Some(mut waiters) = self.l1_tlb_mshrs[sm as usize].complete(vpn) {
            for id in waiters.drain(..) {
                let pc = self.req(id).pc;
                self.accel.on_translation_resolved(sm as usize, pc, Self::unsalt(vpn), ppn);
                self.translation_resolved_for_req(now, id, ppn, via_eaf);
                self.req_unref(id);
            }
            self.l1_tlb_mshrs[sm as usize].recycle(waiters);
        }
        // MSHR space freed: retry overflow translation requests. The
        // retry re-pins the id before the queue's own pin is consumed.
        let pending = std::mem::take(&mut self.tlb_overflow[sm as usize]);
        for id in pending {
            self.request_l2_translation(now, id);
            self.req_unref(id);
        }
    }

    fn translation_resolved_for_req(&mut self, now: Cycle, id: ReqId, ppn: Ppn, via_eaf: bool) {
        if self.trace_req.is_some() {
            // Guarded: the format! must not run (or allocate) per sector
            // when tracing is off.
            self.trace(id, &format!("translation_resolved ppn={}", ppn.0));
        }
        let req = self.req_mut(id);
        req.real_ppn = Some(ppn);
        req.translation_done = true;
        if req.completed {
            return; // already satisfied by rapid/ideal validation
        }
        // Translation known: whatever waiting remains (cache lookup, MSHR
        // merge, DRAM) is data-side time in every branch below.
        self.probe_phase(now, id, Phase::Fetch);
        let req = self.req(id);
        let sm = req.sm as usize;
        let Some(spec) = req.spec else {
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
            return;
        };
        let spec_pa = translate(req.vaddr, spec.ppn);
        let correct = spec.ppn == ppn;
        if correct {
            // Fig 16 accounting: a resolution delivered by Early-TLB-Fill
            // counts as Fast_Translation — one rapid validation serves
            // many accesses.
            if self.l1_mshrs[sm].contains(spec_pa.0) {
                // A fetch of the speculated sector is in flight (this
                // request's own, or another warp's): the original access
                // merges with it in the cache MSHR.
                if !spec.fetch_registered
                    && self.l1_mshrs[sm].merge(spec_pa.0, id)
                {
                    self.req_ref(id);
                    self.req_mut(id).spec.as_mut().expect("spec state outlives its in-flight sector fetch").fetch_registered = true;
                }
                self.stats.outcomes.record(if via_eaf {
                    SpecOutcome::FastTranslation
                } else {
                    SpecOutcome::L1dMerge
                });
                self.trace(id, "merge-wait");
                return; // completion happens at the fill
            }
            if self.l1_caches[sm].peek(spec_pa).is_some() {
                // Prefetched sector still resident: guarantee and re-access.
                self.l1_caches[sm].set_guarantee(spec_pa, true);
                self.wake_unguaranteed(now, sm as u32, spec_pa);
                self.trace(id, "l1d-hit-path");
                self.stats.outcomes.record(if via_eaf {
                    SpecOutcome::FastTranslation
                } else {
                    SpecOutcome::L1dHit
                });
                self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
                return;
            }
            // Not fetched (or evicted) before the translation arrived.
            self.stats.outcomes.record(if via_eaf {
                SpecOutcome::FastTranslation
            } else {
                SpecOutcome::L1dMiss
            });
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
        } else {
            self.req_mut(id).spec.as_mut().expect("spec present").killed = true;
            // Drop the wrongly fetched sector if it is resident and not
            // legitimately owned (guaranteed) by some other request.
            if let Some(flags) = self.l1_caches[sm].peek(spec_pa) {
                if !flags.guaranteed {
                    self.l1_caches[sm].invalidate_sector(spec_pa);
                    self.wake_unguaranteed(now, sm as u32, spec_pa);
                }
            }
            self.schedule_l1_access(now, id, self.cfg.l1_cache.latency);
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn schedule_l1_access(&mut self, now: Cycle, id: ReqId, latency: Cycle) {
        let sm = self.req(id).sm as usize;
        let grant = self.l1_cache_ports[sm].grant(now);
        self.probe_queue_wait(grant - now);
        self.req_ref(id);
        self.q.schedule(grant + latency, Ev::L1Result { req: id });
    }

    fn l1_result(&mut self, now: Cycle, id: ReqId) {
        self.trace(id, "l1_result");
        if self.req(id).completed {
            return;
        }
        let (sm, pa, is_store) = {
            let r = self.req(id);
            (r.sm, r.real_pa().expect("translated before L1 access"), r.is_store)
        };
        self.stats.l1d_lookups += 1;
        match self.l1_caches[sm as usize].probe(pa) {
            Probe::Hit => {
                self.stats.l1d_hits += 1;
                if is_store {
                    self.l1_caches[sm as usize].mark_dirty(pa);
                }
                self.complete_req(now, id);
            }
            Probe::HitUnguaranteed => {
                // The sector is present but awaiting validation. This
                // request reached the data path with a *confirmed*
                // translation to the same physical sector — exactly the
                // proof the guarantee bit requires ("if the speculation
                // is accurate, set the guarantee bit"). Validate and use.
                self.stats.l1d_hits += 1;
                self.l1_caches[sm as usize].set_guarantee(pa, true);
                if is_store {
                    self.l1_caches[sm as usize].mark_dirty(pa);
                }
                self.complete_req(now, id);
                self.wake_unguaranteed(now, sm, pa);
            }
            Probe::Miss => self.l1_miss(now, id, pa),
        }
    }

    /// Wakes requests waiting on an unguaranteed sector once its fate is
    /// known: on `usable` they re-probe (and hit); otherwise they fall
    /// back to a normal fetch.
    fn wake_unguaranteed(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        if let Some(waiters) = self.unguaranteed_waiters.remove(&(sm, pa.0)) {
            for id in waiters {
                if !self.req(id).completed {
                    self.schedule_l1_access(now, id, 1);
                }
                self.req_unref(id);
            }
        }
    }

    /// Wakes every unguaranteed-sector waiter of an SM (shootdown path).
    fn wake_all_unguaranteed(&mut self, now: Cycle, sm: u32) {
        let mut keys = std::mem::take(&mut self.scratch_keys);
        keys.clear();
        keys.extend(
            self.unguaranteed_waiters.keys().filter(|(s, _)| *s == sm).map(|(_, pa)| *pa),
        );
        for &pa in &keys {
            self.wake_unguaranteed(now, sm, PhysAddr(pa));
        }
        self.scratch_keys = keys;
    }

    fn l1_miss(&mut self, now: Cycle, id: ReqId, pa: PhysAddr) {
        let sm = self.req(id).sm;
        // All three grants store the id: as an MSHR waiter or on the
        // overflow queue.
        self.req_ref(id);
        match self.l1_mshrs[sm as usize].request(pa.0, id) {
            MshrGrant::Allocated => {
                let grant = self.l2_cache_ports.grant(now);
                self.q.schedule(grant + self.cfg.l2_cache.latency, Ev::L2Access { sm, pa: pa.0 });
            }
            MshrGrant::Merged => {}
            MshrGrant::Full => {
                self.stats.cache_mshr_full += 1;
                self.l1_mshr_overflow[sm as usize].push_back(id);
            }
        }
    }

    fn spec_l1_result(&mut self, now: Cycle, id: ReqId) {
        self.trace(id, "spec_l1_result");
        let req = self.req(id);
        if req.completed || req.translation_done {
            // Translation beat the speculative lookup; the normal path owns
            // the request now.
            return;
        }
        let sm = req.sm;
        let Some(spec) = req.spec else { return };
        let spec_pa = translate(req.vaddr, spec.ppn);
        match self.l1_caches[sm as usize].probe(spec_pa) {
            Probe::Hit => {
                if spec.ideal {
                    // Ideal validation: the speculation is already
                    // confirmed, so a guaranteed hit completes the load,
                    // and the oracle-known mapping releases the pending
                    // translation machinery exactly like EAF.
                    let vpn = self.req(id).vpn();
                    self.stats.outcomes.record(SpecOutcome::FastTranslation);
                    self.complete_req(now, id);
                    self.eaf_resolve(now, sm, vpn, spec.ppn);
                }
            }
            Probe::HitUnguaranteed => {
                // Another request's speculative fetch already brought the
                // sector in; wait for validation or translation.
            }
            Probe::Miss => {
                // Demand fetches take priority: speculative fetches lapse
                // when the MSHR file is under pressure (the LSU pending
                // table drops speculative entries rather than stalling).
                let mshrs = &self.l1_mshrs[sm as usize];
                if !mshrs.contains(spec_pa.0)
                    && mshrs.len() * 2 >= self.cfg.l1_cache.mshr_entries
                {
                    return;
                }
                match self.l1_mshrs[sm as usize].request(spec_pa.0, id) {
                MshrGrant::Allocated => {
                    self.req_ref(id);
                    self.stats.spec_fetches += 1;
                    self.req_mut(id).spec.as_mut().expect("spec state outlives its in-flight sector fetch").fetch_registered = true;
                    self.probe_phase(now, id, Phase::Validate);
                    #[cfg(feature = "probes")]
                    {
                        self.req_mut(id).spec_started = now;
                    }
                    let grant = self.l2_cache_ports.grant(now);
                    self.q
                        .schedule(grant + self.cfg.l2_cache.latency, Ev::L2Access { sm, pa: spec_pa.0 });
                }
                MshrGrant::Merged => {
                    self.req_ref(id);
                    self.stats.spec_fetches += 1;
                    self.req_mut(id).spec.as_mut().expect("spec state outlives its in-flight sector fetch").fetch_registered = true;
                    self.probe_phase(now, id, Phase::Validate);
                    #[cfg(feature = "probes")]
                    {
                        self.req_mut(id).spec_started = now;
                    }
                }
                MshrGrant::Full => {
                    // Resource-constrained: the speculation silently
                    // lapses — the id was never stored, so no pin.
                }
                }
            }
        }
    }

    fn l2_access(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        self.stats.l2_lookups += 1;
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => {
                self.stats.l2_hits += 1;
                let meta = self.sector_meta(pa);
                let extra = if meta.compressed { self.cfg.spec.decompression_latency } else { 0 };
                self.q.schedule(now + extra, Ev::L1Fill { sm, pa: pa.0 });
            }
            Probe::Miss => match self.l2_mshr.request(pa.0, L2Waiter::Sector { sm }) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.q.schedule(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => {
                    self.stats.cache_mshr_full += 1;
                    self.l2_mshr_overflow.push_back((pa.0, L2Waiter::Sector { sm }));
                }
            },
        }
    }

    fn dram_done(&mut self, now: Cycle, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        let evicted = self.l2_cache.fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: true, dirty: false },
        );
        self.writeback_evicted_l2(now, evicted);
        let extra = if meta.compressed { self.cfg.spec.decompression_latency } else { 0 };
        if let Some(mut waiters) = self.l2_mshr.complete(pa.0) {
            for w in waiters.drain(..) {
                match w {
                    L2Waiter::Sector { sm } => {
                        self.q.schedule(now + extra, Ev::L1Fill { sm, pa: pa.0 })
                    }
                    L2Waiter::Walk { walk } => self.advance_walk(now, walk),
                }
            }
            self.l2_mshr.recycle(waiters);
        }
        // MSHR space freed: admit overflow waiters into the capacity that
        // opened up. They already paid the L2 port on their original
        // access — re-probe directly (no extra port grant or latency).
        while let Some(&(pa, _)) = self.l2_mshr_overflow.front() {
            if self.l2_mshr.is_full() && !self.l2_mshr.contains(pa) {
                break;
            }
            let (pa, w) = self.l2_mshr_overflow.pop_front().expect("checked non-empty");
            self.l2_retry(now, PhysAddr(pa), w);
        }
    }

    /// Re-probes the L2 for an overflow waiter without charging the port
    /// again.
    fn l2_retry(&mut self, now: Cycle, pa: PhysAddr, w: L2Waiter) {
        match self.l2_cache.probe(pa) {
            Probe::Hit | Probe::HitUnguaranteed => {
                let meta = self.sector_meta(pa);
                let extra = if meta.compressed { self.cfg.spec.decompression_latency } else { 0 };
                match w {
                    L2Waiter::Sector { sm } => {
                        self.q.schedule(now + extra, Ev::L1Fill { sm, pa: pa.0 })
                    }
                    L2Waiter::Walk { walk } => self.advance_walk(now, walk),
                }
            }
            Probe::Miss => match self.l2_mshr.request(pa.0, w) {
                MshrGrant::Allocated => {
                    let done = self.dram.access(pa, DramOp::Read, now, SECTOR_BYTES);
                    self.q.schedule(done, Ev::DramDone { pa: pa.0 });
                }
                MshrGrant::Merged => {}
                MshrGrant::Full => self.l2_mshr_overflow.push_front((pa.0, w)),
            },
        }
    }

    /// Writes a dirty L1 sector back into the L2 (write-back, 
    /// write-allocate hierarchy). Cascading L2 evictions write to DRAM.
    fn writeback_to_l2(&mut self, now: Cycle, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        let evicted = self.l2_cache.fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: true, dirty: true },
        );
        self.writeback_evicted_l2(now, evicted);
    }

    /// Writes the dirty sectors of an evicted L2 line to DRAM.
    fn writeback_evicted_l2(&mut self, now: Cycle, evicted: Option<crate::cache::EvictedLine>) {
        if let Some(ev) = evicted {
            for sector in 0..crate::addr::SECTORS_PER_LINE {
                let f = ev.sectors[sector as usize];
                if f.valid && f.dirty {
                    let spa =
                        PhysAddr(ev.line_addr * crate::addr::LINE_BYTES + sector * SECTOR_BYTES);
                    // Fire-and-forget: the writeback occupies the channel
                    // but nothing waits on it.
                    self.dram.access(spa, DramOp::Write, now, SECTOR_BYTES);
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    /// The frame owner, whichever tenant's region the frame lies in.
    fn frame_owner_any(&self, ppn: Ppn) -> Option<(usize, crate::uvm::FrameOwner)> {
        let tenant = crate::uvm::tenant_of_frame(ppn);
        let uvm = self.uvms.get(tenant)?;
        uvm.frame_owner(ppn).map(|o| (tenant, o))
    }

    /// What the memory controller sees in the stored sector at `pa`.
    fn sector_meta(&mut self, pa: PhysAddr) -> FetchedSector {
        if pa.0 >= PT_BASE {
            return FetchedSector { compressed: false, embedded: None };
        }
        match self.frame_owner_any(pa.ppn()) {
            Some((tenant, owner)) if owner.embedded => {
                let sector = (pa.page_offset() / SECTOR_BYTES) as u32;
                if self.compression.compressible(owner.vpn, sector) {
                    let asid = self.asid_of(tenant);
                    FetchedSector {
                        compressed: true,
                        embedded: Some(PageMeta { vpn: owner.vpn, asid }),
                    }
                } else {
                    FetchedSector { compressed: false, embedded: None }
                }
            }
            _ => FetchedSector { compressed: false, embedded: None },
        }
    }

    fn l1_fill(&mut self, now: Cycle, sm: u32, pa: PhysAddr) {
        let meta = self.sector_meta(pa);
        // Fill invisible first; waiters below decide visibility.
        let evicted_line = self.l1_caches[sm as usize].fill(
            pa,
            SectorFlags { valid: true, compressed: meta.compressed, guaranteed: false, dirty: false },
        );
        if let Some(ev) = evicted_line {
            for sector in 0..crate::addr::SECTORS_PER_LINE {
                let spa = PhysAddr(ev.line_addr * crate::addr::LINE_BYTES + sector * SECTOR_BYTES);
                self.wake_unguaranteed(now, sm, spa);
                // Write-back: dirty sectors leave the L1 toward the L2.
                let f = ev.sectors[sector as usize];
                if f.valid && f.dirty {
                    self.writeback_to_l2(now, spa);
                }
            }
        }
        let mut guarantee = false;
        let mut dirty = false;
        let mut all_killed_specs = true;
        if let Some(mut waiters) = self.l1_mshrs[sm as usize].complete(pa.0) {
            for id in waiters.drain(..) {
                if self.trace_req.is_some() {
                    self.trace(id, &format!("l1_fill waiter pa={:#x}", pa.0));
                }
                let req = self.req(id);
                if req.completed {
                    // Already satisfied elsewhere; never a reason to drop
                    // the freshly fetched data. (This read through the
                    // waiter copy is why completion alone must not free a
                    // request — only a zero pin count may.)
                    all_killed_specs = false;
                    self.req_unref(id);
                    continue;
                }
                if req.translation_done {
                    if req.real_pa() == Some(pa) {
                        // Normal fetch (or a correct-spec merge): usable.
                        guarantee = true;
                        all_killed_specs = false;
                        if req.is_store {
                            dirty = true;
                        }
                        self.complete_req(now, id);
                    }
                    // else: stale fill for a killed speculation; ignore.
                    self.req_unref(id);
                    continue;
                }
                // Untranslated waiter: must be a speculative fetch.
                if req.spec_pa() == Some(pa) {
                    let spec = req.spec.expect("spec fetch has state");
                    if spec.ideal {
                        // Pre-confirmed by ideal validation; the oracle
                        // mapping also releases the translation machinery.
                        guarantee = true;
                        all_killed_specs = false;
                        self.stats.outcomes.record(SpecOutcome::FastTranslation);
                        #[cfg(feature = "probes")]
                        {
                            let (warp, started) = {
                                let r = self.req(id);
                                (r.warp, r.spec_started)
                            };
                            self.stats.validation_latency_hist.add(now.saturating_sub(started));
                            self.probe_instant(
                                SpanPoint::Validation,
                                Track::sm_warp(sm, warp),
                                now,
                                1,
                            );
                        }
                        let vpn = self.req(id).vpn();
                        self.complete_req(now, id);
                        self.eaf_resolve(now, sm, vpn, spec.ppn);
                        self.req_unref(id);
                        continue;
                    }
                    let ctx = SpecFillContext {
                        sm: sm as usize,
                        pc: req.pc,
                        requested_vpn: req.vpn(),
                        asid: self.asid_of(self.tenant_of_sm(sm)),
                        spec_ppn: spec.ppn,
                        sector: meta,
                    };
                    match self.accel.on_spec_fill(&ctx) {
                        SpecFillAction::AwaitTranslation => {
                            all_killed_specs = false;
                        }
                        SpecFillAction::Validated { eaf } => {
                            guarantee = true;
                            all_killed_specs = false;
                            if meta.compressed {
                                self.stats.spec_compressed += 1;
                            }
                            self.stats.outcomes.record(SpecOutcome::FastTranslation);
                            #[cfg(feature = "probes")]
                            {
                                let (warp, started) = {
                                    let r = self.req(id);
                                    (r.warp, r.spec_started)
                                };
                                self.stats
                                    .validation_latency_hist
                                    .add(now.saturating_sub(started));
                                self.probe_instant(
                                    SpanPoint::Validation,
                                    Track::sm_warp(sm, warp),
                                    now,
                                    1,
                                );
                            }
                            let vpn = self.req(id).vpn();
                            self.complete_req(now, id);
                            if eaf {
                                self.eaf_resolve(now, sm, vpn, spec.ppn);
                            }
                        }
                        SpecFillAction::Invalidate => {
                            self.stats.cava_mismatches += 1;
                            #[cfg(feature = "probes")]
                            {
                                let (warp, started) = {
                                    let r = self.req(id);
                                    (r.warp, r.spec_started)
                                };
                                self.stats
                                    .validation_latency_hist
                                    .add(now.saturating_sub(started));
                                self.probe_instant(
                                    SpanPoint::Validation,
                                    Track::sm_warp(sm, warp),
                                    now,
                                    0,
                                );
                            }
                            self.req_mut(id).spec.as_mut().expect("spec state outlives its in-flight sector fetch").killed = true;
                        }
                    }
                }
                self.req_unref(id);
            }
        } else {
            // No waiters (e.g. a refill after invalidation): plain data.
            guarantee = true;
            all_killed_specs = false;
        }
        if guarantee {
            self.l1_caches[sm as usize].set_guarantee(pa, true);
            if dirty {
                self.l1_caches[sm as usize].mark_dirty(pa);
            }
            self.wake_unguaranteed(now, sm, pa);
        } else if all_killed_specs {
            // Only mis-speculated fetches wanted this sector: drop it.
            self.l1_caches[sm as usize].invalidate_sector(pa);
            self.wake_unguaranteed(now, sm, pa);
        }
        // L1 MSHR space freed: admit overflow waiters into free capacity.
        while let Some(&id) = self.l1_mshr_overflow[sm as usize].front() {
            if self.req(id).completed {
                self.l1_mshr_overflow[sm as usize].pop_front();
                self.req_unref(id);
                continue;
            }
            let target = self.req(id).real_pa().expect("overflowed after translation");
            if self.l1_mshrs[sm as usize].is_full() && !self.l1_mshrs[sm as usize].contains(target.0) {
                break;
            }
            self.l1_mshr_overflow[sm as usize].pop_front();
            // The retry (`l1_miss`) re-pins before the queue's pin drops.
            self.l1_miss(now, id, target);
            self.req_unref(id);
        }
    }

    /// Early TLB Fill: installs the validated translation, releases pending
    /// translation resources, aborts the in-flight walk, and propagates the
    /// entry to other SMs waiting on the same page.
    fn eaf_resolve(&mut self, now: Cycle, sm: u32, vpn: Vpn, ppn: Ppn) {
        self.stats.eaf_fills += 1;
        let tenant = self.tenant_of_sm(sm);
        let vpn = Vpn(self.salt(tenant, vpn));
        let fill = TlbFill { vpn, ppn, pages: 1, run: None };
        self.l2_tlb.fill(&fill);
        // Wake this SM's own waiters (other requests to the same page).
        self.resolve_for_sm(now, sm, vpn.0, ppn, &fill, true);
        // Release the shared translation machinery.
        if let Some(mut waiters) = self.l2_tlb_mshr.complete(vpn.0) {
            self.stats.eaf_releases += 1;
            if let Some(walk) = self.walk_of_vpn.remove(&vpn.0) {
                if self.walks.abort(walk) {
                    self.stats.walks_aborted += 1;
                }
                self.vpn_of_walk.remove(&walk);
                self.walk_started.remove(&vpn.0);
                // The aborted walk freed a walker: dispatch synchronously.
                self.walk_dispatch(now);
            }
            self.pw_overflow.retain(|&v| v != vpn.0);
            let mut seen = Vec::new();
            for other in waiters.drain(..) {
                if other != sm && !seen.contains(&other) {
                    seen.push(other);
                    self.resolve_for_sm(now, other, vpn.0, ppn, &fill, true);
                }
            }
            self.l2_tlb_mshr.recycle(waiters);
        }
        // Cross-SM propagation: the entry is *prefetched* into every
        // other SM's L1 TLB ("ensuring the desired translation is
        // efficiently prefetched across SMs"), not only handed to SMs
        // with a pending miss.
        if self.accel.propagates_cross_sm() {
            for other in 0..self.cfg.num_sms as u32 {
                // Isolation: entries are only forwarded within the tenant.
                if other != sm && self.tenant_of_sm(other) == tenant {
                    self.stats.eaf_cross_sm_fills += 1;
                    self.resolve_for_sm(now, other, vpn.0, ppn, &fill, true);
                }
            }
        }
        self.drain_l2_tlb_overflow(now);
    }

    fn complete_req(&mut self, now: Cycle, id: ReqId) {
        let (sm, warp, issued) = {
            let req = self.req_mut(id);
            debug_assert!(!req.completed, "double completion of request {id:?}");
            req.completed = true;
            (req.sm, req.warp, req.issued)
        };
        self.trace(id, "complete");
        self.stats.sector_latency.add(now - issued);
        self.stats.sector_latency_hist.add(now - issued);
        self.probe_complete(now, id);
        let slot = self.warp_slot(sm, warp);
        crate::debug_invariant!(
            self.warp_outstanding[slot] > 0,
            "completing request {id:?} for a warp with no outstanding sectors"
        );
        self.warp_outstanding[slot] -= 1;
        let left = self.warp_outstanding[slot];
        if left == 0 {
            self.stats.load_latency.add(now - self.warp_issue_time[slot]);
            self.sms[sm as usize].set_warp(warp as usize, WarpState::Ready, now);
            self.q.schedule(now + 1, Ev::WarpIssue { sm, warp });
        } else {
            self.sms[sm as usize].set_warp(
                warp as usize,
                WarpState::WaitingMemory { outstanding: left },
                now,
            );
        }
    }

    fn record_coverage(&mut self, pages: u64) {
        let bucket = CoverageBucket::of_pages(pages);
        let idx = CoverageBucket::ALL
            .iter()
            .position(|b| *b == bucket)
            .expect("CoverageBucket::ALL enumerates every bucket of_pages can return");
        self.stats.coverage_hits[idx] += 1;
    }

    /// Asserts whole-system consistency: every structure's own audit
    /// (calendar slab, cache/TLB directories, MSHR files, walker, UVM)
    /// plus the cross-structure invariants only the engine can see —
    /// the walk-to-page maps are mutual inverses, every walk the walker
    /// tracks is known to the engine, walk start-times belong to live
    /// walks, and the per-warp outstanding counters sum to exactly the
    /// incomplete sector requests.
    ///
    /// Read-only and O(total structure size): called between events, never
    /// inside a handler. Checked (`invariants` feature) builds run it
    /// every [`crate::invariant::audit_interval`] events and at end of
    /// run; tests may call it directly in any build.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        self.q.audit_invariants();
        self.reqs.audit_invariants();
        for c in &self.l1_caches {
            c.audit_invariants();
        }
        self.l2_cache.audit_invariants();
        for t in &self.l1_tlbs {
            t.audit_invariants();
        }
        self.l2_tlb.audit_invariants();
        for m in &self.l1_tlb_mshrs {
            m.audit_invariants();
        }
        self.l2_tlb_mshr.audit_invariants();
        for m in &self.l1_mshrs {
            m.audit_invariants();
        }
        self.l2_mshr.audit_invariants();
        self.walks.audit_invariants();
        for u in &self.uvms {
            u.audit_invariants();
        }

        // The walk maps are mutual inverses (keys are salted VPNs).
        assert_eq!(
            self.walk_of_vpn.len(),
            self.vpn_of_walk.len(),
            "walk maps disagree on live walk count"
        );
        for (&svpn, &walk) in &self.walk_of_vpn {
            let back = self
                .vpn_of_walk
                .get(&walk)
                // Audit code: panicking is the whole point. lint:allow(hot-path-panic)
                .unwrap_or_else(|| panic!("walk {} for page {svpn} has no inverse entry", walk.0));
            assert_eq!(back.0, svpn, "walk {} maps back to page {}, not {svpn}", walk.0, back.0);
        }
        for &svpn in self.walk_started.keys() {
            assert!(
                self.walk_of_vpn.contains_key(&svpn),
                "walk start-time recorded for page {svpn} with no live walk"
            );
        }
        for id in self.walks.pending_walk_ids() {
            assert!(
                self.vpn_of_walk.contains_key(&id),
                "walker tracks walk {} unknown to the engine",
                id.0
            );
        }

        // Waiter conservation: each warp's outstanding counter drops by one
        // exactly when one of its sector requests completes (fast-path
        // warps allocate no requests and zero their counter at issue), so
        // the sums must agree at every event boundary.
        let outstanding: u64 = self.warp_outstanding.iter().map(|&o| o as u64).sum();
        let mut incomplete = 0u64;
        self.reqs.for_each(|_, r| {
            if !r.completed {
                incomplete += 1;
            }
        });
        assert_eq!(
            outstanding, incomplete,
            "warp outstanding counters desynchronized from incomplete requests"
        );

        // Reference conservation: each live request's pin count must equal
        // the stored copies of its id across the calendar, the MSHR waiter
        // lists, and the overflow queues — and no stored id may be stale.
        // A mismatch here is what would let the slab free (and recycle) a
        // slot that an in-flight event still points at.
        let mut counted: FxHashMap<ReqId, u32> = FxHashMap::default();
        {
            let mut bump = |id: ReqId| *counted.entry(id).or_insert(0) += 1;
            self.q.for_each_event(|ev| match *ev {
                Ev::L1TlbResult { req }
                | Ev::SpecL1Result { req }
                | Ev::L1Result { req }
                | Ev::RemoteDone { req } => bump(req),
                _ => {}
            });
            for m in &self.l1_tlb_mshrs {
                m.for_each_waiter(|&id| bump(id));
            }
            for m in &self.l1_mshrs {
                m.for_each_waiter(|&id| bump(id));
            }
            for v in &self.tlb_overflow {
                for &id in v {
                    bump(id);
                }
            }
            for dq in &self.l1_mshr_overflow {
                for &id in dq {
                    bump(id);
                }
            }
            for v in self.unguaranteed_waiters.values() {
                for &id in v {
                    bump(id);
                }
            }
        }
        for (&id, &n) in &counted {
            assert!(
                self.reqs.get(id).is_some(),
                "stale request id {id:?} still referenced by {n} holder(s)"
            );
        }
        self.reqs.for_each(|id, r| {
            let stored = counted.get(&id).copied().unwrap_or(0);
            assert_eq!(
                r.refs, stored,
                "request {id:?} pin count disagrees with its stored copies"
            );
            assert!(
                r.refs > 0,
                "live request {id:?} is unreachable: no event or waiter references it"
            );
            // Per-shard slab accounting: a request must live in the bank
            // of the shard that owns its SM, or request-carrying events
            // would route to a domain whose handler state is foreign.
            assert_eq!(
                id.shard(),
                self.shard_for_sm(r.sm),
                "request {id:?} for SM {} stored in the wrong shard bank",
                r.sm
            );
        });

        // Per-shard slab accounting: one bank per calendar shard domain,
        // and each bank's live count must match the requests actually
        // tagged with that shard.
        assert_eq!(
            self.reqs.banks(),
            self.q.shards(),
            "request banks out of step with calendar shard domains"
        );
        let mut per_bank = vec![0usize; self.reqs.banks()];
        self.reqs.for_each(|id, _| per_bank[id.shard()] += 1);
        for (shard, &n) in per_bank.iter().enumerate() {
            assert_eq!(
                self.reqs.bank_len(shard),
                n,
                "shard {shard} bank length disagrees with its live requests"
            );
        }
    }

    /// Deliberately corrupts the event calendar's free list so checked-mode
    /// tests can prove the audit detects real damage.
    #[cfg(feature = "invariants")]
    pub fn corrupt_event_queue_for_test(&mut self) {
        self.q.corrupt_free_list_for_test();
    }

    /// Deliberately unbalances the sharded calendar's exchange-queue
    /// conservation counters (slab corruption on the single-calendar
    /// path), the sharded audit's negative-test hook.
    #[cfg(feature = "invariants")]
    pub fn corrupt_exchange_for_test(&mut self) {
        self.q.corrupt_exchange_for_test();
    }
}
