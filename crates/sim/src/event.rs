//! Deterministic discrete-event calendar.
//!
//! The queue is the single hottest structure in the simulator: every cache
//! fill, TLB probe, walker step, and DRAM burst passes through it. The
//! implementation is a calendar wheel — a power-of-two ring of per-cycle
//! buckets covering the near future, plus a binary-heap overflow for events
//! scheduled beyond the ring. Near events (the overwhelming majority:
//! pipeline, cache, and DRAM latencies are all well under the ring span)
//! cost O(1) push and amortized-O(1) pop instead of the O(log n)
//! sift of a global heap.
//!
//! Event payloads live in a **slab**: a single grow-only arena of slots
//! threaded into per-bucket singly-linked lists through `u32` indices, with
//! a free list recycling retired slots. Scheduling an event in steady state
//! allocates nothing and moves no enum values through the calendar — a
//! bucket is just a `(head, tail)` index pair. An occupancy bitmap (one bit
//! per bucket) lets `pop` jump straight to the next occupied cycle instead
//! of draining empty buckets one at a time; the cycles skipped that way are
//! reported as `idle_cycles_skipped` (the engine surfaces them in
//! [`crate::stats::Stats`]). The jump can be disabled
//! ([`EventQueue::set_fast_forward`]) to force the legacy linear scan —
//! both paths visit the identical event sequence, which a workspace test
//! pins byte-for-byte.
//!
//! Ordering semantics are identical to the heap it replaced and are pinned
//! by differential tests below: events pop in ascending cycle order, and
//! events scheduled for the same cycle pop in the order they were pushed
//! (FIFO by a global sequence number), which keeps whole-simulation runs
//! bit-reproducible.

use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring span in cycles. Must be a power of two. Events scheduled less than
/// `WINDOW` cycles ahead of the calendar cursor go into the ring; the rest
/// (UVM far-faults, long DRAM refresh horizons) go to the overflow heap.
const WINDOW: u64 = 1024;
/// Words in the bucket-occupancy bitmap.
const OCC_WORDS: usize = (WINDOW / 64) as usize;
/// Null slab index (list terminator / empty bucket).
const NIL: u32 = u32::MAX;

/// One slab slot: an event plus its calendar linkage.
#[derive(Debug)]
struct Slot<E> {
    time: Cycle,
    seq: u64,
    /// Next slot in the same bucket's FIFO list.
    next: u32,
    /// `None` only while the slot sits on the free list.
    event: Option<E>,
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same cycle pop in the order they were pushed,
/// which keeps whole-simulation runs bit-reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Pool-recycled event storage; buckets and the overflow heap hold
    /// `u32` indices into this arena.
    slab: Vec<Slot<E>>,
    /// Retired slot indices, reused LIFO.
    free: Vec<u32>,
    /// Near-future ring: bucket `t & (WINDOW-1)` is the FIFO list head for
    /// cycle `t` while `t` lies within `[cursor, cursor + WINDOW)`. Because
    /// the cursor only moves forward to popped-event times, every live
    /// bucket holds events of exactly one cycle, already in sequence order.
    heads: Vec<u32>,
    /// Tail of each bucket's list (for O(1) FIFO append).
    tails: Vec<u32>,
    /// One bit per bucket: set iff the bucket list is non-empty. `pop`
    /// scans this to jump over empty cycles in O(words) instead of
    /// O(elapsed cycles).
    occupied: [u64; OCC_WORDS],
    /// Events at least `WINDOW` cycles ahead of the cursor at the time
    /// they were scheduled. Popped by `(time, seq)` comparison against the
    /// ring head, so an early-scheduled far event still wins FIFO ties.
    overflow: BinaryHeap<Reverse<FarEntry>>,
    /// Number of events currently in the ring.
    ring_len: usize,
    /// Scan position: no pending event anywhere is earlier than `cursor`.
    cursor: Cycle,
    seq: u64,
    now: Cycle,
    /// Whether `pop` may jump over empty buckets via the occupancy bitmap.
    fast_forward: bool,
    /// Cycles jumped over while fast-forwarding (0 when disabled).
    idle_skipped: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct FarEntry {
    time: Cycle,
    seq: u64,
    slot: u32,
}

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0 with fast-forward enabled.
    pub fn new() -> Self {
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; WINDOW as usize],
            tails: vec![NIL; WINDOW as usize],
            occupied: [0; OCC_WORDS],
            overflow: BinaryHeap::new(),
            ring_len: 0,
            cursor: 0,
            seq: 0,
            now: 0,
            fast_forward: true,
            idle_skipped: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Enables or disables the empty-bucket jump. Popping order is
    /// identical either way; only the scan cost and the
    /// [`idle_cycles_skipped`](Self::idle_cycles_skipped) accounting
    /// change.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles jumped over by fast-forward so far (0 while disabled).
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.idle_skipped
    }

    /// Takes a slot from the free list or grows the slab.
    #[inline]
    fn alloc_slot(&mut self, time: Cycle, seq: u64, event: E) -> u32 {
        if let Some(i) = self.free.pop() {
            let s = &mut self.slab[i as usize];
            s.time = time;
            s.seq = seq;
            s.next = NIL;
            s.event = Some(event);
            i
        } else {
            let i = self.slab.len() as u32;
            self.slab.push(Slot { time, seq, next: NIL, event: Some(event) });
            i
        }
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot(time, seq, event);
        if time - self.cursor < WINDOW {
            let b = (time & (WINDOW - 1)) as usize;
            if self.heads[b] == NIL {
                self.heads[b] = slot;
                self.occupied[b / 64] |= 1 << (b % 64);
            } else {
                self.slab[self.tails[b] as usize].next = slot;
            }
            self.tails[b] = slot;
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(FarEntry { time, seq, slot }));
        }
    }

    /// Schedules `event` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, event: E) {
        self.schedule(self.now + delta, event);
    }

    /// Schedules `event` at `time` under a caller-assigned sequence
    /// number instead of the queue's own allocator. The sharded calendar
    /// owns a single global sequence counter and distributes events
    /// across per-domain queues; a barrier drain can therefore deliver an
    /// exchange-ring entry (older seq) into a bucket that already holds a
    /// directly-scheduled newer one, so this insert keeps each bucket's
    /// list sorted by seq rather than blindly appending.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule_at_seq(&mut self, time: Cycle, seq: u64, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        self.seq = self.seq.max(seq + 1);
        let slot = self.alloc_slot(time, seq, event);
        if time - self.cursor < WINDOW {
            let b = (time & (WINDOW - 1)) as usize;
            if self.heads[b] == NIL {
                self.heads[b] = slot;
                self.tails[b] = slot;
                self.occupied[b / 64] |= 1 << (b % 64);
            } else if self.slab[self.tails[b] as usize].seq < seq {
                // Fast path: appending keeps the list sorted.
                self.slab[self.tails[b] as usize].next = slot;
                self.tails[b] = slot;
            } else if seq < self.slab[self.heads[b] as usize].seq {
                self.slab[slot as usize].next = self.heads[b];
                self.heads[b] = slot;
            } else {
                let mut prev = self.heads[b];
                loop {
                    let next = self.slab[prev as usize].next;
                    if next == NIL || self.slab[next as usize].seq > seq {
                        break;
                    }
                    prev = next;
                }
                let next = self.slab[prev as usize].next;
                self.slab[slot as usize].next = next;
                self.slab[prev as usize].next = slot;
                if next == NIL {
                    self.tails[b] = slot;
                }
            }
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(FarEntry { time, seq, slot }));
        }
    }

    /// `(time, seq)` of the event `pop` would return next, without
    /// popping. Read-only; the engine's window loop compares lane heads
    /// this way when choosing the next window start.
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        let ring = if self.ring_len > 0 {
            let t = self.next_occupied();
            let head = self.heads[(t & (WINDOW - 1)) as usize];
            let s = &self.slab[head as usize];
            Some((s.time, s.seq))
        } else {
            None
        };
        let over = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));
        match (ring, over) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        }
    }

    /// Cycle of the earliest non-empty ring bucket at or after `cursor`,
    /// via the occupancy bitmap: scans at most `OCC_WORDS` words.
    #[inline]
    fn next_occupied(&self) -> Cycle {
        let start = (self.cursor & (WINDOW - 1)) as usize;
        let mut word = start / 64;
        let mut bits = self.occupied[word] & (!0u64 << (start % 64));
        for scanned in 0..=OCC_WORDS {
            if bits != 0 {
                let bucket = (word * 64) as u64 + bits.trailing_zeros() as u64;
                let dist = bucket.wrapping_sub(self.cursor) & (WINDOW - 1);
                return self.cursor + dist;
            }
            debug_assert!(scanned < OCC_WORDS, "ring_len desynchronized from bitmap");
            word = (word + 1) % OCC_WORDS;
            bits = self.occupied[word];
        }
        // The loop scans every OCC_WORDS word; ring_len > 0 guarantees a
        // set bit, and the debug_assert above fires first if the bitmap
        // ever desynchronizes. lint:allow(hot-path-panic)
        unreachable!("ring_len > 0 guarantees an occupied bucket");
    }

    /// Cycle of the earliest non-empty ring bucket, by the legacy
    /// one-bucket-per-cycle scan (fast-forward disabled).
    #[inline]
    fn next_occupied_scan(&self) -> Cycle {
        let mut t = self.cursor;
        loop {
            if self.heads[(t & (WINDOW - 1)) as usize] != NIL {
                return t;
            }
            t += 1;
            debug_assert!(t - self.cursor <= WINDOW, "ring_len desynchronized");
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let ring_head = if self.ring_len > 0 {
            let t = if self.fast_forward { self.next_occupied() } else { self.next_occupied_scan() };
            let head = self.heads[(t & (WINDOW - 1)) as usize];
            debug_assert_ne!(head, NIL);
            let s = &self.slab[head as usize];
            debug_assert_eq!(s.time, t, "bucket holds a foreign cycle");
            Some((s.time, s.seq))
        } else {
            None
        };
        let overflow_head = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));

        let take_ring = match (ring_head, overflow_head) {
            (Some(r), Some(o)) => r < o,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (time, slot) = if take_ring {
            let (t, _) = ring_head.expect("take_ring implies the ring head exists");
            let b = (t & (WINDOW - 1)) as usize;
            let slot = self.heads[b];
            self.heads[b] = self.slab[slot as usize].next;
            if self.heads[b] == NIL {
                self.tails[b] = NIL;
                self.occupied[b / 64] &= !(1 << (b % 64));
            }
            self.ring_len -= 1;
            (t, slot)
        } else {
            let Reverse(e) = self.overflow.pop().expect("overflow head vanished");
            (e.time, e.slot)
        };
        let event = self.slab[slot as usize].event.take().expect("slot holds an event");
        self.free.push(slot);
        if self.fast_forward {
            // Cycles strictly between the previous and the new clock carry
            // no events at all — they were never visited.
            self.idle_skipped += (time - self.now).saturating_sub(1);
        }
        self.now = time;
        self.cursor = time;
        Some((time, event))
    }

    /// Pops the next event only if its timestamp is strictly below
    /// `horizon`, advancing the clock to it. Returns `None` when the
    /// queue is empty or its head lies at or beyond the horizon — in
    /// the latter case the clock does not move. This is the shard-lane
    /// drain primitive: workers pop until the window's horizon without
    /// paying a separate peek scan per event.
    pub fn pop_before(&mut self, horizon: Cycle) -> Option<(Cycle, E)> {
        let ring_head = if self.ring_len > 0 {
            let t = if self.fast_forward { self.next_occupied() } else { self.next_occupied_scan() };
            let head = self.heads[(t & (WINDOW - 1)) as usize];
            debug_assert_ne!(head, NIL);
            let s = &self.slab[head as usize];
            debug_assert_eq!(s.time, t, "bucket holds a foreign cycle");
            Some((s.time, s.seq))
        } else {
            None
        };
        let overflow_head = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));

        let take_ring = match (ring_head, overflow_head) {
            (Some(r), Some(o)) => {
                if r.min(o).0 >= horizon {
                    return None;
                }
                r < o
            }
            (Some(r), None) => {
                if r.0 >= horizon {
                    return None;
                }
                true
            }
            (None, Some(o)) => {
                if o.0 >= horizon {
                    return None;
                }
                false
            }
            (None, None) => return None,
        };
        let (time, slot) = if take_ring {
            let (t, _) = ring_head.expect("take_ring implies the ring head exists");
            let b = (t & (WINDOW - 1)) as usize;
            let slot = self.heads[b];
            self.heads[b] = self.slab[slot as usize].next;
            if self.heads[b] == NIL {
                self.tails[b] = NIL;
                self.occupied[b / 64] &= !(1 << (b % 64));
            }
            self.ring_len -= 1;
            (t, slot)
        } else {
            let Reverse(e) = self.overflow.pop().expect("overflow head vanished");
            (e.time, e.slot)
        };
        let event = self.slab[slot as usize].event.take().expect("slot holds an event");
        self.free.push(slot);
        if self.fast_forward {
            self.idle_skipped += (time - self.now).saturating_sub(1);
        }
        self.now = time;
        self.cursor = time;
        Some((time, event))
    }

    /// Visits every pending event (ring and overflow) in unspecified
    /// order. Read-only; checked-mode reference audits recompute
    /// per-request refcounts this way.
    pub fn for_each_event(&self, mut f: impl FnMut(&E)) {
        for s in &self.slab {
            if let Some(e) = &s.event {
                f(e);
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Asserts the calendar's full internal consistency: slab accounting
    /// (every slot is on the free list, in a ring bucket, or in the
    /// overflow heap — exactly once), bucket-list acyclicity and FIFO
    /// sequence order, head/tail/occupancy-bitmap agreement, and that
    /// every pending event lies at or after the cursor.
    ///
    /// O(slab + WINDOW) and read-only; the engine calls it periodically in
    /// checked (`invariants` feature) builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        assert_eq!(
            self.slab.len(),
            self.free.len() + self.ring_len + self.overflow.len(),
            "slab slots leaked: {} slots, {} free + {} ring + {} overflow",
            self.slab.len(),
            self.free.len(),
            self.ring_len,
            self.overflow.len()
        );
        // Every slot must be claimed by exactly one owner.
        let mut seen = vec![false; self.slab.len()];
        let mut claim = |slot: u32, role: &str| {
            let i = slot as usize;
            assert!(i < self.slab.len(), "{role} holds out-of-range slot {slot}");
            assert!(!seen[i], "slot {slot} claimed twice (second owner: {role})");
            seen[i] = true;
        };
        for &f in &self.free {
            claim(f, "free list");
            assert!(
                self.slab[f as usize].event.is_none(),
                "free slot {f} still holds an event"
            );
        }
        let mut ring_count = 0usize;
        for b in 0..WINDOW as usize {
            let head = self.heads[b];
            let bit_set = self.occupied[b / 64] >> (b % 64) & 1 == 1;
            assert_eq!(bit_set, head != NIL, "occupancy bit disagrees with bucket {b}");
            assert_eq!(head == NIL, self.tails[b] == NIL, "head/tail disagree in bucket {b}");
            let mut cur = head;
            let mut prev_seq = None;
            let mut last = NIL;
            let mut steps = 0usize;
            while cur != NIL {
                steps += 1;
                assert!(steps <= self.slab.len(), "cycle in bucket {b} list");
                claim(cur, "ring bucket");
                let s = &self.slab[cur as usize];
                assert!(s.event.is_some(), "ring slot {cur} holds no event");
                assert_eq!(
                    (s.time & (WINDOW - 1)) as usize,
                    b,
                    "slot in bucket {b} carries a time that maps elsewhere"
                );
                assert!(
                    s.time >= self.cursor && s.time - self.cursor < WINDOW,
                    "ring event at cycle {} outside window [{}, {})",
                    s.time,
                    self.cursor,
                    self.cursor + WINDOW
                );
                assert!(s.seq < self.seq, "slot seq {} from the future", s.seq);
                if let Some(p) = prev_seq {
                    assert!(s.seq > p, "bucket {b} FIFO order broken: {} after {p}", s.seq);
                }
                prev_seq = Some(s.seq);
                last = cur;
                cur = s.next;
            }
            if head != NIL {
                assert_eq!(self.tails[b], last, "tail of bucket {b} is not its last node");
            }
            ring_count += steps;
        }
        assert_eq!(ring_count, self.ring_len, "ring_len desynchronized from bucket lists");
        for Reverse(e) in self.overflow.iter() {
            claim(e.slot, "overflow heap");
            let s = &self.slab[e.slot as usize];
            assert!(s.event.is_some(), "overflow slot {} holds no event", e.slot);
            assert_eq!(
                (s.time, s.seq),
                (e.time, e.seq),
                "overflow entry disagrees with its slab slot"
            );
            assert!(e.time >= self.cursor, "overflow event at {} behind cursor {}", e.time, self.cursor);
            assert!(e.seq < self.seq, "overflow seq {} from the future", e.seq);
        }
    }

    /// Serializes the calendar (checkpointing): clock state plus every
    /// pending event as `(time, seq, payload)` triples in `(time, seq)`
    /// order. Slab slot indices and the ring/overflow partition are
    /// *not* serialized — they are internal bookkeeping with no effect
    /// on pop order, and restore re-inserts canonically.
    // lint:exempt(checkpoint-field-parity: free, heads, tails, occupied, overflow, and ring_len are slab/ring bookkeeping with no effect on pop order; load_state clears them and re-inserts every event canonically)
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &E)) {
        w.u64(self.cursor);
        w.u64(self.seq);
        w.u64(self.now);
        w.bool(self.fast_forward);
        w.u64(self.idle_skipped);
        let mut pending: Vec<(Cycle, u64, u32)> = self
            .slab
            .iter()
            .enumerate()
            .filter(|(_, s)| s.event.is_some())
            .map(|(i, s)| (s.time, s.seq, i as u32))
            .collect();
        pending.sort_unstable_by_key(|&(t, s, _)| (t, s));
        w.usize(pending.len());
        for (t, seq, slot) in pending {
            w.u64(t);
            w.u64(seq);
            let e = self.slab[slot as usize]
                .event
                .as_ref()
                .expect("pending list only holds occupied slots");
            enc(w, e);
        }
    }

    /// Restores a calendar written by [`save_state`](Self::save_state),
    /// replacing this queue's entire contents.
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader,
        dec: &mut dyn FnMut(&mut Reader) -> Result<E, CkptError>,
    ) -> Result<(), CkptError> {
        self.slab.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occupied = [0; OCC_WORDS];
        self.overflow.clear();
        self.ring_len = 0;
        self.cursor = r.u64()?;
        let saved_seq = r.u64()?;
        self.now = r.u64()?;
        self.fast_forward = r.bool()?;
        self.idle_skipped = r.u64()?;
        if self.cursor > self.now {
            return Err(CkptError::Corrupt("calendar cursor ahead of its clock"));
        }
        self.seq = 0;
        let n = r.seq_len()?;
        let mut prev = None;
        for _ in 0..n {
            let t = r.u64()?;
            let seq = r.u64()?;
            if t < self.now || seq >= saved_seq {
                return Err(CkptError::Corrupt("calendar event behind clock or from the future"));
            }
            if let Some(p) = prev {
                if (t, seq) <= p {
                    return Err(CkptError::Corrupt("calendar events not in (time, seq) order"));
                }
            }
            prev = Some((t, seq));
            let e = dec(r)?;
            self.schedule_at_seq(t, seq, e);
        }
        self.seq = saved_seq;
        Ok(())
    }

    /// Deliberately pushes an in-use slot onto the free list, breaking the
    /// slab accounting. Exists only so the checked-mode test suite can
    /// prove [`audit_invariants`](Self::audit_invariants) actually catches
    /// corruption.
    #[cfg(feature = "invariants")]
    pub fn corrupt_free_list_for_test(&mut self) {
        // Prefer double-freeing a live slot; an empty calendar gets an
        // out-of-range index instead. Either way the slab accounting no
        // longer balances.
        let victim = self
            .slab
            .iter()
            .position(|s| s.event.is_some())
            .map(|i| i as u32)
            .unwrap_or(self.slab.len() as u32 + 7);
        self.free.push(victim);
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Heap entry for the oracle below (the slab queue no longer stores
    /// events inline, so the oracle keeps its own owning entry type).
    struct Entry<E> {
        time: Cycle,
        seq: u64,
        event: E,
    }
    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            (self.time, self.seq) == (other.time, other.seq)
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    /// The pre-calendar implementation — a single binary heap ordered by
    /// `(time, seq)` — kept as the ordering oracle for differential tests.
    struct ClassicHeap<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
        now: Cycle,
    }

    impl<E> ClassicHeap<E> {
        fn new() -> Self {
            Self { heap: BinaryHeap::new(), seq: 0, now: 0 }
        }
        fn schedule(&mut self, time: Cycle, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { time, seq, event }));
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse(e) = self.heap.pop()?;
            self.now = e.time;
            Some((e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        q.schedule(WINDOW * 10, "far");
        q.schedule(3, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((WINDOW * 10, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_wins_fifo_tie_against_ring() {
        // An event scheduled early (low seq) for a then-distant cycle must
        // still pop before a later-scheduled (high seq) event for the same
        // cycle, even though the former sits in the overflow heap and the
        // latter entered the ring once the cursor caught up.
        let mut q = EventQueue::new();
        let t = WINDOW + 100;
        q.schedule(t, "early-far"); // seq 0, overflow
        q.schedule(200, "mid"); // seq 1, ring
        assert_eq!(q.pop(), Some((200, "mid")));
        // Cursor is now 200; t - cursor < WINDOW, so this lands in the ring.
        q.schedule(t, "late-near"); // seq 2, ring
        assert_eq!(q.pop(), Some((t, "early-far")));
        assert_eq!(q.pop(), Some((t, "late-near")));
    }

    #[test]
    fn bucket_aliasing_across_windows_is_impossible_but_checked() {
        // Events exactly WINDOW apart share a bucket index; the second must
        // go to overflow until the cursor advances.
        let mut q = EventQueue::new();
        q.schedule(1, "a");
        q.schedule(1 + WINDOW, "b");
        q.schedule(1 + 2 * WINDOW, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((1 + WINDOW, "b")));
        assert_eq!(q.pop(), Some((1 + 2 * WINDOW, "c")));
    }

    /// Differential test: random schedule/pop interleavings produce the
    /// exact same (time, event) stream as the classic binary heap. This is
    /// the property the whole simulator's bit-reproducibility rests on.
    #[test]
    fn differential_matches_classic_heap() {
        for trial in 0..50u64 {
            let mut rng = SimRng::seed_from_u64(0xD1FF ^ trial);
            let mut calendar = EventQueue::new();
            // Cover both pop paths: bitmap jump and legacy linear scan.
            calendar.set_fast_forward(trial % 2 == 0);
            let mut classic = ClassicHeap::new();
            let mut next_tag = 0u32;
            for _ in 0..2000 {
                // Biased interleaving: mostly schedules early, mostly pops
                // late, with occasional same-cycle bursts to stress FIFO.
                if rng.next_f64() < 0.55 {
                    let horizon = if rng.next_f64() < 0.1 {
                        // Stress the overflow heap and ring hand-off.
                        WINDOW * 4
                    } else {
                        WINDOW / 2
                    };
                    let t = calendar.now() + rng.next_below(horizon);
                    let burst = 1 + rng.index(4);
                    for _ in 0..burst {
                        calendar.schedule(t, next_tag);
                        classic.schedule(t, next_tag);
                        next_tag += 1;
                    }
                } else {
                    assert_eq!(calendar.pop(), classic.pop(), "trial {trial} diverged");
                    assert_eq!(calendar.now(), classic.now);
                }
            }
            // Drain both completely.
            loop {
                let (a, b) = (calendar.pop(), classic.pop());
                assert_eq!(a, b, "trial {trial} diverged during drain");
                if a.is_none() {
                    break;
                }
            }
            assert!(calendar.is_empty());
            assert_eq!(calendar.len(), 0);
        }
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(5, 0);
        q.schedule(WINDOW * 2, 1);
        q.schedule(5, 2);
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn fast_forward_counts_skipped_idle_cycles() {
        let mut q = EventQueue::new();
        q.schedule(10, "a"); // skips cycles 1..=9 -> 9 idle
        q.schedule(10, "b"); // same cycle -> no idle
        q.schedule(12, "c"); // skips cycle 11 -> 1 idle
        q.schedule(WINDOW * 3, "far"); // overflow pop also fast-forwards
        while q.pop().is_some() {}
        assert_eq!(q.idle_cycles_skipped(), 9 + 1 + (WINDOW * 3 - 12 - 1));
    }

    #[test]
    fn disabled_fast_forward_reports_zero_idle() {
        let mut q = EventQueue::new();
        q.set_fast_forward(false);
        q.schedule(10, "a");
        q.schedule(500, "b");
        while q.pop().is_some() {}
        assert_eq!(q.idle_cycles_skipped(), 0);
    }

    #[test]
    fn audit_passes_under_random_churn() {
        let mut q = EventQueue::new();
        q.audit_invariants();
        let mut rng = SimRng::seed_from_u64(0xA0D1);
        for step in 0..3000u32 {
            if rng.next_f64() < 0.6 {
                let horizon = if rng.next_f64() < 0.1 { WINDOW * 3 } else { WINDOW / 2 };
                let t = q.now() + rng.next_below(horizon);
                q.schedule(t, step);
            } else {
                q.pop();
            }
            if step % 64 == 0 {
                q.audit_invariants();
            }
        }
        while q.pop().is_some() {}
        q.audit_invariants();
    }

    #[test]
    fn for_each_event_visits_exactly_the_pending_events() {
        let mut q = EventQueue::new();
        q.schedule(5, 1u32);
        q.schedule(WINDOW * 2, 2); // overflow
        q.schedule(5, 3);
        q.pop(); // retire event 1; its slot goes to the free list
        let mut seen = Vec::new();
        q.for_each_event(|e| seen.push(*e));
        seen.sort_unstable();
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new();
        // Steady-state churn: never more than 4 events live, so the slab
        // should never grow past the high-water mark.
        for round in 0..1000u64 {
            for k in 0..4 {
                q.schedule_in(1 + k, round * 10 + k);
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        assert!(q.slab.len() <= 8, "slab grew to {} despite recycling", q.slab.len());
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_at_seq_restores_fifo_order() {
        // Out-of-seq inserts into one bucket (what a barrier drain does
        // after direct schedules landed first) must still pop in seq
        // order, and the queue's own allocator must resume past the max.
        let mut q = EventQueue::new();
        q.schedule_at_seq(5, 10, "d");
        q.schedule_at_seq(5, 3, "a");
        q.schedule_at_seq(5, 7, "c");
        q.schedule_at_seq(5, 4, "b");
        q.schedule_at_seq(9, 1, "z");
        q.audit_invariants();
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), Some((5, "d")));
        assert_eq!(q.pop(), Some((9, "z")));
        // The allocator resumed after seq 10: the next plain schedule
        // gets seq 11, and later inserts interleave by seq as expected.
        q.schedule(20, "w"); // seq 11
        q.schedule_at_seq(20, 13, "y");
        q.schedule(20, "x"); // seq 14, after the explicit 13
        assert_eq!(q.pop(), Some((20, "w")));
        assert_eq!(q.pop(), Some((20, "y")));
        assert_eq!(q.pop(), Some((20, "x")));
    }

    #[test]
    fn schedule_at_seq_routes_far_events_to_overflow() {
        let mut q = EventQueue::new();
        q.schedule_at_seq(WINDOW * 5, 2, "far");
        q.schedule_at_seq(1, 9, "near");
        q.audit_invariants();
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.pop(), Some((WINDOW * 5, "far")));
    }

    #[test]
    fn peek_key_matches_pop() {
        let mut rng = SimRng::seed_from_u64(0xBEEF);
        let mut q = EventQueue::new();
        for step in 0..2000u32 {
            if rng.next_f64() < 0.55 {
                let horizon = if rng.next_f64() < 0.1 { WINDOW * 4 } else { WINDOW / 2 };
                q.schedule(q.now() + rng.next_below(horizon), step);
            } else {
                let peeked = q.peek_key();
                let popped = q.pop();
                assert_eq!(peeked.map(|(t, _)| t), popped.map(|(t, _)| t));
                if let (Some((_, s1)), Some((_, s2))) = (peeked, q.peek_key()) {
                    assert!(s1 != s2, "peek did not advance past the popped event");
                }
            }
        }
    }

    #[test]
    fn pop_before_respects_horizon_and_matches_pop() {
        let mut rng = SimRng::seed_from_u64(0xFACE);
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for step in 0..3000u32 {
            if rng.next_f64() < 0.6 {
                let span = if rng.next_f64() < 0.1 { WINDOW * 3 } else { WINDOW / 2 };
                let t = a.now() + rng.next_below(span);
                a.schedule(t, step);
                b.schedule(t, step);
            } else {
                // `pop_before(now + k)` must return exactly what `pop`
                // would, whenever the head falls below the horizon — and
                // must not move the clock when it does not.
                let horizon = a.now() + rng.next_below(WINDOW);
                let head = a.peek_key();
                let got = a.pop_before(horizon);
                match head {
                    Some((t, _)) if t < horizon => {
                        assert_eq!(got, b.pop());
                    }
                    _ => {
                        assert_eq!(got, None);
                        assert_eq!(a.now(), b.now(), "refused pop must not advance the clock");
                    }
                }
                assert_eq!(a.peek_key(), b.peek_key());
            }
        }
        assert_eq!(a.len(), b.len());
    }

    /// Per-actor striped sequence numbers make the global `(time, seq)`
    /// order independent of how actors are packed into queues: replaying
    /// the same striped schedule into one queue or into two and merging by
    /// key yields the identical stream. This is the property the engine's
    /// parallel shard lanes rely on for digest parity across shard counts.
    #[test]
    fn striped_seqs_are_packing_invariant() {
        const ACTORS: u64 = 5;
        let mut rng = SimRng::seed_from_u64(0x571219ED);
        // (time, seq, actor) schedule: each actor owns seqs ≡ actor (mod ACTORS).
        let mut counters = [0u64; ACTORS as usize];
        let mut sched: Vec<(Cycle, u64, u64)> = Vec::new();
        let mut t = 0u64;
        for _ in 0..800 {
            t += rng.next_below(3);
            let actor = rng.next_below(ACTORS);
            let seq = counters[actor as usize] * ACTORS + actor;
            counters[actor as usize] += 1;
            sched.push((t, seq, actor));
        }

        let mut single = EventQueue::new();
        for &(t, s, a) in &sched {
            single.schedule_at_seq(t, s, a);
        }
        let mut expect = Vec::new();
        while let Some((t, a)) = single.pop() {
            expect.push((t, a));
        }

        // Partition actors into two lanes and merge by (time, seq) key.
        for split in 1..ACTORS {
            let mut lanes = [EventQueue::new(), EventQueue::new()];
            for &(t, s, a) in &sched {
                lanes[usize::from(a >= split)].schedule_at_seq(t, s, a);
            }
            let mut merged = Vec::new();
            loop {
                let pick = match (lanes[0].peek_key(), lanes[1].peek_key()) {
                    (Some(k0), Some(k1)) => usize::from(k1 < k0),
                    (Some(_), None) => 0,
                    (None, Some(_)) => 1,
                    (None, None) => break,
                };
                let (t, a) = lanes[pick].pop().expect("peeked head exists");
                merged.push((t, a));
            }
            assert_eq!(merged, expect, "packing split at {split} changed the stream");
        }
    }
}
