//! Deterministic discrete-event calendar.

use crate::config::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same cycle pop in the order they were pushed,
/// which keeps whole-simulation runs bit-reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycle,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Schedules `event` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, event: E) {
        self.schedule(self.now + delta, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }
}
