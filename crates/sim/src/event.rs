//! Deterministic discrete-event calendar.
//!
//! The queue is the single hottest structure in the simulator: every cache
//! fill, TLB probe, walker step, and DRAM burst passes through it. The
//! implementation is a calendar wheel — a power-of-two ring of per-cycle
//! buckets covering the near future, plus a binary-heap overflow for events
//! scheduled beyond the ring. Near events (the overwhelming majority:
//! pipeline, cache, and DRAM latencies are all well under the ring span)
//! cost O(1) push and amortized-O(1) pop instead of the O(log n)
//! sift of a global heap.
//!
//! Ordering semantics are identical to the heap it replaced and are pinned
//! by differential tests below: events pop in ascending cycle order, and
//! events scheduled for the same cycle pop in the order they were pushed
//! (FIFO by a global sequence number), which keeps whole-simulation runs
//! bit-reproducible.

use crate::config::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ring span in cycles. Must be a power of two. Events scheduled less than
/// `WINDOW` cycles ahead of the calendar cursor go into the ring; the rest
/// (UVM far-faults, long DRAM refresh horizons) go to the overflow heap.
const WINDOW: u64 = 1024;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same cycle pop in the order they were pushed,
/// which keeps whole-simulation runs bit-reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future ring: bucket `t & (WINDOW-1)` holds events for cycle
    /// `t` while `t` lies within `[cursor, cursor + WINDOW)`. Because the
    /// cursor only moves forward to popped-event times, every live bucket
    /// holds events of exactly one cycle, already in FIFO (sequence)
    /// order.
    buckets: Vec<VecDeque<(Cycle, u64, E)>>,
    /// Events at least `WINDOW` cycles ahead of the cursor at the time
    /// they were scheduled. Popped by `(time, seq)` comparison against the
    /// ring head, so an early-scheduled far event still wins FIFO ties.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Number of events currently in `buckets`.
    ring_len: usize,
    /// Scan position: no pending event anywhere is earlier than `cursor`.
    cursor: Cycle,
    seq: u64,
    now: Cycle,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            overflow: BinaryHeap::new(),
            ring_len: 0,
            cursor: 0,
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        if time - self.cursor < WINDOW {
            self.buckets[(time & (WINDOW - 1)) as usize].push_back((time, seq, event));
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(Entry { time, seq, event }));
        }
    }

    /// Schedules `event` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, event: E) {
        self.schedule(self.now + delta, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Earliest ring event: scan forward from the cursor. All ring
        // events lie in [cursor, cursor + WINDOW), so if the ring is
        // non-empty the scan terminates; the cursor-only-advances
        // invariant makes the total scan work O(elapsed cycles).
        let ring_head = if self.ring_len > 0 {
            let mut t = self.cursor;
            loop {
                let b = &self.buckets[(t & (WINDOW - 1)) as usize];
                if let Some(&(bt, bs, _)) = b.front() {
                    debug_assert_eq!(bt, t, "bucket holds a foreign cycle");
                    break Some((bt, bs));
                }
                t += 1;
                debug_assert!(t - self.cursor <= WINDOW, "ring_len desynchronized");
            }
        } else {
            None
        };
        let overflow_head = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));

        let take_ring = match (ring_head, overflow_head) {
            (Some(r), Some(o)) => r < o,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (time, event) = if take_ring {
            let (t, _) = ring_head.expect("checked");
            let (time, _, event) = self.buckets[(t & (WINDOW - 1)) as usize]
                .pop_front()
                .expect("ring head vanished");
            self.ring_len -= 1;
            (time, event)
        } else {
            let Reverse(e) = self.overflow.pop().expect("overflow head vanished");
            (e.time, e.event)
        };
        self.now = time;
        self.cursor = time;
        Some((time, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// The pre-calendar implementation — a single binary heap ordered by
    /// `(time, seq)` — kept as the ordering oracle for differential tests.
    struct ClassicHeap<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
        now: Cycle,
    }

    impl<E> ClassicHeap<E> {
        fn new() -> Self {
            Self { heap: BinaryHeap::new(), seq: 0, now: 0 }
        }
        fn schedule(&mut self, time: Cycle, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { time, seq, event }));
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse(e) = self.heap.pop()?;
            self.now = e.time;
            Some((e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        q.schedule(WINDOW * 10, "far");
        q.schedule(3, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((WINDOW * 10, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_wins_fifo_tie_against_ring() {
        // An event scheduled early (low seq) for a then-distant cycle must
        // still pop before a later-scheduled (high seq) event for the same
        // cycle, even though the former sits in the overflow heap and the
        // latter entered the ring once the cursor caught up.
        let mut q = EventQueue::new();
        let t = WINDOW + 100;
        q.schedule(t, "early-far"); // seq 0, overflow
        q.schedule(200, "mid"); // seq 1, ring
        assert_eq!(q.pop(), Some((200, "mid")));
        // Cursor is now 200; t - cursor < WINDOW, so this lands in the ring.
        q.schedule(t, "late-near"); // seq 2, ring
        assert_eq!(q.pop(), Some((t, "early-far")));
        assert_eq!(q.pop(), Some((t, "late-near")));
    }

    #[test]
    fn bucket_aliasing_across_windows_is_impossible_but_checked() {
        // Events exactly WINDOW apart share a bucket index; the second must
        // go to overflow until the cursor advances.
        let mut q = EventQueue::new();
        q.schedule(1, "a");
        q.schedule(1 + WINDOW, "b");
        q.schedule(1 + 2 * WINDOW, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((1 + WINDOW, "b")));
        assert_eq!(q.pop(), Some((1 + 2 * WINDOW, "c")));
    }

    /// Differential test: random schedule/pop interleavings produce the
    /// exact same (time, event) stream as the classic binary heap. This is
    /// the property the whole simulator's bit-reproducibility rests on.
    #[test]
    fn differential_matches_classic_heap() {
        for trial in 0..50u64 {
            let mut rng = SimRng::seed_from_u64(0xD1FF ^ trial);
            let mut calendar = EventQueue::new();
            let mut classic = ClassicHeap::new();
            let mut next_tag = 0u32;
            for _ in 0..2000 {
                // Biased interleaving: mostly schedules early, mostly pops
                // late, with occasional same-cycle bursts to stress FIFO.
                if rng.next_f64() < 0.55 {
                    let horizon = if rng.next_f64() < 0.1 {
                        // Stress the overflow heap and ring hand-off.
                        WINDOW * 4
                    } else {
                        WINDOW / 2
                    };
                    let t = calendar.now() + rng.next_below(horizon);
                    let burst = 1 + rng.index(4);
                    for _ in 0..burst {
                        calendar.schedule(t, next_tag);
                        classic.schedule(t, next_tag);
                        next_tag += 1;
                    }
                } else {
                    assert_eq!(calendar.pop(), classic.pop(), "trial {trial} diverged");
                    assert_eq!(calendar.now(), classic.now);
                }
            }
            // Drain both completely.
            loop {
                let (a, b) = (calendar.pop(), classic.pop());
                assert_eq!(a, b, "trial {trial} diverged during drain");
                if a.is_none() {
                    break;
                }
            }
            assert!(calendar.is_empty());
            assert_eq!(calendar.len(), 0);
        }
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(5, 0);
        q.schedule(WINDOW * 2, 1);
        q.schedule(5, 2);
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
