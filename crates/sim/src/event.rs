//! Deterministic discrete-event calendar.
//!
//! The queue is the single hottest structure in the simulator: every cache
//! fill, TLB probe, walker step, and DRAM burst passes through it. The
//! implementation is a calendar wheel — a power-of-two ring of per-cycle
//! buckets covering the near future, plus a binary-heap overflow for events
//! scheduled beyond the ring. Near events (the overwhelming majority:
//! pipeline, cache, and DRAM latencies are all well under the ring span)
//! cost O(1) push and amortized-O(1) pop instead of the O(log n)
//! sift of a global heap.
//!
//! Event payloads live in a **slab**: a single grow-only arena of slots
//! threaded into per-bucket singly-linked lists through `u32` indices, with
//! a free list recycling retired slots. Scheduling an event in steady state
//! allocates nothing and moves no enum values through the calendar — a
//! bucket is just a `(head, tail)` index pair. An occupancy bitmap (one bit
//! per bucket) lets `pop` jump straight to the next occupied cycle instead
//! of draining empty buckets one at a time; the cycles skipped that way are
//! reported as `idle_cycles_skipped` (the engine surfaces them in
//! [`crate::stats::Stats`]). The jump can be disabled
//! ([`EventQueue::set_fast_forward`]) to force the legacy linear scan —
//! both paths visit the identical event sequence, which a workspace test
//! pins byte-for-byte.
//!
//! Ordering semantics are identical to the heap it replaced and are pinned
//! by differential tests below: events pop in ascending cycle order, and
//! events scheduled for the same cycle pop in the order they were pushed
//! (FIFO by a global sequence number), which keeps whole-simulation runs
//! bit-reproducible.

use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring span in cycles. Must be a power of two. Events scheduled less than
/// `WINDOW` cycles ahead of the calendar cursor go into the ring; the rest
/// (UVM far-faults, long DRAM refresh horizons) go to the overflow heap.
const WINDOW: u64 = 1024;
/// Words in the bucket-occupancy bitmap.
const OCC_WORDS: usize = (WINDOW / 64) as usize;
/// Null slab index (list terminator / empty bucket).
const NIL: u32 = u32::MAX;

/// One slab slot: an event plus its calendar linkage.
#[derive(Debug)]
struct Slot<E> {
    time: Cycle,
    seq: u64,
    /// Next slot in the same bucket's FIFO list.
    next: u32,
    /// `None` only while the slot sits on the free list.
    event: Option<E>,
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same cycle pop in the order they were pushed,
/// which keeps whole-simulation runs bit-reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Pool-recycled event storage; buckets and the overflow heap hold
    /// `u32` indices into this arena.
    slab: Vec<Slot<E>>,
    /// Retired slot indices, reused LIFO.
    free: Vec<u32>,
    /// Near-future ring: bucket `t & (WINDOW-1)` is the FIFO list head for
    /// cycle `t` while `t` lies within `[cursor, cursor + WINDOW)`. Because
    /// the cursor only moves forward to popped-event times, every live
    /// bucket holds events of exactly one cycle, already in sequence order.
    heads: Vec<u32>,
    /// Tail of each bucket's list (for O(1) FIFO append).
    tails: Vec<u32>,
    /// One bit per bucket: set iff the bucket list is non-empty. `pop`
    /// scans this to jump over empty cycles in O(words) instead of
    /// O(elapsed cycles).
    occupied: [u64; OCC_WORDS],
    /// Events at least `WINDOW` cycles ahead of the cursor at the time
    /// they were scheduled. Popped by `(time, seq)` comparison against the
    /// ring head, so an early-scheduled far event still wins FIFO ties.
    overflow: BinaryHeap<Reverse<FarEntry>>,
    /// Number of events currently in the ring.
    ring_len: usize,
    /// Scan position: no pending event anywhere is earlier than `cursor`.
    cursor: Cycle,
    seq: u64,
    now: Cycle,
    /// Whether `pop` may jump over empty buckets via the occupancy bitmap.
    fast_forward: bool,
    /// Cycles jumped over while fast-forwarding (0 when disabled).
    idle_skipped: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct FarEntry {
    time: Cycle,
    seq: u64,
    slot: u32,
}

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0 with fast-forward enabled.
    pub fn new() -> Self {
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; WINDOW as usize],
            tails: vec![NIL; WINDOW as usize],
            occupied: [0; OCC_WORDS],
            overflow: BinaryHeap::new(),
            ring_len: 0,
            cursor: 0,
            seq: 0,
            now: 0,
            fast_forward: true,
            idle_skipped: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Enables or disables the empty-bucket jump. Popping order is
    /// identical either way; only the scan cost and the
    /// [`idle_cycles_skipped`](Self::idle_cycles_skipped) accounting
    /// change.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Cycles jumped over by fast-forward so far (0 while disabled).
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.idle_skipped
    }

    /// Takes a slot from the free list or grows the slab.
    #[inline]
    fn alloc_slot(&mut self, time: Cycle, seq: u64, event: E) -> u32 {
        if let Some(i) = self.free.pop() {
            let s = &mut self.slab[i as usize];
            s.time = time;
            s.seq = seq;
            s.next = NIL;
            s.event = Some(event);
            i
        } else {
            let i = self.slab.len() as u32;
            self.slab.push(Slot { time, seq, next: NIL, event: Some(event) });
            i
        }
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot(time, seq, event);
        if time - self.cursor < WINDOW {
            let b = (time & (WINDOW - 1)) as usize;
            if self.heads[b] == NIL {
                self.heads[b] = slot;
                self.occupied[b / 64] |= 1 << (b % 64);
            } else {
                self.slab[self.tails[b] as usize].next = slot;
            }
            self.tails[b] = slot;
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(FarEntry { time, seq, slot }));
        }
    }

    /// Schedules `event` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, event: E) {
        self.schedule(self.now + delta, event);
    }

    /// Schedules `event` at `time` under a caller-assigned sequence
    /// number instead of the queue's own allocator. The sharded calendar
    /// owns a single global sequence counter and distributes events
    /// across per-domain queues; a barrier drain can therefore deliver an
    /// exchange-ring entry (older seq) into a bucket that already holds a
    /// directly-scheduled newer one, so this insert keeps each bucket's
    /// list sorted by seq rather than blindly appending.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule_at_seq(&mut self, time: Cycle, seq: u64, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        self.seq = self.seq.max(seq + 1);
        let slot = self.alloc_slot(time, seq, event);
        if time - self.cursor < WINDOW {
            let b = (time & (WINDOW - 1)) as usize;
            if self.heads[b] == NIL {
                self.heads[b] = slot;
                self.tails[b] = slot;
                self.occupied[b / 64] |= 1 << (b % 64);
            } else if self.slab[self.tails[b] as usize].seq < seq {
                // Fast path: appending keeps the list sorted.
                self.slab[self.tails[b] as usize].next = slot;
                self.tails[b] = slot;
            } else if seq < self.slab[self.heads[b] as usize].seq {
                self.slab[slot as usize].next = self.heads[b];
                self.heads[b] = slot;
            } else {
                let mut prev = self.heads[b];
                loop {
                    let next = self.slab[prev as usize].next;
                    if next == NIL || self.slab[next as usize].seq > seq {
                        break;
                    }
                    prev = next;
                }
                let next = self.slab[prev as usize].next;
                self.slab[slot as usize].next = next;
                self.slab[prev as usize].next = slot;
                if next == NIL {
                    self.tails[b] = slot;
                }
            }
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(FarEntry { time, seq, slot }));
        }
    }

    /// `(time, seq)` of the event `pop` would return next, without
    /// popping. Read-only; the sharded calendar's merge step compares
    /// domain heads this way.
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        let ring = if self.ring_len > 0 {
            let t = self.next_occupied();
            let head = self.heads[(t & (WINDOW - 1)) as usize];
            let s = &self.slab[head as usize];
            Some((s.time, s.seq))
        } else {
            None
        };
        let over = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));
        match (ring, over) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        }
    }

    /// Cycle of the earliest non-empty ring bucket at or after `cursor`,
    /// via the occupancy bitmap: scans at most `OCC_WORDS` words.
    #[inline]
    fn next_occupied(&self) -> Cycle {
        let start = (self.cursor & (WINDOW - 1)) as usize;
        let mut word = start / 64;
        let mut bits = self.occupied[word] & (!0u64 << (start % 64));
        for scanned in 0..=OCC_WORDS {
            if bits != 0 {
                let bucket = (word * 64) as u64 + bits.trailing_zeros() as u64;
                let dist = bucket.wrapping_sub(self.cursor) & (WINDOW - 1);
                return self.cursor + dist;
            }
            debug_assert!(scanned < OCC_WORDS, "ring_len desynchronized from bitmap");
            word = (word + 1) % OCC_WORDS;
            bits = self.occupied[word];
        }
        // The loop scans every OCC_WORDS word; ring_len > 0 guarantees a
        // set bit, and the debug_assert above fires first if the bitmap
        // ever desynchronizes. lint:allow(hot-path-panic)
        unreachable!("ring_len > 0 guarantees an occupied bucket");
    }

    /// Cycle of the earliest non-empty ring bucket, by the legacy
    /// one-bucket-per-cycle scan (fast-forward disabled).
    #[inline]
    fn next_occupied_scan(&self) -> Cycle {
        let mut t = self.cursor;
        loop {
            if self.heads[(t & (WINDOW - 1)) as usize] != NIL {
                return t;
            }
            t += 1;
            debug_assert!(t - self.cursor <= WINDOW, "ring_len desynchronized");
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let ring_head = if self.ring_len > 0 {
            let t = if self.fast_forward { self.next_occupied() } else { self.next_occupied_scan() };
            let head = self.heads[(t & (WINDOW - 1)) as usize];
            debug_assert_ne!(head, NIL);
            let s = &self.slab[head as usize];
            debug_assert_eq!(s.time, t, "bucket holds a foreign cycle");
            Some((s.time, s.seq))
        } else {
            None
        };
        let overflow_head = self.overflow.peek().map(|Reverse(e)| (e.time, e.seq));

        let take_ring = match (ring_head, overflow_head) {
            (Some(r), Some(o)) => r < o,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (time, slot) = if take_ring {
            let (t, _) = ring_head.expect("take_ring implies the ring head exists");
            let b = (t & (WINDOW - 1)) as usize;
            let slot = self.heads[b];
            self.heads[b] = self.slab[slot as usize].next;
            if self.heads[b] == NIL {
                self.tails[b] = NIL;
                self.occupied[b / 64] &= !(1 << (b % 64));
            }
            self.ring_len -= 1;
            (t, slot)
        } else {
            let Reverse(e) = self.overflow.pop().expect("overflow head vanished");
            (e.time, e.slot)
        };
        let event = self.slab[slot as usize].event.take().expect("slot holds an event");
        self.free.push(slot);
        if self.fast_forward {
            // Cycles strictly between the previous and the new clock carry
            // no events at all — they were never visited.
            self.idle_skipped += (time - self.now).saturating_sub(1);
        }
        self.now = time;
        self.cursor = time;
        Some((time, event))
    }

    /// Visits every pending event (ring and overflow) in unspecified
    /// order. Read-only; checked-mode reference audits recompute
    /// per-request refcounts this way.
    pub fn for_each_event(&self, mut f: impl FnMut(&E)) {
        for s in &self.slab {
            if let Some(e) = &s.event {
                f(e);
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Asserts the calendar's full internal consistency: slab accounting
    /// (every slot is on the free list, in a ring bucket, or in the
    /// overflow heap — exactly once), bucket-list acyclicity and FIFO
    /// sequence order, head/tail/occupancy-bitmap agreement, and that
    /// every pending event lies at or after the cursor.
    ///
    /// O(slab + WINDOW) and read-only; the engine calls it periodically in
    /// checked (`invariants` feature) builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        assert_eq!(
            self.slab.len(),
            self.free.len() + self.ring_len + self.overflow.len(),
            "slab slots leaked: {} slots, {} free + {} ring + {} overflow",
            self.slab.len(),
            self.free.len(),
            self.ring_len,
            self.overflow.len()
        );
        // Every slot must be claimed by exactly one owner.
        let mut seen = vec![false; self.slab.len()];
        let mut claim = |slot: u32, role: &str| {
            let i = slot as usize;
            assert!(i < self.slab.len(), "{role} holds out-of-range slot {slot}");
            assert!(!seen[i], "slot {slot} claimed twice (second owner: {role})");
            seen[i] = true;
        };
        for &f in &self.free {
            claim(f, "free list");
            assert!(
                self.slab[f as usize].event.is_none(),
                "free slot {f} still holds an event"
            );
        }
        let mut ring_count = 0usize;
        for b in 0..WINDOW as usize {
            let head = self.heads[b];
            let bit_set = self.occupied[b / 64] >> (b % 64) & 1 == 1;
            assert_eq!(bit_set, head != NIL, "occupancy bit disagrees with bucket {b}");
            assert_eq!(head == NIL, self.tails[b] == NIL, "head/tail disagree in bucket {b}");
            let mut cur = head;
            let mut prev_seq = None;
            let mut last = NIL;
            let mut steps = 0usize;
            while cur != NIL {
                steps += 1;
                assert!(steps <= self.slab.len(), "cycle in bucket {b} list");
                claim(cur, "ring bucket");
                let s = &self.slab[cur as usize];
                assert!(s.event.is_some(), "ring slot {cur} holds no event");
                assert_eq!(
                    (s.time & (WINDOW - 1)) as usize,
                    b,
                    "slot in bucket {b} carries a time that maps elsewhere"
                );
                assert!(
                    s.time >= self.cursor && s.time - self.cursor < WINDOW,
                    "ring event at cycle {} outside window [{}, {})",
                    s.time,
                    self.cursor,
                    self.cursor + WINDOW
                );
                assert!(s.seq < self.seq, "slot seq {} from the future", s.seq);
                if let Some(p) = prev_seq {
                    assert!(s.seq > p, "bucket {b} FIFO order broken: {} after {p}", s.seq);
                }
                prev_seq = Some(s.seq);
                last = cur;
                cur = s.next;
            }
            if head != NIL {
                assert_eq!(self.tails[b], last, "tail of bucket {b} is not its last node");
            }
            ring_count += steps;
        }
        assert_eq!(ring_count, self.ring_len, "ring_len desynchronized from bucket lists");
        for Reverse(e) in self.overflow.iter() {
            claim(e.slot, "overflow heap");
            let s = &self.slab[e.slot as usize];
            assert!(s.event.is_some(), "overflow slot {} holds no event", e.slot);
            assert_eq!(
                (s.time, s.seq),
                (e.time, e.seq),
                "overflow entry disagrees with its slab slot"
            );
            assert!(e.time >= self.cursor, "overflow event at {} behind cursor {}", e.time, self.cursor);
            assert!(e.seq < self.seq, "overflow seq {} from the future", e.seq);
        }
    }

    /// Serializes the calendar (checkpointing): clock state plus every
    /// pending event as `(time, seq, payload)` triples in `(time, seq)`
    /// order. Slab slot indices and the ring/overflow partition are
    /// *not* serialized — they are internal bookkeeping with no effect
    /// on pop order, and restore re-inserts canonically.
    // lint:exempt(checkpoint-field-parity: free, heads, tails, occupied, overflow, and ring_len are slab/ring bookkeeping with no effect on pop order; load_state clears them and re-inserts every event canonically)
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &E)) {
        w.u64(self.cursor);
        w.u64(self.seq);
        w.u64(self.now);
        w.bool(self.fast_forward);
        w.u64(self.idle_skipped);
        let mut pending: Vec<(Cycle, u64, u32)> = self
            .slab
            .iter()
            .enumerate()
            .filter(|(_, s)| s.event.is_some())
            .map(|(i, s)| (s.time, s.seq, i as u32))
            .collect();
        pending.sort_unstable_by_key(|&(t, s, _)| (t, s));
        w.usize(pending.len());
        for (t, seq, slot) in pending {
            w.u64(t);
            w.u64(seq);
            let e = self.slab[slot as usize]
                .event
                .as_ref()
                .expect("pending list only holds occupied slots");
            enc(w, e);
        }
    }

    /// Restores a calendar written by [`save_state`](Self::save_state),
    /// replacing this queue's entire contents.
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader,
        dec: &mut dyn FnMut(&mut Reader) -> Result<E, CkptError>,
    ) -> Result<(), CkptError> {
        self.slab.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occupied = [0; OCC_WORDS];
        self.overflow.clear();
        self.ring_len = 0;
        self.cursor = r.u64()?;
        let saved_seq = r.u64()?;
        self.now = r.u64()?;
        self.fast_forward = r.bool()?;
        self.idle_skipped = r.u64()?;
        if self.cursor > self.now {
            return Err(CkptError::Corrupt("calendar cursor ahead of its clock"));
        }
        self.seq = 0;
        let n = r.seq_len()?;
        let mut prev = None;
        for _ in 0..n {
            let t = r.u64()?;
            let seq = r.u64()?;
            if t < self.now || seq >= saved_seq {
                return Err(CkptError::Corrupt("calendar event behind clock or from the future"));
            }
            if let Some(p) = prev {
                if (t, seq) <= p {
                    return Err(CkptError::Corrupt("calendar events not in (time, seq) order"));
                }
            }
            prev = Some((t, seq));
            let e = dec(r)?;
            self.schedule_at_seq(t, seq, e);
        }
        self.seq = saved_seq;
        Ok(())
    }

    /// Deliberately pushes an in-use slot onto the free list, breaking the
    /// slab accounting. Exists only so the checked-mode test suite can
    /// prove [`audit_invariants`](Self::audit_invariants) actually catches
    /// corruption.
    #[cfg(feature = "invariants")]
    pub fn corrupt_free_list_for_test(&mut self) {
        // Prefer double-freeing a live slot; an empty calendar gets an
        // out-of-range index instead. Either way the slab accounting no
        // longer balances.
        let victim = self
            .slab
            .iter()
            .position(|s| s.event.is_some())
            .map(|i| i as u32)
            .unwrap_or(self.slab.len() as u32 + 7);
        self.free.push(victim);
    }
}

/// Capacity of one cross-domain exchange ring before a mid-window flush
/// is forced. Flushing early is always safe — the target calendar orders
/// by `(time, seq)` regardless — so the cap only bounds memory, never
/// correctness.
const EXCHANGE_RING_CAP: usize = 1024;

/// Target domain of an event routed through a [`ShardedCalendar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// SM-group-local state: the shard owning this SM's warps, L1 TLB,
    /// and L1 sector cache.
    Shard(u32),
    /// State every shard contends on: L2 TLB/cache, DRAM, the walker
    /// pool, and UVM.
    Shared,
}

/// Routing contract for events run through a [`ShardedCalendar`]: maps an
/// event to the domain whose state its handler touches first. `shards`
/// and `num_sms` describe the active partitioning (SM `s` belongs to
/// shard `s * shards / num_sms`).
pub trait ShardRoutable {
    /// The domain that owns this event.
    fn domain(&self, shards: u32, num_sms: u32) -> Domain;
}

/// The engine-facing calendar.
///
/// With `shards == 1` this is a thin wrapper over the classic single
/// [`EventQueue`] — byte-for-byte the pre-sharding hot path. With more
/// shards it becomes a bounded-lag collection of per-domain calendars
/// (one per SM shard plus one shared L2/DRAM/walker/UVM domain): each
/// domain buffers its own future, a single global sequence counter
/// preserves the serial FIFO tie-break, and the merge step always
/// surfaces the globally earliest `(time, seq)` event below the current
/// horizon `H = window_start + lookahead`. Cross-domain events scheduled
/// at or beyond `H` land on fixed-capacity exchange rings and are
/// drained at the horizon barrier in target-domain-index order.
///
/// Because every event still retires in global `(time, seq)` order, the
/// popped stream — and therefore `Stats::digest()` — is identical for
/// every shard count by construction; the sharding changes *where*
/// pending events wait, not *when* they run. Determinism across
/// `--shards 1/2/4/8` is CI-enforced.
#[derive(Debug)]
pub enum ShardedCalendar<E> {
    /// Classic single-calendar path (`shards == 1`).
    Single(EventQueue<E>),
    /// Bounded-lag per-domain calendars (`shards > 1`).
    Sharded(ShardedInner<E>),
}

/// State of the multi-shard calendar. See [`ShardedCalendar`].
#[derive(Debug)]
pub struct ShardedInner<E> {
    /// Per-domain calendars: indices `0..shards` are the SM-shard
    /// domains, index `shards` is the shared domain.
    domains: Vec<EventQueue<E>>,
    /// Exchange rings, one per **target** domain, holding `(time, seq,
    /// event)` for cross-domain events at or beyond the horizon. The
    /// outer vec is fixed at construction (one ring per domain) and each
    /// ring is capacity-bounded and fully drained at every barrier, so
    /// this is not a growing per-element-box hot structure.
    /// lint:allow(vec-vec)
    rings: Vec<Vec<(Cycle, u64, E)>>,
    shards: usize,
    num_sms: usize,
    /// Bounded-lag window span (minimum cross-domain latency).
    lookahead: Cycle,
    /// Global FIFO sequence allocator (the single queue's `seq`
    /// analogue; domain queues inherit assigned seqs verbatim).
    seq: u64,
    /// Global simulation time (timestamp of the last popped event).
    now: Cycle,
    /// First cycle of the current bounded-lag window.
    window_start: Cycle,
    /// Exclusive upper bound of the current window
    /// (`window_start + lookahead`); 0 until the first barrier.
    horizon: Cycle,
    /// Domain of the event currently being handled: set by `pop`,
    /// cleared at barriers. Schedules from a handler into a *different*
    /// domain are the cross-domain edges that route through the rings.
    active: Option<usize>,
    /// Timestamp of the last event popped from each domain. Monotone,
    /// never at or beyond the horizon (checked-mode invariant).
    clocks: Vec<Cycle>,
    /// Whether skipped idle cycles are accounted (parity with
    /// [`EventQueue::set_fast_forward`]; domain queues always scan via
    /// their occupancy bitmaps regardless).
    fast_forward: bool,
    idle_skipped: u64,
    /// Bounded-lag windows opened.
    horizon_barriers: u64,
    /// Domains that still held pending events when a window closed —
    /// i.e. shards stopped by the horizon rather than by running dry.
    horizon_stalls: u64,
    /// Events routed through an exchange ring.
    exchange_enqueued: u64,
    /// Ring entries drained into their target domain's calendar.
    exchange_dequeued: u64,
    /// Cross-domain events below the horizon, inserted directly (the
    /// sub-lookahead edges: e.g. a same-cycle L1 fill bounced off L2).
    exchange_bypass: u64,
    /// Mid-window flushes forced by a ring reaching capacity.
    exchange_overflow_flushes: u64,
    /// Events popped per domain (shards first, shared domain last).
    domain_events: Vec<u64>,
}

impl<E> ShardedCalendar<E> {
    /// Creates a calendar partitioned into `shards` SM groups (clamped
    /// to `[1, num_sms]`; 1 selects the classic single-queue path) plus
    /// one shared domain, with the given bounded-lag `lookahead`.
    pub fn new(shards: usize, num_sms: usize, lookahead: Cycle) -> Self {
        let shards = shards.clamp(1, num_sms.max(1));
        if shards == 1 {
            return Self::Single(EventQueue::new());
        }
        Self::Sharded(ShardedInner {
            domains: (0..=shards).map(|_| EventQueue::new()).collect(),
            rings: (0..=shards).map(|_| Vec::new()).collect(),
            shards,
            num_sms,
            lookahead: lookahead.max(1),
            seq: 0,
            now: 0,
            window_start: 0,
            horizon: 0,
            active: None,
            clocks: vec![0; shards + 1],
            fast_forward: true,
            idle_skipped: 0,
            horizon_barriers: 0,
            horizon_stalls: 0,
            exchange_enqueued: 0,
            exchange_dequeued: 0,
            exchange_bypass: 0,
            exchange_overflow_flushes: 0,
            domain_events: vec![0; shards + 1],
        })
    }

    /// Number of SM-shard domains (1 on the single-queue path).
    pub fn shards(&self) -> usize {
        match self {
            Self::Single(_) => 1,
            Self::Sharded(s) => s.shards,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycle {
        match self {
            Self::Single(q) => q.now(),
            Self::Sharded(s) => s.now,
        }
    }

    /// See [`EventQueue::set_fast_forward`].
    pub fn set_fast_forward(&mut self, on: bool) {
        match self {
            Self::Single(q) => q.set_fast_forward(on),
            Self::Sharded(s) => s.fast_forward = on,
        }
    }

    /// Cycles jumped over by fast-forward so far (0 while disabled).
    pub fn idle_cycles_skipped(&self) -> u64 {
        match self {
            Self::Single(q) => q.idle_cycles_skipped(),
            Self::Sharded(s) => s.idle_skipped,
        }
    }

    /// Pops the globally next `(time, seq)` event, advancing the clock.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        match self {
            Self::Single(q) => q.pop(),
            Self::Sharded(s) => s.pop(),
        }
    }

    /// Visits every pending event — domain calendars and in-flight
    /// exchange-ring entries — in unspecified order.
    pub fn for_each_event(&self, mut f: impl FnMut(&E)) {
        match self {
            Self::Single(q) => q.for_each_event(f),
            Self::Sharded(s) => {
                for q in &s.domains {
                    q.for_each_event(&mut f);
                }
                for ring in &s.rings {
                    for (_, _, e) in ring {
                        f(e);
                    }
                }
            }
        }
    }

    /// Number of pending events (including in-flight ring entries).
    pub fn len(&self) -> usize {
        match self {
            Self::Single(q) => q.len(),
            Self::Sharded(s) => {
                s.domains.iter().map(EventQueue::len).sum::<usize>()
                    + s.rings.iter().map(Vec::len).sum::<usize>()
            }
        }
    }

    /// Whether the calendar is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounded-lag windows opened so far (0 on the single-queue path).
    pub fn horizon_barriers(&self) -> u64 {
        match self {
            Self::Single(_) => 0,
            Self::Sharded(s) => s.horizon_barriers,
        }
    }

    /// Domain-stopped-by-horizon occurrences (0 on the single path).
    pub fn horizon_stalls(&self) -> u64 {
        match self {
            Self::Single(_) => 0,
            Self::Sharded(s) => s.horizon_stalls,
        }
    }

    /// Events routed through an exchange ring.
    pub fn exchange_enqueued(&self) -> u64 {
        match self {
            Self::Single(_) => 0,
            Self::Sharded(s) => s.exchange_enqueued,
        }
    }

    /// Ring entries drained into their target domain.
    pub fn exchange_dequeued(&self) -> u64 {
        match self {
            Self::Single(_) => 0,
            Self::Sharded(s) => s.exchange_dequeued,
        }
    }

    /// Sub-horizon cross-domain events inserted directly.
    pub fn exchange_bypass(&self) -> u64 {
        match self {
            Self::Single(_) => 0,
            Self::Sharded(s) => s.exchange_bypass,
        }
    }

    /// Events popped per domain (shard domains first, shared domain
    /// last); empty on the single-queue path.
    pub fn domain_event_counts(&self) -> &[u64] {
        match self {
            Self::Single(_) => &[],
            Self::Sharded(s) => &s.domain_events,
        }
    }

    /// Full consistency audit: every domain calendar's own invariants,
    /// exchange-queue conservation (`enqueued == dequeued + in-flight`),
    /// ring entries at or beyond the horizon in sorted seq order, and
    /// monotone per-domain clocks bounded by `now` and the horizon.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        match self {
            Self::Single(q) => q.audit_invariants(),
            Self::Sharded(s) => s.audit_invariants(),
        }
    }

    /// Serializes the calendar — variant tag, bounded-lag window state,
    /// per-domain calendars, and in-flight exchange-ring entries — for
    /// checkpointing.
    pub(crate) fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&mut Writer, &E)) {
        match self {
            Self::Single(q) => {
                w.u8(0);
                q.save_state(w, enc);
            }
            Self::Sharded(s) => {
                w.u8(1);
                w.usize(s.shards);
                w.usize(s.num_sms);
                w.u64(s.lookahead);
                w.u64(s.seq);
                w.u64(s.now);
                w.u64(s.window_start);
                w.u64(s.horizon);
                w.opt_u64(s.active.map(|a| a as u64));
                w.u64_slice(&s.clocks);
                w.bool(s.fast_forward);
                w.u64(s.idle_skipped);
                w.u64(s.horizon_barriers);
                w.u64(s.horizon_stalls);
                w.u64(s.exchange_enqueued);
                w.u64(s.exchange_dequeued);
                w.u64(s.exchange_bypass);
                w.u64(s.exchange_overflow_flushes);
                w.u64_slice(&s.domain_events);
                w.usize(s.domains.len());
                for q in &s.domains {
                    q.save_state(w, enc);
                }
                w.usize(s.rings.len());
                for ring in &s.rings {
                    w.usize(ring.len());
                    for (t, sq, e) in ring {
                        w.u64(*t);
                        w.u64(*sq);
                        enc(w, e);
                    }
                }
            }
        }
    }

    /// Restores a calendar written by [`save_state`](Self::save_state).
    /// The receiver must have been constructed with the identical shard
    /// partitioning (the engine rebuilds it from the same config);
    /// variant or geometry mismatches are hard errors.
    pub(crate) fn load_state(
        &mut self,
        r: &mut Reader,
        dec: &mut dyn FnMut(&mut Reader) -> Result<E, CkptError>,
    ) -> Result<(), CkptError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Self::Single(q)) => q.load_state(r, dec),
            (1, Self::Sharded(s)) => {
                if r.usize()? != s.shards || r.usize()? != s.num_sms || r.u64()? != s.lookahead
                {
                    return Err(CkptError::Corrupt("sharded-calendar geometry mismatch"));
                }
                s.seq = r.u64()?;
                s.now = r.u64()?;
                s.window_start = r.u64()?;
                s.horizon = r.u64()?;
                s.active = match r.opt_u64()? {
                    Some(a) if (a as usize) < s.domains.len() => Some(a as usize),
                    Some(_) => return Err(CkptError::Corrupt("active domain out of range")),
                    None => None,
                };
                r.u64_slice_into(&mut s.clocks)?;
                s.fast_forward = r.bool()?;
                s.idle_skipped = r.u64()?;
                s.horizon_barriers = r.u64()?;
                s.horizon_stalls = r.u64()?;
                s.exchange_enqueued = r.u64()?;
                s.exchange_dequeued = r.u64()?;
                s.exchange_bypass = r.u64()?;
                s.exchange_overflow_flushes = r.u64()?;
                r.u64_slice_into(&mut s.domain_events)?;
                if r.usize()? != s.domains.len() {
                    return Err(CkptError::Corrupt("domain-calendar count mismatch"));
                }
                for q in &mut s.domains {
                    q.load_state(r, dec)?;
                }
                if r.usize()? != s.rings.len() {
                    return Err(CkptError::Corrupt("exchange-ring count mismatch"));
                }
                for ring in &mut s.rings {
                    ring.clear();
                    let n = r.seq_len()?;
                    for _ in 0..n {
                        let t = r.u64()?;
                        let sq = r.u64()?;
                        let e = dec(r)?;
                        ring.push((t, sq, e));
                    }
                }
                Ok(())
            }
            _ => Err(CkptError::Corrupt("calendar variant mismatch (shards knob changed)")),
        }
    }

    /// See [`EventQueue::corrupt_free_list_for_test`].
    #[cfg(feature = "invariants")]
    pub fn corrupt_free_list_for_test(&mut self) {
        match self {
            Self::Single(q) => q.corrupt_free_list_for_test(),
            Self::Sharded(s) => s.domains[0].corrupt_free_list_for_test(),
        }
    }

    /// Deliberately unbalances the exchange-queue conservation counters
    /// (no-op re-routed to slab corruption on the single-queue path), so
    /// the checked-mode suite can prove the sharded audit catches it.
    #[cfg(feature = "invariants")]
    pub fn corrupt_exchange_for_test(&mut self) {
        match self {
            Self::Single(q) => q.corrupt_free_list_for_test(),
            Self::Sharded(s) => s.exchange_enqueued += 1,
        }
    }
}

impl<E: ShardRoutable> ShardedCalendar<E> {
    /// Schedules `event` at absolute cycle `time`, routing it to its
    /// owning domain (see [`ShardRoutable`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        match self {
            Self::Single(q) => q.schedule(time, event),
            Self::Sharded(s) => s.schedule(time, event),
        }
    }

    /// Schedules `event` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, event: E) {
        self.schedule(self.now() + delta, event);
    }
}

impl<E> ShardedInner<E> {
    fn pop(&mut self) -> Option<(Cycle, E)> {
        loop {
            // Merge step: globally earliest (time, seq) among domain
            // heads. Ring entries never undercut this — they all lie at
            // or beyond the horizon (audited), and pops stop below it.
            let mut best: Option<(Cycle, u64, usize)> = None;
            for (d, q) in self.domains.iter().enumerate() {
                if let Some((t, s)) = q.peek_key() {
                    let better = match best {
                        Some((bt, bs, _)) => (t, s) < (bt, bs),
                        None => true,
                    };
                    if better {
                        best = Some((t, s, d));
                    }
                }
            }
            match best {
                Some((t, _, d)) if t < self.horizon => {
                    let (time, event) = self.domains[d].pop().expect("peeked head vanished");
                    if self.fast_forward {
                        self.idle_skipped += (time - self.now).saturating_sub(1);
                    }
                    self.now = time;
                    self.clocks[d] = time;
                    self.domain_events[d] += 1;
                    self.active = Some(d);
                    return Some((time, event));
                }
                _ => {
                    if !self.barrier() {
                        return None;
                    }
                }
            }
        }
    }

    /// Ends the current bounded-lag window: drains every exchange ring
    /// in target-domain-index order (the deterministic merge order) and
    /// opens the next window at the earliest pending event. Returns
    /// `false` when nothing is pending anywhere.
    fn barrier(&mut self) -> bool {
        self.active = None;
        if self.horizon > 0 {
            // Domains still holding events were stopped by the horizon,
            // not by running dry — the bounded-lag stall cost.
            self.horizon_stalls +=
                self.domains.iter().filter(|q| !q.is_empty()).count() as u64;
        }
        for d in 0..self.rings.len() {
            self.flush_ring(d);
        }
        let start =
            self.domains.iter().filter_map(|q| q.peek_key()).map(|(t, _)| t).min();
        if let Some(t) = start {
            self.window_start = t;
            self.horizon = t + self.lookahead;
            self.horizon_barriers += 1;
            true
        } else {
            false
        }
    }

    /// Drains ring `d` into domain `d`'s calendar, preserving the
    /// assigned global seqs (the sorted insert in
    /// [`EventQueue::schedule_at_seq`] restores FIFO order).
    fn flush_ring(&mut self, d: usize) {
        let mut ring = std::mem::take(&mut self.rings[d]);
        self.exchange_dequeued += ring.len() as u64;
        for (t, s, e) in ring.drain(..) {
            self.domains[d].schedule_at_seq(t, s, e);
        }
        // Hand the allocation back so steady state stays allocation-free.
        self.rings[d] = ring;
    }

    fn schedule(&mut self, time: Cycle, event: E)
    where
        E: ShardRoutable,
    {
        debug_assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        let d = match event.domain(self.shards as u32, self.num_sms as u32) {
            Domain::Shard(g) => (g as usize).min(self.shards - 1),
            Domain::Shared => self.shards,
        };
        match self.active {
            Some(a) if a != d => {
                if time >= self.horizon {
                    if self.rings[d].len() >= EXCHANGE_RING_CAP {
                        self.exchange_overflow_flushes += 1;
                        self.flush_ring(d);
                    }
                    self.rings[d].push((time, seq, event));
                    self.exchange_enqueued += 1;
                } else {
                    // Sub-lookahead cross-domain edge: must be visible
                    // to the current window, so it bypasses the ring.
                    self.exchange_bypass += 1;
                    self.domains[d].schedule_at_seq(time, seq, event);
                }
            }
            _ => self.domains[d].schedule_at_seq(time, seq, event),
        }
    }

    fn audit_invariants(&self) {
        for (d, q) in self.domains.iter().enumerate() {
            q.audit_invariants();
            assert!(
                q.seq <= self.seq,
                "domain {d} seq {} ahead of the global allocator {}",
                q.seq,
                self.seq
            );
        }
        let in_flight: usize = self.rings.iter().map(Vec::len).sum();
        assert_eq!(
            self.exchange_enqueued,
            self.exchange_dequeued + in_flight as u64,
            "exchange-queue conservation broken: {} enqueued != {} dequeued + {} in flight",
            self.exchange_enqueued,
            self.exchange_dequeued,
            in_flight
        );
        for (d, ring) in self.rings.iter().enumerate() {
            let mut prev_seq = None;
            for (t, s, _) in ring {
                assert!(
                    *t >= self.horizon,
                    "ring {d} holds a sub-horizon event at {} (horizon {})",
                    t,
                    self.horizon
                );
                assert!(*s < self.seq, "ring {d} seq {s} from the future");
                if let Some(p) = prev_seq {
                    assert!(*s > p, "ring {d} seq order broken: {s} after {p}");
                }
                prev_seq = Some(*s);
            }
        }
        for (d, &c) in self.clocks.iter().enumerate() {
            assert!(c <= self.now, "domain {d} clock {c} ahead of global now {}", self.now);
            assert!(
                self.horizon == 0 || c < self.horizon,
                "domain {d} clock {c} at or beyond horizon {}",
                self.horizon
            );
        }
        assert!(
            self.window_start <= self.horizon,
            "window start {} beyond horizon {}",
            self.window_start,
            self.horizon
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Heap entry for the oracle below (the slab queue no longer stores
    /// events inline, so the oracle keeps its own owning entry type).
    struct Entry<E> {
        time: Cycle,
        seq: u64,
        event: E,
    }
    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            (self.time, self.seq) == (other.time, other.seq)
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    /// The pre-calendar implementation — a single binary heap ordered by
    /// `(time, seq)` — kept as the ordering oracle for differential tests.
    struct ClassicHeap<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
        now: Cycle,
    }

    impl<E> ClassicHeap<E> {
        fn new() -> Self {
            Self { heap: BinaryHeap::new(), seq: 0, now: 0 }
        }
        fn schedule(&mut self, time: Cycle, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { time, seq, event }));
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse(e) = self.heap.pop()?;
            self.now = e.time;
            Some((e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((10, ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        q.schedule(WINDOW * 10, "far");
        q.schedule(3, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.pop(), Some((WINDOW * 10, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_wins_fifo_tie_against_ring() {
        // An event scheduled early (low seq) for a then-distant cycle must
        // still pop before a later-scheduled (high seq) event for the same
        // cycle, even though the former sits in the overflow heap and the
        // latter entered the ring once the cursor caught up.
        let mut q = EventQueue::new();
        let t = WINDOW + 100;
        q.schedule(t, "early-far"); // seq 0, overflow
        q.schedule(200, "mid"); // seq 1, ring
        assert_eq!(q.pop(), Some((200, "mid")));
        // Cursor is now 200; t - cursor < WINDOW, so this lands in the ring.
        q.schedule(t, "late-near"); // seq 2, ring
        assert_eq!(q.pop(), Some((t, "early-far")));
        assert_eq!(q.pop(), Some((t, "late-near")));
    }

    #[test]
    fn bucket_aliasing_across_windows_is_impossible_but_checked() {
        // Events exactly WINDOW apart share a bucket index; the second must
        // go to overflow until the cursor advances.
        let mut q = EventQueue::new();
        q.schedule(1, "a");
        q.schedule(1 + WINDOW, "b");
        q.schedule(1 + 2 * WINDOW, "c");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((1 + WINDOW, "b")));
        assert_eq!(q.pop(), Some((1 + 2 * WINDOW, "c")));
    }

    /// Differential test: random schedule/pop interleavings produce the
    /// exact same (time, event) stream as the classic binary heap. This is
    /// the property the whole simulator's bit-reproducibility rests on.
    #[test]
    fn differential_matches_classic_heap() {
        for trial in 0..50u64 {
            let mut rng = SimRng::seed_from_u64(0xD1FF ^ trial);
            let mut calendar = EventQueue::new();
            // Cover both pop paths: bitmap jump and legacy linear scan.
            calendar.set_fast_forward(trial % 2 == 0);
            let mut classic = ClassicHeap::new();
            let mut next_tag = 0u32;
            for _ in 0..2000 {
                // Biased interleaving: mostly schedules early, mostly pops
                // late, with occasional same-cycle bursts to stress FIFO.
                if rng.next_f64() < 0.55 {
                    let horizon = if rng.next_f64() < 0.1 {
                        // Stress the overflow heap and ring hand-off.
                        WINDOW * 4
                    } else {
                        WINDOW / 2
                    };
                    let t = calendar.now() + rng.next_below(horizon);
                    let burst = 1 + rng.index(4);
                    for _ in 0..burst {
                        calendar.schedule(t, next_tag);
                        classic.schedule(t, next_tag);
                        next_tag += 1;
                    }
                } else {
                    assert_eq!(calendar.pop(), classic.pop(), "trial {trial} diverged");
                    assert_eq!(calendar.now(), classic.now);
                }
            }
            // Drain both completely.
            loop {
                let (a, b) = (calendar.pop(), classic.pop());
                assert_eq!(a, b, "trial {trial} diverged during drain");
                if a.is_none() {
                    break;
                }
            }
            assert!(calendar.is_empty());
            assert_eq!(calendar.len(), 0);
        }
    }

    #[test]
    fn len_tracks_ring_and_overflow() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(5, 0);
        q.schedule(WINDOW * 2, 1);
        q.schedule(5, 2);
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn fast_forward_counts_skipped_idle_cycles() {
        let mut q = EventQueue::new();
        q.schedule(10, "a"); // skips cycles 1..=9 -> 9 idle
        q.schedule(10, "b"); // same cycle -> no idle
        q.schedule(12, "c"); // skips cycle 11 -> 1 idle
        q.schedule(WINDOW * 3, "far"); // overflow pop also fast-forwards
        while q.pop().is_some() {}
        assert_eq!(q.idle_cycles_skipped(), 9 + 1 + (WINDOW * 3 - 12 - 1));
    }

    #[test]
    fn disabled_fast_forward_reports_zero_idle() {
        let mut q = EventQueue::new();
        q.set_fast_forward(false);
        q.schedule(10, "a");
        q.schedule(500, "b");
        while q.pop().is_some() {}
        assert_eq!(q.idle_cycles_skipped(), 0);
    }

    #[test]
    fn audit_passes_under_random_churn() {
        let mut q = EventQueue::new();
        q.audit_invariants();
        let mut rng = SimRng::seed_from_u64(0xA0D1);
        for step in 0..3000u32 {
            if rng.next_f64() < 0.6 {
                let horizon = if rng.next_f64() < 0.1 { WINDOW * 3 } else { WINDOW / 2 };
                let t = q.now() + rng.next_below(horizon);
                q.schedule(t, step);
            } else {
                q.pop();
            }
            if step % 64 == 0 {
                q.audit_invariants();
            }
        }
        while q.pop().is_some() {}
        q.audit_invariants();
    }

    #[test]
    fn for_each_event_visits_exactly_the_pending_events() {
        let mut q = EventQueue::new();
        q.schedule(5, 1u32);
        q.schedule(WINDOW * 2, 2); // overflow
        q.schedule(5, 3);
        q.pop(); // retire event 1; its slot goes to the free list
        let mut seen = Vec::new();
        q.for_each_event(|e| seen.push(*e));
        seen.sort_unstable();
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new();
        // Steady-state churn: never more than 4 events live, so the slab
        // should never grow past the high-water mark.
        for round in 0..1000u64 {
            for k in 0..4 {
                q.schedule_in(1 + k, round * 10 + k);
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        assert!(q.slab.len() <= 8, "slab grew to {} despite recycling", q.slab.len());
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_at_seq_restores_fifo_order() {
        // Out-of-seq inserts into one bucket (what a barrier drain does
        // after direct schedules landed first) must still pop in seq
        // order, and the queue's own allocator must resume past the max.
        let mut q = EventQueue::new();
        q.schedule_at_seq(5, 10, "d");
        q.schedule_at_seq(5, 3, "a");
        q.schedule_at_seq(5, 7, "c");
        q.schedule_at_seq(5, 4, "b");
        q.schedule_at_seq(9, 1, "z");
        q.audit_invariants();
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), Some((5, "d")));
        assert_eq!(q.pop(), Some((9, "z")));
        // The allocator resumed after seq 10: the next plain schedule
        // gets seq 11, and later inserts interleave by seq as expected.
        q.schedule(20, "w"); // seq 11
        q.schedule_at_seq(20, 13, "y");
        q.schedule(20, "x"); // seq 14, after the explicit 13
        assert_eq!(q.pop(), Some((20, "w")));
        assert_eq!(q.pop(), Some((20, "y")));
        assert_eq!(q.pop(), Some((20, "x")));
    }

    #[test]
    fn schedule_at_seq_routes_far_events_to_overflow() {
        let mut q = EventQueue::new();
        q.schedule_at_seq(WINDOW * 5, 2, "far");
        q.schedule_at_seq(1, 9, "near");
        q.audit_invariants();
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.pop(), Some((WINDOW * 5, "far")));
    }

    #[test]
    fn peek_key_matches_pop() {
        let mut rng = SimRng::seed_from_u64(0xBEEF);
        let mut q = EventQueue::new();
        for step in 0..2000u32 {
            if rng.next_f64() < 0.55 {
                let horizon = if rng.next_f64() < 0.1 { WINDOW * 4 } else { WINDOW / 2 };
                q.schedule(q.now() + rng.next_below(horizon), step);
            } else {
                let peeked = q.peek_key();
                let popped = q.pop();
                assert_eq!(peeked.map(|(t, _)| t), popped.map(|(t, _)| t));
                if let (Some((_, s1)), Some((_, s2))) = (peeked, q.peek_key()) {
                    assert!(s1 != s2, "peek did not advance past the popped event");
                }
            }
        }
    }

    /// Test payload for the sharded calendar: routed by SM id or pinned
    /// to the shared domain, exactly like the engine's event enum.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct RoutedEv {
        tag: u32,
        sm: u32,
        shared: bool,
    }
    impl ShardRoutable for RoutedEv {
        fn domain(&self, shards: u32, num_sms: u32) -> Domain {
            if self.shared {
                Domain::Shared
            } else {
                Domain::Shard(self.sm * shards / num_sms)
            }
        }
    }

    /// The sharding determinism property at queue level: for any shard
    /// count, a script of handler-context schedules and pops produces
    /// the exact `(time, event)` stream — and idle accounting — of the
    /// single serial queue.
    #[test]
    fn sharded_calendar_matches_single_queue() {
        const NUM_SMS: u32 = 8;
        for &shards in &[2usize, 3, 4, 8] {
            for trial in 0..20u64 {
                let mut rng = SimRng::seed_from_u64(0x5AAD ^ trial ^ (shards as u64) << 32);
                let ff = trial % 2 == 0;
                let mut cal = ShardedCalendar::new(shards, NUM_SMS as usize, 64);
                cal.set_fast_forward(ff);
                let mut serial = EventQueue::new();
                serial.set_fast_forward(ff);
                let mut tag = 0u32;
                let emit = |cal: &mut ShardedCalendar<RoutedEv>,
                                serial: &mut EventQueue<RoutedEv>,
                                rng: &mut SimRng,
                                tag: &mut u32| {
                    let horizon = if rng.next_f64() < 0.15 { WINDOW * 3 } else { 200 };
                    let t = cal.now() + rng.next_below(horizon);
                    let ev = RoutedEv {
                        tag: *tag,
                        sm: rng.index(NUM_SMS as usize) as u32,
                        shared: rng.next_f64() < 0.35,
                    };
                    *tag += 1;
                    cal.schedule(t, ev);
                    serial.schedule(t, ev);
                };
                // Seed a burst outside any handler (engine init pattern).
                for _ in 0..8 {
                    emit(&mut cal, &mut serial, &mut rng, &mut tag);
                }
                for _ in 0..3000 {
                    // Pop one event, then schedule 0..3 follow-ups "from
                    // its handler" so cross-domain ring routing engages.
                    let (a, b) = (cal.pop(), serial.pop());
                    assert_eq!(a, b, "shards {shards} trial {trial} diverged");
                    assert_eq!(cal.now(), serial.now());
                    if a.is_none() {
                        break;
                    }
                    for _ in 0..rng.index(3) {
                        emit(&mut cal, &mut serial, &mut rng, &mut tag);
                    }
                }
                loop {
                    let (a, b) = (cal.pop(), serial.pop());
                    assert_eq!(a, b, "shards {shards} trial {trial} diverged during drain");
                    if a.is_none() {
                        break;
                    }
                }
                assert_eq!(cal.idle_cycles_skipped(), serial.idle_cycles_skipped());
                assert!(cal.is_empty());
                cal.audit_invariants();
                assert!(cal.horizon_barriers() > 0, "sharded run never opened a window");
                assert_eq!(
                    cal.exchange_enqueued(),
                    cal.exchange_dequeued(),
                    "drained calendar still has ring entries in flight"
                );
                assert_eq!(
                    cal.domain_event_counts().iter().sum::<u64>(),
                    u64::from(tag),
                    "per-domain event counts must cover every popped event"
                );
            }
        }
    }

    #[test]
    fn sharded_calendar_with_one_shard_is_the_single_queue() {
        let cal: ShardedCalendar<RoutedEv> = ShardedCalendar::new(1, 8, 64);
        assert!(matches!(cal, ShardedCalendar::Single(_)));
        assert_eq!(cal.shards(), 1);
        assert_eq!(cal.domain_event_counts(), &[] as &[u64]);
        // Shard counts beyond the SM count clamp to the SM count.
        let cal: ShardedCalendar<RoutedEv> = ShardedCalendar::new(16, 4, 64);
        assert_eq!(cal.shards(), 4);
        let cal: ShardedCalendar<RoutedEv> = ShardedCalendar::new(4, 1, 64);
        assert_eq!(cal.shards(), 1);
    }

    #[test]
    fn sharded_audit_passes_under_random_churn() {
        let mut rng = SimRng::seed_from_u64(0xCA1E);
        let mut cal: ShardedCalendar<RoutedEv> = ShardedCalendar::new(4, 8, 32);
        let mut tag = 0u32;
        for step in 0..4000u32 {
            if rng.next_f64() < 0.6 {
                let t = cal.now() + rng.next_below(300);
                let ev = RoutedEv {
                    tag,
                    sm: rng.index(8) as u32,
                    shared: rng.next_f64() < 0.3,
                };
                tag += 1;
                cal.schedule(t, ev);
            } else {
                cal.pop();
            }
            if step % 128 == 0 {
                cal.audit_invariants();
            }
        }
        while cal.pop().is_some() {}
        cal.audit_invariants();
    }

    #[cfg(feature = "invariants")]
    #[test]
    #[should_panic(expected = "exchange-queue conservation")]
    fn sharded_audit_detects_exchange_corruption() {
        let mut cal: ShardedCalendar<RoutedEv> = ShardedCalendar::new(2, 8, 32);
        cal.schedule(1, RoutedEv { tag: 0, sm: 0, shared: false });
        cal.corrupt_exchange_for_test();
        cal.audit_invariants();
    }
}
