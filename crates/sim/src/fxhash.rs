//! An FxHash-style hasher for the simulator's hot-path maps.
//!
//! The event loop hits half a dozen `HashMap`s on every simulated memory
//! access (MSHR files, walk bookkeeping, page-table lookups, UVM frame
//! ownership). The standard library's default SipHash is DoS-resistant but
//! costs tens of cycles per lookup; none of these maps are fed untrusted
//! input, so we use the multiply-fold hash popularized by rustc's
//! `FxHasher`: one `u64` multiply + rotate + xor per word of key. Keys here
//! are small integers or tuples of integers, which this hash handles well.
//!
//! No external dependency — the whole hasher is ~40 lines.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (from the golden ratio, as used by rustc's Fx).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted integer-like keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold arbitrary bytes one machine word at a time; the tail is
        // padded into a single word. Only hit for `&str`/byte-slice keys,
        // which the simulator does not use on hot paths.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; usable anywhere `RandomState` is.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
///
/// The canonical sanctioned mention of the std collection: every other
/// use in the workspace goes through this alias (enforced by
/// `avatar-lint`'s `default-collections` rule).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>; // lint:allow(default-collections)

/// Drop-in `HashSet` with the fast hasher (see [`FxHashMap`]).
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>; // lint:allow(default-collections)

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u64), Vec<u32>> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i as u64) << 20), vec![i]);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, (i as u64) << 20)), Some(&vec![i]));
        }
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            s.insert(i * 4096);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&(999 * 4096)));
        assert!(!s.contains(&1));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let hash = |s: &str| b.hash_one(s);
        assert_eq!(hash("hello world"), hash("hello world"));
        assert_ne!(hash("hello world"), hash("hello worle"));
    }

    #[test]
    fn sequential_keys_spread() {
        // The map must not degenerate on the simulator's typical key shape
        // (sequential VPNs): adjacent keys should land in different buckets.
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for vpn in 0u64..256 {
            low_bits.insert(b.hash_one(vpn) & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }
}
