//! Typed addresses and geometry constants for the simulated GPU.
//!
//! The simulator uses a 48-bit virtual address space with 4KB base pages,
//! 2MB logical chunks (the CUDA-runtime UVM allocation granule), 128-byte
//! cache lines split into four 32-byte sectors.

use std::fmt;

/// log2 of the base page size (4KB).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// log2 of the large-page / logical-chunk size (2MB).
pub const CHUNK_SHIFT: u32 = 21;
/// Logical chunk size in bytes (2MB).
pub const CHUNK_BYTES: u64 = 1 << CHUNK_SHIFT;
/// 4KB pages per 2MB chunk.
pub const PAGES_PER_CHUNK: u64 = 1 << (CHUNK_SHIFT - PAGE_SHIFT);
/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 128;
/// Sector size in bytes.
pub const SECTOR_BYTES: u64 = 32;
/// Sectors per cache line.
pub const SECTORS_PER_LINE: u64 = LINE_BYTES / SECTOR_BYTES;
/// Sectors per 4KB page.
pub const SECTORS_PER_PAGE: u64 = PAGE_BYTES / SECTOR_BYTES;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical (GPU device) byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number (address >> 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical page (frame) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl VirtAddr {
    /// The page this address falls in.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// The 2MB virtual chunk index.
    pub fn chunk(self) -> u64 {
        self.0 >> CHUNK_SHIFT
    }

    /// Virtual sector index (address / 32).
    pub fn sector_id(self) -> u64 {
        self.0 / SECTOR_BYTES
    }

    /// Sector index within the page (0..128).
    pub fn sector_in_page(self) -> u32 {
        (self.page_offset() / SECTOR_BYTES) as u32
    }
}

impl Vpn {
    /// First byte address of the page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The 2MB virtual chunk index this page belongs to.
    pub fn chunk(self) -> u64 {
        self.0 >> (CHUNK_SHIFT - PAGE_SHIFT)
    }

    /// Page index within its 2MB chunk (0..512).
    pub fn page_in_chunk(self) -> u64 {
        self.0 & (PAGES_PER_CHUNK - 1)
    }
}

impl Ppn {
    /// First byte address of the frame.
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl PhysAddr {
    /// The frame this address falls in.
    pub fn ppn(self) -> Ppn {
        Ppn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the frame.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// Physical cache-line address (aligned).
    pub fn line(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Sector index within the cache line (0..4).
    pub fn sector_in_line(self) -> u32 {
        ((self.0 % LINE_BYTES) / SECTOR_BYTES) as u32
    }
}

/// Combines a page translation with a page offset.
pub fn translate(vaddr: VirtAddr, ppn: Ppn) -> PhysAddr {
    PhysAddr((ppn.0 << PAGE_SHIFT) | vaddr.page_offset())
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(PAGES_PER_CHUNK, 512);
        assert_eq!(SECTORS_PER_LINE, 4);
        assert_eq!(SECTORS_PER_PAGE, 128);
    }

    #[test]
    fn vpn_and_offsets() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.vpn().0, 0x1234_5678 >> 12);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.vpn().base().0, a.0 & !0xFFF);
    }

    #[test]
    fn chunk_indexing() {
        let a = VirtAddr(2 * CHUNK_BYTES + 5 * PAGE_BYTES + 100);
        assert_eq!(a.chunk(), 2);
        assert_eq!(a.vpn().chunk(), 2);
        assert_eq!(a.vpn().page_in_chunk(), 5);
    }

    #[test]
    fn translate_preserves_offset() {
        let va = VirtAddr(0xABCD_E123);
        let pa = translate(va, Ppn(0x42));
        assert_eq!(pa.page_offset(), va.page_offset());
        assert_eq!(pa.ppn().0, 0x42);
    }

    #[test]
    fn sector_indexing() {
        let a = VirtAddr(PAGE_BYTES + 3 * SECTOR_BYTES + 1);
        assert_eq!(a.sector_in_page(), 3);
        assert_eq!(a.sector_id(), (PAGE_BYTES / SECTOR_BYTES) + 3);
        let p = PhysAddr(LINE_BYTES * 7 + SECTOR_BYTES * 2);
        assert_eq!(p.line(), 7);
        assert_eq!(p.sector_in_line(), 2);
    }

    #[test]
    fn display_formats_nonempty() {
        assert!(!format!("{}", VirtAddr(0)).is_empty());
        assert!(!format!("{}", Ppn(1)).is_empty());
    }
}
