//! Engine checkpoint/restore: a length-prefixed binary state format.
//!
//! Long oversubscription runs (fig19-style) take minutes per cell; a
//! divergence reported at event 80M is unbisectable if the only tool is
//! re-running from cycle 0. This module provides the byte-level substrate
//! for checkpointing: a [`Writer`] that appends fixed-width
//! little-endian fields and length-prefixed sequences, and a [`Reader`]
//! that consumes them with hard errors on truncation or corruption —
//! never silent defaults, because a half-restored engine would produce
//! plausible-but-wrong statistics.
//!
//! The format is deliberately *not* self-describing: field order is the
//! struct declaration order of the saving module, and every module owns
//! its own `save_state`/`load_state` pair so private fields never leak
//! across module boundaries. A format version and the `probes` feature
//! flag ride in the checkpoint header written by
//! [`Engine::save_checkpoint`](crate::engine::Engine::save_checkpoint);
//! restore refuses a mismatch rather than guessing. Restore overlays
//! state onto a freshly assembled engine of the identical configuration
//! (the header carries the config's key digest), so static geometry is
//! never serialized — only mutable state — and every restored structure
//! must still pass its `audit_invariants`.

/// Checkpoint format version. Bump on any layout change; restore
/// hard-errors on mismatch.
pub const FORMAT_VERSION: u32 = 2;

/// Magic bytes opening every checkpoint ("AVCK").
pub const MAGIC: u32 = 0x4156_434b;

/// A checkpoint decode failure. Every variant is a hard error: the
/// engine being restored must be discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// The stream does not open with [`MAGIC`].
    BadMagic,
    /// The stream's format version does not match [`FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the stream.
        found: u32,
    },
    /// The checkpoint was taken under a different `probes` feature
    /// setting than the restoring build.
    FeatureMismatch {
        /// Whether the saving build had `probes` compiled in.
        saved_probes: bool,
    },
    /// The engine being restored was assembled from a different
    /// configuration than the checkpointed one.
    ConfigMismatch {
        /// Config key digest recorded in the checkpoint.
        saved: u64,
        /// Config key digest of the engine being restored.
        current: u64,
    },
    /// A structural field disagrees with the assembled engine (for
    /// example an array length), or an enum tag is out of range.
    Corrupt(&'static str),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::VersionMismatch { found } => {
                write!(f, "checkpoint format v{found} != supported v{FORMAT_VERSION}")
            }
            CkptError::FeatureMismatch { saved_probes } => write!(
                f,
                "checkpoint taken with probes={saved_probes} but this build has probes={}",
                cfg!(feature = "probes")
            ),
            CkptError::ConfigMismatch { saved, current } => write!(
                f,
                "checkpoint config digest {saved:#018x} != assembled engine's {current:#018x}"
            ),
            CkptError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
        }
    }
}

/// Appends little-endian fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes a length prefix followed by each element via `f`.
    pub fn seq<T>(&mut self, items: impl ExactSizeIterator<Item = T>, mut f: impl FnMut(&mut Self, T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }

    /// Writes a `&[u64]` with a length prefix.
    pub fn u64_slice(&mut self, s: &[u64]) {
        self.usize(s.len());
        for &v in s {
            self.u64(v);
        }
    }

    /// Writes a `&[u32]` with a length prefix.
    pub fn u32_slice(&mut self, s: &[u32]) {
        self.usize(s.len());
        for &v in s {
            self.u32(v);
        }
    }

    /// Writes a `&[u16]` with a length prefix.
    pub fn u16_slice(&mut self, s: &[u16]) {
        self.usize(s.len());
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Consumes little-endian fields from a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.buf.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::Corrupt("bool byte out of range")),
        }
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` (stored as `u64`), erroring if it overflows.
    pub fn usize(&mut self) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| CkptError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<u64>` (presence byte plus value).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CkptError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length prefix, sanity-capped so corrupt lengths fail
    /// instead of attempting a multi-terabyte allocation.
    pub fn seq_len(&mut self) -> Result<usize, CkptError> {
        let n = self.usize()?;
        // Each element costs at least one byte, so a length beyond the
        // remaining buffer is structurally impossible.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CkptError::Corrupt("sequence length exceeds remaining bytes"));
        }
        Ok(n)
    }

    /// Reads a `Vec<u64>` written by [`Writer::u64_slice`].
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.usize()?;
        if n.checked_mul(8).is_none_or(|bytes| bytes > self.buf.len() - self.pos) {
            return Err(CkptError::Corrupt("u64 slice length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a `Vec<u32>` written by [`Writer::u32_slice`].
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, CkptError> {
        let n = self.usize()?;
        if n.checked_mul(4).is_none_or(|bytes| bytes > self.buf.len() - self.pos) {
            return Err(CkptError::Corrupt("u32 slice length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads into an existing `&mut [u64]`, erroring if the stored
    /// length differs (the restored engine's geometry must match).
    pub fn u64_slice_into(&mut self, dst: &mut [u64]) -> Result<(), CkptError> {
        let n = self.usize()?;
        if n != dst.len() {
            return Err(CkptError::Corrupt("u64 slice length mismatch"));
        }
        for v in dst.iter_mut() {
            *v = self.u64()?;
        }
        Ok(())
    }

    /// Reads into an existing `&mut [u32]`, erroring on length mismatch.
    pub fn u32_slice_into(&mut self, dst: &mut [u32]) -> Result<(), CkptError> {
        let n = self.usize()?;
        if n != dst.len() {
            return Err(CkptError::Corrupt("u32 slice length mismatch"));
        }
        for v in dst.iter_mut() {
            *v = self.u32()?;
        }
        Ok(())
    }

    /// Reads into an existing `&mut [u16]`, erroring on length mismatch.
    pub fn u16_slice_into(&mut self, dst: &mut [u16]) -> Result<(), CkptError> {
        let n = self.usize()?;
        if n != dst.len() {
            return Err(CkptError::Corrupt("u16 slice length mismatch"));
        }
        for v in dst.iter_mut() {
            let b = self.take(2)?;
            *v = u16::from_le_bytes([b[0], b[1]]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(42);
        w.f64(0.1 + 0.2);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().expect("scalar round-trip"), 7);
        assert!(r.bool().expect("scalar round-trip"));
        assert_eq!(r.u32().expect("scalar round-trip"), 0xDEAD_BEEF);
        assert_eq!(r.u64().expect("scalar round-trip"), u64::MAX - 3);
        assert_eq!(r.usize().expect("scalar round-trip"), 42);
        assert_eq!(r.f64().expect("scalar round-trip"), 0.1 + 0.2);
        assert_eq!(r.opt_u64().expect("scalar round-trip"), Some(9));
        assert_eq!(r.opt_u64().expect("scalar round-trip"), None);
        assert!(r.is_exhausted());
    }

    #[test]
    fn slices_round_trip_and_check_lengths() {
        let mut w = Writer::new();
        w.u64_slice(&[1, 2, 3]);
        w.u32_slice(&[4, 5]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64_vec().expect("slice round-trip"), vec![1, 2, 3]);
        let mut dst = [0u32; 2];
        r.u32_slice_into(&mut dst).expect("slice round-trip");
        assert_eq!(dst, [4, 5]);

        let mut r = Reader::new(&bytes);
        let mut wrong = [0u64; 2];
        assert!(matches!(r.u64_slice_into(&mut wrong), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn truncation_is_a_hard_error() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(CkptError::Truncated));
    }

    #[test]
    fn corrupt_lengths_do_not_allocate() {
        // A claimed 2^60-element sequence must fail fast, not OOM.
        let mut w = Writer::new();
        w.u64(1 << 60);
        let bytes = w.into_bytes();
        assert!(matches!(Reader::new(&bytes).u64_vec(), Err(CkptError::Corrupt(_))));
        assert!(matches!(Reader::new(&bytes).seq_len(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [3u8];
        assert!(matches!(Reader::new(&bytes).bool(), Err(CkptError::Corrupt(_))));
    }
}
