//! The GPU-local four-level radix page table.
//!
//! Translations are held per 4KB page, with optional promotion of a fully
//! resident, physically contiguous 2MB chunk to a large-page leaf one level
//! up (Mosaic-style page promotion). The table also synthesizes physical
//! addresses for its own nodes so page walks generate real memory traffic
//! through the L2 cache and DRAM — including the PTE-line spatial locality
//! that makes walks of neighbouring pages cheap.

use crate::addr::{Ppn, Vpn, PAGES_PER_CHUNK};
use crate::checkpoint::{CkptError, Reader, Writer};
use crate::tlb::ContigRun;
use crate::fxhash::FxHashMap;

/// Number of radix levels (L0 root .. L3 leaf for 4KB pages).
pub const LEVELS: usize = 4;
/// Bits translated per level.
pub const BITS_PER_LEVEL: u32 = 9;
/// Reserved physical region where page-table nodes live.
pub const PT_BASE: u64 = 1 << 40;

/// A translation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The frame backing the requested page.
    pub ppn: Ppn,
    /// Mapping granularity in 4KB pages (1, or 512 for a promoted chunk).
    pub pages: u64,
}

/// Pages per chunk as an array length.
const CHUNK_PAGES: usize = PAGES_PER_CHUNK as usize;
/// Sentinel frame for an unmapped page slot.
const NO_FRAME: u64 = u64::MAX;

/// The page table for one address space.
///
/// 4KB mappings are stored chunk-granular: one hash lookup finds a 512-slot
/// frame array for the page's 2MB chunk, and the page indexes it directly.
/// Neighbour scans (PTE-locality, [`PageTable::contiguous_run`]) become
/// contiguous array reads instead of per-page hash probes.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    map: FxHashMap<u64, Box<[u64; CHUNK_PAGES]>>,
    /// Live 4KB mappings (incremental count; the chunk arrays are sparse).
    mapped: usize,
    large: FxHashMap<u64, u64>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps one 4KB page.
    pub fn map_page(&mut self, vpn: Vpn, ppn: Ppn) {
        debug_assert!(
            !self.large.contains_key(&vpn.chunk()),
            "mapping a 4KB page inside a promoted chunk"
        );
        let slot = self
            .map
            .entry(vpn.chunk())
            .or_insert_with(|| Box::new([NO_FRAME; CHUNK_PAGES]));
        let i = vpn.page_in_chunk() as usize;
        if slot[i] == NO_FRAME {
            self.mapped += 1;
        }
        slot[i] = ppn.0;
    }

    /// Unmaps one 4KB page; returns its frame if it was mapped.
    pub fn unmap_page(&mut self, vpn: Vpn) -> Option<Ppn> {
        let slot = self.map.get_mut(&vpn.chunk())?;
        let i = vpn.page_in_chunk() as usize;
        if slot[i] == NO_FRAME {
            return None;
        }
        let p = slot[i];
        slot[i] = NO_FRAME;
        self.mapped -= 1;
        Some(Ppn(p))
    }

    /// Promotes a fully resident, contiguous chunk to a 2MB mapping.
    ///
    /// The caller must have verified residency and contiguity; the 4KB
    /// entries are subsumed (removed).
    pub fn promote_chunk(&mut self, vchunk: u64, base_ppn: Ppn) {
        if let Some(slot) = self.map.remove(&vchunk) {
            self.mapped -= slot.iter().filter(|&&p| p != NO_FRAME).count();
        }
        self.large.insert(vchunk, base_ppn.0);
    }

    /// Splinters a promoted chunk back into 4KB mappings.
    pub fn splinter_chunk(&mut self, vchunk: u64) -> bool {
        let Some(base) = self.large.remove(&vchunk) else {
            return false;
        };
        let mut arr = Box::new([NO_FRAME; CHUNK_PAGES]);
        for (i, slot) in arr.iter_mut().enumerate() {
            *slot = base + i as u64;
        }
        if let Some(old) = self.map.insert(vchunk, arr) {
            self.mapped -= old.iter().filter(|&&p| p != NO_FRAME).count();
        }
        self.mapped += CHUNK_PAGES;
        true
    }

    /// Whether the chunk is promoted.
    pub fn is_promoted(&self, vchunk: u64) -> bool {
        self.large.contains_key(&vchunk)
    }

    /// Translates a page.
    pub fn translate(&self, vpn: Vpn) -> Option<Translation> {
        if let Some(&base) = self.large.get(&vpn.chunk()) {
            return Some(Translation { ppn: Ppn(base + vpn.page_in_chunk()), pages: PAGES_PER_CHUNK });
        }
        let slot = self.map.get(&vpn.chunk())?;
        let p = slot[vpn.page_in_chunk() as usize];
        if p == NO_FRAME {
            None
        } else {
            Some(Translation { ppn: Ppn(p), pages: 1 })
        }
    }

    /// Whether the page is mapped at any granularity.
    pub fn is_mapped(&self, vpn: Vpn) -> bool {
        self.translate(vpn).is_some()
    }

    /// Number of 4KB mappings (excluding promoted chunks).
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Number of promoted chunks.
    pub fn promoted_chunks(&self) -> usize {
        self.large.len()
    }

    /// Serializes the table with chunks in ascending key order (hash-map
    /// iteration order is nondeterministic; sorting makes equal tables
    /// produce equal bytes). Sparse chunk arrays are written as
    /// (index, frame) pairs of their occupied slots only.
    pub fn save_state(&self, w: &mut Writer) {
        let mut chunks: Vec<&u64> = self.map.keys().collect();
        chunks.sort_unstable();
        w.usize(chunks.len());
        for &chunk in chunks {
            w.u64(chunk);
            let slot = self.map.get(&chunk).expect("key collected from the map one line earlier");
            let occupied = slot.iter().filter(|&&p| p != NO_FRAME).count();
            w.usize(occupied);
            for (i, &p) in slot.iter().enumerate() {
                if p != NO_FRAME {
                    w.u32(i as u32);
                    w.u64(p);
                }
            }
        }
        let mut large: Vec<(&u64, &u64)> = self.large.iter().collect();
        large.sort_unstable();
        w.usize(large.len());
        for (chunk, base) in large {
            w.u64(*chunk);
            w.u64(*base);
        }
        w.usize(self.mapped);
    }

    /// Restores state saved by [`PageTable::save_state`], replacing any
    /// current contents and re-verifying the mapped-page count.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        self.map.clear();
        self.large.clear();
        let nchunks = r.seq_len()?;
        for _ in 0..nchunks {
            let chunk = r.u64()?;
            let occupied = r.seq_len()?;
            if occupied > CHUNK_PAGES {
                return Err(CkptError::Corrupt("chunk frame array overfull"));
            }
            let mut arr = Box::new([NO_FRAME; CHUNK_PAGES]);
            for _ in 0..occupied {
                let i = r.u32()? as usize;
                let p = r.u64()?;
                if i >= CHUNK_PAGES || p == NO_FRAME {
                    return Err(CkptError::Corrupt("chunk frame slot out of range"));
                }
                if arr[i] != NO_FRAME {
                    return Err(CkptError::Corrupt("chunk frame slot written twice"));
                }
                arr[i] = p;
            }
            if self.map.insert(chunk, arr).is_some() {
                return Err(CkptError::Corrupt("page-table chunk key repeated"));
            }
        }
        let nlarge = r.seq_len()?;
        for _ in 0..nlarge {
            let chunk = r.u64()?;
            let base = r.u64()?;
            if self.map.contains_key(&chunk) || self.large.insert(chunk, base).is_some() {
                return Err(CkptError::Corrupt("promoted chunk conflicts with 4KB mappings"));
            }
        }
        self.mapped = r.usize()?;
        let actual: usize =
            self.map.values().map(|s| s.iter().filter(|&&p| p != NO_FRAME).count()).sum();
        if actual != self.mapped {
            return Err(CkptError::Corrupt("mapped-page counter disagrees with table contents"));
        }
        Ok(())
    }

    /// Radix prefix of `vpn` at `level` (0 = root .. 3 = leaf index).
    pub fn prefix(vpn: Vpn, level: usize) -> u64 {
        debug_assert!(level < LEVELS);
        vpn.0 >> (BITS_PER_LEVEL as usize * (LEVELS - 1 - level))
    }

    /// Physical address of the page-structure entry consulted at `level`
    /// during a walk of `vpn`. Entries are 8 bytes and packed, so
    /// neighbouring pages share PTE cache lines.
    pub fn entry_address(vpn: Vpn, level: usize) -> crate::addr::PhysAddr {
        let prefix = Self::prefix(vpn, level);
        crate::addr::PhysAddr(PT_BASE + ((level as u64) << 36) + prefix * 8)
    }

    /// Levels a walk must reference for `vpn` when starting from scratch:
    /// 4 for a 4KB leaf, 3 for a promoted 2MB leaf.
    pub fn walk_levels(&self, vpn: Vpn) -> usize {
        if self.large.contains_key(&vpn.chunk()) {
            LEVELS - 1
        } else {
            LEVELS
        }
    }

    /// The maximal physically contiguous run containing `vpn`, constrained
    /// to the aligned window of `window_pages` (a power of two).
    ///
    /// Returns `None` when the page itself is unmapped. Promoted chunks
    /// report their full 2MB run.
    pub fn contiguous_run(&self, vpn: Vpn, window_pages: u64) -> Option<ContigRun> {
        debug_assert!(window_pages.is_power_of_two());
        // An aligned window of at most a chunk never crosses a chunk
        // boundary, so the whole scan stays inside one frame array.
        debug_assert!(window_pages <= PAGES_PER_CHUNK);
        if let Some(&base) = self.large.get(&vpn.chunk()) {
            let start_vpn = vpn.chunk() * PAGES_PER_CHUNK;
            return Some(ContigRun { start_vpn, start_ppn: base, len: PAGES_PER_CHUNK });
        }
        let slot = self.map.get(&vpn.chunk())?;
        let i = vpn.page_in_chunk() as usize;
        let ppn = slot[i];
        if ppn == NO_FRAME {
            return None;
        }
        let window_start = (vpn.0 & !(window_pages - 1)) & (PAGES_PER_CHUNK - 1);
        let window_end = window_start + window_pages;
        let mut lo = i as u64;
        while lo > window_start {
            let p = slot[lo as usize - 1];
            if p != NO_FRAME && p + (i as u64 - (lo - 1)) == ppn {
                lo -= 1;
            } else {
                break;
            }
        }
        let mut hi = i as u64 + 1;
        while hi < window_end {
            let p = slot[hi as usize];
            if p != NO_FRAME && p == ppn + (hi - i as u64) {
                hi += 1;
            } else {
                break;
            }
        }
        let chunk_first = vpn.chunk() * PAGES_PER_CHUNK;
        Some(ContigRun {
            start_vpn: chunk_first + lo,
            start_ppn: ppn - (i as u64 - lo),
            len: hi - lo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.translate(Vpn(5)).is_none());
        pt.map_page(Vpn(5), Ppn(50));
        assert_eq!(pt.translate(Vpn(5)), Some(Translation { ppn: Ppn(50), pages: 1 }));
        assert_eq!(pt.unmap_page(Vpn(5)), Some(Ppn(50)));
        assert!(!pt.is_mapped(Vpn(5)));
    }

    #[test]
    fn promotion_covers_chunk_and_subsumes_pages() {
        let mut pt = PageTable::new();
        for i in 0..PAGES_PER_CHUNK {
            pt.map_page(Vpn(PAGES_PER_CHUNK + i), Ppn(1000 + i));
        }
        pt.promote_chunk(1, Ppn(1000));
        assert_eq!(pt.mapped_pages(), 0);
        assert!(pt.is_promoted(1));
        let t = pt.translate(Vpn(PAGES_PER_CHUNK + 77)).unwrap();
        assert_eq!(t.ppn, Ppn(1077));
        assert_eq!(t.pages, PAGES_PER_CHUNK);
        assert_eq!(pt.walk_levels(Vpn(PAGES_PER_CHUNK + 77)), 3);
    }

    #[test]
    fn splinter_restores_4k_mappings() {
        let mut pt = PageTable::new();
        pt.promote_chunk(2, Ppn(4096));
        assert!(pt.splinter_chunk(2));
        assert!(!pt.is_promoted(2));
        let t = pt.translate(Vpn(2 * PAGES_PER_CHUNK + 3)).unwrap();
        assert_eq!(t.ppn, Ppn(4099));
        assert_eq!(t.pages, 1);
        assert!(!pt.splinter_chunk(2));
    }

    #[test]
    fn prefixes_and_entry_addresses() {
        let vpn = Vpn(0b1_0000_0001_0000_0001);
        assert_eq!(PageTable::prefix(vpn, 3), vpn.0);
        assert_eq!(PageTable::prefix(vpn, 2), vpn.0 >> 9);
        assert_eq!(PageTable::prefix(vpn, 0), vpn.0 >> 27);
        // Neighbouring leaf PTEs share a 128B line (16 PTEs per line).
        let a = PageTable::entry_address(Vpn(100), 3);
        let b = PageTable::entry_address(Vpn(101), 3);
        assert_eq!(a.line(), b.line());
        let c = PageTable::entry_address(Vpn(116), 3);
        assert_ne!(a.line(), c.line());
    }

    #[test]
    fn contiguous_run_detection() {
        let mut pt = PageTable::new();
        // Pages 32..40 contiguous, 40 breaks contiguity.
        for i in 0..8 {
            pt.map_page(Vpn(32 + i), Ppn(200 + i));
        }
        pt.map_page(Vpn(40), Ppn(999));
        let run = pt.contiguous_run(Vpn(35), 16).unwrap();
        assert_eq!(run, ContigRun { start_vpn: 32, start_ppn: 200, len: 8 });
        // The window clamps the run.
        let run4 = pt.contiguous_run(Vpn(35), 4).unwrap();
        assert_eq!(run4, ContigRun { start_vpn: 32, start_ppn: 200, len: 4 });
        // Unmapped page: no run.
        assert!(pt.contiguous_run(Vpn(41), 16).is_none());
    }

    #[test]
    fn contiguous_run_does_not_cross_window() {
        let mut pt = PageTable::new();
        for i in 0..32 {
            pt.map_page(Vpn(i), Ppn(100 + i));
        }
        let run = pt.contiguous_run(Vpn(17), 16).unwrap();
        assert_eq!(run.start_vpn, 16);
        assert_eq!(run.len, 16);
    }

    #[test]
    fn promoted_chunk_reports_full_run() {
        let mut pt = PageTable::new();
        pt.promote_chunk(3, Ppn(9000));
        let run = pt.contiguous_run(Vpn(3 * PAGES_PER_CHUNK + 5), 16).unwrap();
        assert_eq!(run.len, PAGES_PER_CHUNK);
        assert_eq!(run.start_ppn, 9000);
    }
}
