//! Simulation statistics: everything the paper's figures report.

use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::Cycle;
use crate::invariant::Fnv64;
use crate::probe::LatencyBreakdown;

/// Outcome classes for memory accesses that received a *correct*
/// speculative translation (paper Fig 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecOutcome {
    /// Rapid validation succeeded (CAVA) — translation overhead eliminated.
    FastTranslation,
    /// Validation unavailable (raw sector); the background translation
    /// completed after the fetch and the original access hit the
    /// prefetched sector in the L1.
    L1dHit,
    /// Validation unavailable; the background translation completed before
    /// the fetch and the original access merged with the in-flight
    /// speculative fetch in the cache MSHR.
    L1dMerge,
    /// The speculatively fetched sector was evicted before the original
    /// access could use it — no benefit.
    L1dMiss,
}

/// Coverage buckets for TLB-entry reach (paper Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageBucket {
    /// A single 4KB page.
    Pages4K,
    /// 8KB–32KB of reach.
    To32K,
    /// 64KB–256KB of reach.
    To256K,
    /// 512KB–1MB of reach.
    To1M,
    /// A full 2MB (or larger) region.
    From2M,
}

impl CoverageBucket {
    /// Buckets a coverage expressed in 4KB pages.
    pub fn of_pages(pages: u64) -> Self {
        match pages {
            0..=1 => CoverageBucket::Pages4K,
            2..=8 => CoverageBucket::To32K,
            9..=64 => CoverageBucket::To256K,
            65..=256 => CoverageBucket::To1M,
            _ => CoverageBucket::From2M,
        }
    }

    /// All buckets, smallest reach first.
    pub const ALL: [CoverageBucket; 5] = [
        CoverageBucket::Pages4K,
        CoverageBucket::To32K,
        CoverageBucket::To256K,
        CoverageBucket::To1M,
        CoverageBucket::From2M,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CoverageBucket::Pages4K => "4KB",
            CoverageBucket::To32K => "8-32KB",
            CoverageBucket::To256K => "64-256KB",
            CoverageBucket::To1M => "512KB-1MB",
            CoverageBucket::From2M => ">=2MB",
        }
    }
}

/// Running mean without storing samples. The accumulator is an integer
/// (all simulator samples are cycle counts), which keeps the digest
/// insensitive to accumulation order — integer addition commutes where
/// float addition does not.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: u64,
    n: u64,
}

impl Mean {
    /// Adds a sample.
    pub fn add(&mut self, x: u64) {
        self.sum += x;
        self.n += 1;
    }

    /// Current mean (0 if empty).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples (the latency-conservation checks compare
    /// this against per-phase attribution totals).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another accumulator into this one. Exact, because the
    /// accumulator is an integer sum — merging per-lane means in any
    /// order yields the same (sum, n) a single sequential accumulator
    /// would have.
    pub fn merge(&mut self, other: &Mean) {
        self.sum += other.sum;
        self.n += other.n;
    }

    /// Serializes the accumulator (checkpointing).
    pub fn save_state(&self, w: &mut Writer) {
        w.u64(self.sum);
        w.u64(self.n);
    }

    /// Restores the accumulator (checkpointing).
    pub fn load_state(&mut self, r: &mut Reader) -> Result<(), CkptError> {
        self.sum = r.u64()?;
        self.n = r.u64()?;
        Ok(())
    }
}

/// A log2-bucketed latency histogram with percentile estimation.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[2^i, 2^(i+1))` cycles.
    buckets: [u64; 32],
    n: u64,
}

impl Histogram {
    /// Adds a latency sample.
    pub fn add(&mut self, cycles: u64) {
        let idx = (64 - cycles.max(1).leading_zeros() - 1).min(31) as usize;
        self.buckets[idx] += 1;
        self.n += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds another histogram into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.n += other.n;
    }

    /// Serializes the histogram (checkpointing).
    pub fn save_state(&self, w: &mut Writer) {
        w.u64_slice(&self.buckets);
        w.u64(self.n);
    }

    /// Restores the histogram (checkpointing).
    pub fn load_state(&mut self, r: &mut Reader) -> Result<(), CkptError> {
        r.u64_slice_into(&mut self.buckets)?;
        self.n = r.u64()?;
        Ok(())
    }

    /// Estimates percentile `p` (0.0–1.0) as the upper edge of the bucket
    /// containing it (conservative; resolution is a factor of two).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.n as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1 << (i + 1);
            }
        }
        1 << 31
    }
}

/// All counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Simulation events dispatched by the engine's calendar (a host-side
    /// throughput denominator: events per wall-second, not a GPU metric).
    pub events_processed: u64,
    /// Empty calendar cycles the engine jumped over instead of scanning
    /// (host-side accounting; 0 when `fast_forward` is disabled). These
    /// cycles still count in `cycles` — skipping is invisible to every
    /// simulated metric.
    pub idle_cycles_skipped: u64,
    /// Warp instructions issued (loads + compute ops).
    pub instructions: u64,
    /// Warp load instructions issued.
    pub loads: u64,
    /// Warp store instructions issued.
    pub stores: u64,
    /// Dirty sectors written back from the L2 to DRAM.
    pub writebacks: u64,
    /// Coalesced sector requests issued to the memory system.
    pub sector_requests: u64,
    /// Warp memory instructions fully resolved on the inline hit fast
    /// path (every sector hit the L1 TLB and L1 cache with free ports, so
    /// no calendar events were scheduled).
    pub fast_path_hits: u64,
    /// Sector requests resolved on the inline hit fast path.
    pub fast_path_sectors: u64,
    /// Requests still incomplete when the run finished (always 0 in a
    /// healthy run; counted instead of panicking so checked-mode release
    /// builds surface lost-event bugs too).
    pub lost_requests: u64,
    /// Cycles during which an SM had warps but none ready (summed over SMs).
    pub stall_cycles: u64,

    /// L1 TLB lookups / hits.
    pub l1_tlb_lookups: u64,
    /// L1 TLB hits.
    pub l1_tlb_hits: u64,
    /// L2 TLB lookups.
    pub l2_tlb_lookups: u64,
    /// L2 TLB hits.
    pub l2_tlb_hits: u64,
    /// Completed page walks.
    pub page_walks: u64,
    /// Page walks aborted by EAF before completion.
    pub walks_aborted: u64,
    /// Walk requests satisfied by merging into a pending walk.
    pub walk_merges: u64,
    /// Memory accesses issued by page walkers.
    pub walk_memory_accesses: u64,
    /// TLB fills propagated to other SMs by EAF.
    pub eaf_cross_sm_fills: u64,
    /// TLB entries installed by EAF.
    pub eaf_fills: u64,
    /// Requests that found the per-SM L1 TLB MSHR file full.
    pub l1_tlb_mshr_full: u64,
    /// Requests that found the shared L2 TLB MSHR file full.
    pub l2_tlb_mshr_full: u64,
    /// Sector fetches that found a cache MSHR file full.
    pub cache_mshr_full: u64,
    /// Walk requests that found the page-walk buffer full.
    pub pw_buffer_full: u64,
    /// MSHR/PW-buffer entries released early by EAF.
    pub eaf_releases: u64,

    /// L1 data-cache sector lookups.
    pub l1d_lookups: u64,
    /// L1 data-cache sector hits.
    pub l1d_hits: u64,
    /// L2 cache sector lookups.
    pub l2_lookups: u64,
    /// L2 cache sector hits.
    pub l2_hits: u64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (activations).
    pub dram_row_misses: u64,

    /// Page faults taken (first-touch or refault after eviction).
    pub page_faults: u64,
    /// Pages migrated to GPU memory.
    pub pages_migrated: u64,
    /// Accesses served remotely from host memory (cold pages below the
    /// access-counter migration threshold).
    pub remote_accesses: u64,
    /// 2MB chunks evicted under oversubscription.
    pub chunks_evicted: u64,
    /// TLB shootdowns performed.
    pub tlb_shootdowns: u64,
    /// Chunks promoted to 2MB pages.
    pub promotions: u64,
    /// Promoted chunks splintered back to 4KB pages.
    pub splinters: u64,
    /// Extra page-table references charged for merging (SnakeByte).
    pub merge_memory_accesses: u64,

    /// Speculations attempted.
    pub speculations: u64,
    /// Speculations whose predicted PPN matched the real translation.
    pub spec_correct: u64,
    /// Speculations on pages not resident in GPU memory (false speculation).
    pub spec_false: u64,
    /// Speculative fetches that reached DRAM.
    pub spec_fetches: u64,
    /// Sectors fetched speculatively that were compressed (had page info).
    pub spec_compressed: u64,
    /// Mis-speculations detected by CAVA VPN mismatch.
    pub cava_mismatches: u64,
    /// Speculations confirmed early by the rapid validation-on-use check
    /// (Revelator-class policies), releasing walk resources before the
    /// background translation completes.
    pub rapid_validations: u64,
    /// Policy-private table entries installed (MOD/seed/dead-region
    /// tables), from [`TranslationPolicy::policy_counters`].
    ///
    /// [`TranslationPolicy::policy_counters`]: crate::hooks::TranslationPolicy::policy_counters
    pub policy_installs: u64,
    /// Policy-private table entries displaced by capacity or conflict.
    pub policy_evictions: u64,
    /// Policy-private table lookups that fed a prediction or hint.
    pub policy_hits: u64,
    /// Counts per speculation outcome class (correct speculations only).
    pub outcomes: OutcomeCounts,

    /// TLB-hit coverage histogram (counts per bucket).
    pub coverage_hits: [u64; 5],

    /// Mean end-to-end latency of warp load instructions.
    pub load_latency: Mean,
    /// Mean latency of sector requests (issue to data-usable).
    pub sector_latency: Mean,
    /// Log2 histogram of sector-request latencies (for percentiles).
    pub sector_latency_hist: Histogram,
    /// Mean page-walk latency.
    pub walk_latency: Mean,

    /// Sectors considered at migration.
    pub migrate_sectors: u64,
    /// Sectors that compressed below the 22B budget at migration.
    pub migrate_compressed: u64,

    // --- Probe-fed observability fields (DESIGN.md §10) -------------
    // Filled only when the `probes` cargo feature is on; always present
    // so consumers need no cfg, and deliberately EXCLUDED from
    // `digest()` so the feature cannot change the determinism digest.
    /// Per-phase latency attribution over all completed sector requests
    /// (`probes` feature; zeroes otherwise). The conservation invariant
    /// `latency_breakdown.total_cycles() == sector_latency.sum()` is
    /// test- and fig20-enforced.
    // lint:digest-exempt(probe-fed attribution, zero unless the probes feature is on; excluded so the feature cannot shift the determinism digest)
    pub latency_breakdown: LatencyBreakdown,
    /// Log2 histogram of completed page-walk latencies, enqueue to
    /// done (`probes` feature; empty otherwise).
    // lint:digest-exempt(probe-fed histogram, empty unless the probes feature is on; excluded so the feature cannot shift the determinism digest)
    pub walk_latency_hist: Histogram,
    /// Log2 histogram of rapid-validation windows: speculative fetch
    /// registration to CAVA verdict (`probes` feature; empty otherwise).
    // lint:digest-exempt(probe-fed histogram, empty unless the probes feature is on; excluded so the feature cannot shift the determinism digest)
    pub validation_latency_hist: Histogram,
    /// Log2 histogram of queueing waits: TLB/cache port-grant delays
    /// plus walk-buffer residency before a walker picks the walk up
    /// (`probes` feature; empty otherwise).
    // lint:digest-exempt(probe-fed histogram, empty unless the probes feature is on; excluded so the feature cannot shift the determinism digest)
    pub queue_latency_hist: Histogram,
    /// Log2 histogram of DRAM service times, arrival to data return
    /// (`probes` feature; empty otherwise).
    // lint:digest-exempt(probe-fed histogram, empty unless the probes feature is on; excluded so the feature cannot shift the determinism digest)
    pub dram_service_hist: Histogram,

    // --- Sharded-calendar structure counters (DESIGN.md §11) --------
    // Describe how the host advanced the calendar, not what the
    // simulated GPU did, so — like the probe-fed fields above — they
    // are EXCLUDED from `digest()`: the shards-1/2/4/8 parity gate
    // pins the digest identical across shard counts, and these
    // counters necessarily differ. All zero (and `shard_events`
    // empty) on the single-calendar path.
    /// Horizon barriers taken by the sharded calendar.
    // lint:digest-exempt(host calendar-structure counter; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub horizon_barriers: u64,
    /// Times a non-empty shard domain was held at a horizon barrier.
    // lint:digest-exempt(host calendar-structure counter; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub horizon_stalls: u64,
    /// Cross-domain events staged through the exchange rings.
    // lint:digest-exempt(host calendar-structure counter; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub exchange_enqueued: u64,
    /// Exchange-ring events delivered at horizon barriers.
    // lint:digest-exempt(host calendar-structure counter; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub exchange_dequeued: u64,
    /// Cross-domain events under the horizon delivered directly
    /// (sub-lookahead edges bypass the rings).
    // lint:digest-exempt(host calendar-structure counter; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub exchange_bypass: u64,
    /// Events dispatched per calendar domain (shard domains in index
    /// order, then the shared domain last).
    // lint:digest-exempt(host per-domain dispatch tally; differs across shard counts by construction while the digest is pinned shard-invariant)
    pub shard_events: Vec<u64>,
}

/// Per-outcome counters for Fig 16.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutcomeCounts {
    /// Rapid-validation successes.
    pub fast_translation: u64,
    /// Late-translation L1 hits on prefetched sectors.
    pub l1d_hit: u64,
    /// MSHR merges with in-flight speculative fetches.
    pub l1d_merge: u64,
    /// Speculative sectors evicted before use.
    pub l1d_miss: u64,
}

impl OutcomeCounts {
    /// Records one outcome.
    pub fn record(&mut self, o: SpecOutcome) {
        match o {
            SpecOutcome::FastTranslation => self.fast_translation += 1,
            SpecOutcome::L1dHit => self.l1d_hit += 1,
            SpecOutcome::L1dMerge => self.l1d_merge += 1,
            SpecOutcome::L1dMiss => self.l1d_miss += 1,
        }
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> u64 {
        self.fast_translation + self.l1d_hit + self.l1d_merge + self.l1d_miss
    }

    /// Fraction of a given count over the total (0 if empty).
    pub fn fraction(&self, count: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            count as f64 / t as f64
        }
    }
}

impl Stats {
    /// Speculation accuracy: correct / attempted (paper Fig 18).
    pub fn spec_accuracy(&self) -> f64 {
        if self.speculations == 0 {
            0.0
        } else {
            self.spec_correct as f64 / self.speculations as f64
        }
    }

    /// Speculation coverage: correct speculations over all L1 TLB misses
    /// (paper Fig 18).
    pub fn spec_coverage(&self) -> f64 {
        let misses = self.l1_tlb_lookups - self.l1_tlb_hits;
        if misses == 0 {
            0.0
        } else {
            self.spec_correct as f64 / misses as f64
        }
    }

    /// L1 TLB miss rate.
    pub fn l1_tlb_miss_rate(&self) -> f64 {
        if self.l1_tlb_lookups == 0 {
            0.0
        } else {
            1.0 - self.l1_tlb_hits as f64 / self.l1_tlb_lookups as f64
        }
    }

    /// L2 TLB misses per million warp instructions (workload classing,
    /// paper Table III).
    pub fn l2_tlb_mpmi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.l2_tlb_lookups - self.l2_tlb_hits) as f64 * 1.0e6 / self.instructions as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Fraction of migrated sectors that fit the 22-byte budget.
    pub fn migrate_compress_fraction(&self) -> f64 {
        if self.migrate_sectors == 0 {
            0.0
        } else {
            self.migrate_compressed as f64 / self.migrate_sectors as f64
        }
    }

    /// Fraction of sector requests resolved on the inline hit fast path.
    pub fn fast_path_ratio(&self) -> f64 {
        if self.sector_requests == 0 {
            0.0
        } else {
            self.fast_path_sectors as f64 / self.sector_requests as f64
        }
    }

    /// FNV-1a determinism digest over every counter in declaration order.
    ///
    /// Two runs of the same cell must produce the same digest regardless of
    /// runner thread count or whether the `invariants` feature is on —
    /// checked mode and the parallel runner both gate on this. Floats are
    /// folded as raw bit patterns, so any numeric drift (not just a changed
    /// rounding) flips the digest.
    ///
    /// The probe-fed observability fields (`latency_breakdown` and the
    /// walk/validation/queue/DRAM histograms) are deliberately NOT
    /// folded: they are empty without the `probes` feature, and the
    /// probes-on/off differential test pins the digest identical across
    /// the feature — folding them would make that impossible.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        let mut w = |v: u64| h.write_u64(v);
        w(self.cycles);
        w(self.events_processed);
        w(self.idle_cycles_skipped);
        w(self.instructions);
        w(self.loads);
        w(self.stores);
        w(self.writebacks);
        w(self.sector_requests);
        w(self.fast_path_hits);
        w(self.fast_path_sectors);
        w(self.lost_requests);
        w(self.stall_cycles);
        w(self.l1_tlb_lookups);
        w(self.l1_tlb_hits);
        w(self.l2_tlb_lookups);
        w(self.l2_tlb_hits);
        w(self.page_walks);
        w(self.walks_aborted);
        w(self.walk_merges);
        w(self.walk_memory_accesses);
        w(self.eaf_cross_sm_fills);
        w(self.eaf_fills);
        w(self.l1_tlb_mshr_full);
        w(self.l2_tlb_mshr_full);
        w(self.cache_mshr_full);
        w(self.pw_buffer_full);
        w(self.eaf_releases);
        w(self.l1d_lookups);
        w(self.l1d_hits);
        w(self.l2_lookups);
        w(self.l2_hits);
        w(self.dram_read_bytes);
        w(self.dram_write_bytes);
        w(self.dram_row_hits);
        w(self.dram_row_misses);
        w(self.page_faults);
        w(self.pages_migrated);
        w(self.remote_accesses);
        w(self.chunks_evicted);
        w(self.tlb_shootdowns);
        w(self.promotions);
        w(self.splinters);
        w(self.merge_memory_accesses);
        w(self.speculations);
        w(self.spec_correct);
        w(self.spec_false);
        w(self.spec_fetches);
        w(self.spec_compressed);
        w(self.cava_mismatches);
        w(self.rapid_validations);
        w(self.policy_installs);
        w(self.policy_evictions);
        w(self.policy_hits);
        w(self.outcomes.fast_translation);
        w(self.outcomes.l1d_hit);
        w(self.outcomes.l1d_merge);
        w(self.outcomes.l1d_miss);
        for c in self.coverage_hits {
            w(c);
        }
        for m in [&self.load_latency, &self.sector_latency, &self.walk_latency] {
            w(m.sum);
            w(m.n);
        }
        for b in self.sector_latency_hist.buckets {
            w(b);
        }
        w(self.sector_latency_hist.n);
        w(self.migrate_sectors);
        w(self.migrate_compressed);
        h.finish()
    }

    /// Serializes every field — including the digest-excluded probe-fed
    /// and shard-structure ones — in declaration order. Engine
    /// checkpoints and the bench result cache both ride on this. The
    /// exhaustive destructuring is deliberate: adding a `Stats` field
    /// without serializing it becomes a compile error here.
    pub fn save_state(&self, w: &mut Writer) {
        let Stats {
            cycles,
            events_processed,
            idle_cycles_skipped,
            instructions,
            loads,
            stores,
            writebacks,
            sector_requests,
            fast_path_hits,
            fast_path_sectors,
            lost_requests,
            stall_cycles,
            l1_tlb_lookups,
            l1_tlb_hits,
            l2_tlb_lookups,
            l2_tlb_hits,
            page_walks,
            walks_aborted,
            walk_merges,
            walk_memory_accesses,
            eaf_cross_sm_fills,
            eaf_fills,
            l1_tlb_mshr_full,
            l2_tlb_mshr_full,
            cache_mshr_full,
            pw_buffer_full,
            eaf_releases,
            l1d_lookups,
            l1d_hits,
            l2_lookups,
            l2_hits,
            dram_read_bytes,
            dram_write_bytes,
            dram_row_hits,
            dram_row_misses,
            page_faults,
            pages_migrated,
            remote_accesses,
            chunks_evicted,
            tlb_shootdowns,
            promotions,
            splinters,
            merge_memory_accesses,
            speculations,
            spec_correct,
            spec_false,
            spec_fetches,
            spec_compressed,
            cava_mismatches,
            rapid_validations,
            policy_installs,
            policy_evictions,
            policy_hits,
            outcomes,
            coverage_hits,
            load_latency,
            sector_latency,
            sector_latency_hist,
            walk_latency,
            migrate_sectors,
            migrate_compressed,
            latency_breakdown,
            walk_latency_hist,
            validation_latency_hist,
            queue_latency_hist,
            dram_service_hist,
            horizon_barriers,
            horizon_stalls,
            exchange_enqueued,
            exchange_dequeued,
            exchange_bypass,
            shard_events,
        } = self;
        for v in [
            cycles,
            events_processed,
            idle_cycles_skipped,
            instructions,
            loads,
            stores,
            writebacks,
            sector_requests,
            fast_path_hits,
            fast_path_sectors,
            lost_requests,
            stall_cycles,
            l1_tlb_lookups,
            l1_tlb_hits,
            l2_tlb_lookups,
            l2_tlb_hits,
            page_walks,
            walks_aborted,
            walk_merges,
            walk_memory_accesses,
            eaf_cross_sm_fills,
            eaf_fills,
            l1_tlb_mshr_full,
            l2_tlb_mshr_full,
            cache_mshr_full,
            pw_buffer_full,
            eaf_releases,
            l1d_lookups,
            l1d_hits,
            l2_lookups,
            l2_hits,
            dram_read_bytes,
            dram_write_bytes,
            dram_row_hits,
            dram_row_misses,
            page_faults,
            pages_migrated,
            remote_accesses,
            chunks_evicted,
            tlb_shootdowns,
            promotions,
            splinters,
            merge_memory_accesses,
            speculations,
            spec_correct,
            spec_false,
            spec_fetches,
            spec_compressed,
            cava_mismatches,
            rapid_validations,
            policy_installs,
            policy_evictions,
            policy_hits,
        ] {
            w.u64(*v);
        }
        w.u64(outcomes.fast_translation);
        w.u64(outcomes.l1d_hit);
        w.u64(outcomes.l1d_merge);
        w.u64(outcomes.l1d_miss);
        w.u64_slice(coverage_hits);
        load_latency.save_state(w);
        sector_latency.save_state(w);
        sector_latency_hist.save_state(w);
        walk_latency.save_state(w);
        w.u64(*migrate_sectors);
        w.u64(*migrate_compressed);
        w.u64_slice(&latency_breakdown.cycles);
        w.u64(latency_breakdown.sectors);
        walk_latency_hist.save_state(w);
        validation_latency_hist.save_state(w);
        queue_latency_hist.save_state(w);
        dram_service_hist.save_state(w);
        w.u64(*horizon_barriers);
        w.u64(*horizon_stalls);
        w.u64(*exchange_enqueued);
        w.u64(*exchange_dequeued);
        w.u64(*exchange_bypass);
        w.u64_slice(shard_events);
    }

    /// Folds another `Stats` into this one — the parallel shard engine
    /// keeps one `Stats` per lane and merges them in fixed lane order at
    /// finish. Counters add; means and histograms fold their integer
    /// accumulators (exact and order-insensitive); `cycles` takes the
    /// max (each lane records the last cycle it dispatched);
    /// `shard_events` appends (each lane contributes its own dispatch
    /// tally). The exhaustive destructuring makes adding a `Stats` field
    /// without deciding its merge role a compile error.
    pub fn merge(&mut self, other: &Stats) {
        let Stats {
            cycles,
            events_processed,
            idle_cycles_skipped,
            instructions,
            loads,
            stores,
            writebacks,
            sector_requests,
            fast_path_hits,
            fast_path_sectors,
            lost_requests,
            stall_cycles,
            l1_tlb_lookups,
            l1_tlb_hits,
            l2_tlb_lookups,
            l2_tlb_hits,
            page_walks,
            walks_aborted,
            walk_merges,
            walk_memory_accesses,
            eaf_cross_sm_fills,
            eaf_fills,
            l1_tlb_mshr_full,
            l2_tlb_mshr_full,
            cache_mshr_full,
            pw_buffer_full,
            eaf_releases,
            l1d_lookups,
            l1d_hits,
            l2_lookups,
            l2_hits,
            dram_read_bytes,
            dram_write_bytes,
            dram_row_hits,
            dram_row_misses,
            page_faults,
            pages_migrated,
            remote_accesses,
            chunks_evicted,
            tlb_shootdowns,
            promotions,
            splinters,
            merge_memory_accesses,
            speculations,
            spec_correct,
            spec_false,
            spec_fetches,
            spec_compressed,
            cava_mismatches,
            rapid_validations,
            policy_installs,
            policy_evictions,
            policy_hits,
            outcomes,
            coverage_hits,
            load_latency,
            sector_latency,
            sector_latency_hist,
            walk_latency,
            migrate_sectors,
            migrate_compressed,
            latency_breakdown,
            walk_latency_hist,
            validation_latency_hist,
            queue_latency_hist,
            dram_service_hist,
            horizon_barriers,
            horizon_stalls,
            exchange_enqueued,
            exchange_dequeued,
            exchange_bypass,
            shard_events,
        } = other;
        self.cycles = self.cycles.max(*cycles);
        for (dst, src) in [
            (&mut self.events_processed, events_processed),
            (&mut self.idle_cycles_skipped, idle_cycles_skipped),
            (&mut self.instructions, instructions),
            (&mut self.loads, loads),
            (&mut self.stores, stores),
            (&mut self.writebacks, writebacks),
            (&mut self.sector_requests, sector_requests),
            (&mut self.fast_path_hits, fast_path_hits),
            (&mut self.fast_path_sectors, fast_path_sectors),
            (&mut self.lost_requests, lost_requests),
            (&mut self.stall_cycles, stall_cycles),
            (&mut self.l1_tlb_lookups, l1_tlb_lookups),
            (&mut self.l1_tlb_hits, l1_tlb_hits),
            (&mut self.l2_tlb_lookups, l2_tlb_lookups),
            (&mut self.l2_tlb_hits, l2_tlb_hits),
            (&mut self.page_walks, page_walks),
            (&mut self.walks_aborted, walks_aborted),
            (&mut self.walk_merges, walk_merges),
            (&mut self.walk_memory_accesses, walk_memory_accesses),
            (&mut self.eaf_cross_sm_fills, eaf_cross_sm_fills),
            (&mut self.eaf_fills, eaf_fills),
            (&mut self.l1_tlb_mshr_full, l1_tlb_mshr_full),
            (&mut self.l2_tlb_mshr_full, l2_tlb_mshr_full),
            (&mut self.cache_mshr_full, cache_mshr_full),
            (&mut self.pw_buffer_full, pw_buffer_full),
            (&mut self.eaf_releases, eaf_releases),
            (&mut self.l1d_lookups, l1d_lookups),
            (&mut self.l1d_hits, l1d_hits),
            (&mut self.l2_lookups, l2_lookups),
            (&mut self.l2_hits, l2_hits),
            (&mut self.dram_read_bytes, dram_read_bytes),
            (&mut self.dram_write_bytes, dram_write_bytes),
            (&mut self.dram_row_hits, dram_row_hits),
            (&mut self.dram_row_misses, dram_row_misses),
            (&mut self.page_faults, page_faults),
            (&mut self.pages_migrated, pages_migrated),
            (&mut self.remote_accesses, remote_accesses),
            (&mut self.chunks_evicted, chunks_evicted),
            (&mut self.tlb_shootdowns, tlb_shootdowns),
            (&mut self.promotions, promotions),
            (&mut self.splinters, splinters),
            (&mut self.merge_memory_accesses, merge_memory_accesses),
            (&mut self.speculations, speculations),
            (&mut self.spec_correct, spec_correct),
            (&mut self.spec_false, spec_false),
            (&mut self.spec_fetches, spec_fetches),
            (&mut self.spec_compressed, spec_compressed),
            (&mut self.cava_mismatches, cava_mismatches),
            (&mut self.rapid_validations, rapid_validations),
            (&mut self.policy_installs, policy_installs),
            (&mut self.policy_evictions, policy_evictions),
            (&mut self.policy_hits, policy_hits),
            (&mut self.horizon_barriers, horizon_barriers),
            (&mut self.horizon_stalls, horizon_stalls),
            (&mut self.exchange_enqueued, exchange_enqueued),
            (&mut self.exchange_dequeued, exchange_dequeued),
            (&mut self.exchange_bypass, exchange_bypass),
        ] {
            *dst += *src;
        }
        self.outcomes.fast_translation += outcomes.fast_translation;
        self.outcomes.l1d_hit += outcomes.l1d_hit;
        self.outcomes.l1d_merge += outcomes.l1d_merge;
        self.outcomes.l1d_miss += outcomes.l1d_miss;
        for (dst, src) in self.coverage_hits.iter_mut().zip(coverage_hits.iter()) {
            *dst += *src;
        }
        self.load_latency.merge(load_latency);
        self.sector_latency.merge(sector_latency);
        self.sector_latency_hist.merge(sector_latency_hist);
        self.walk_latency.merge(walk_latency);
        self.migrate_sectors += migrate_sectors;
        self.migrate_compressed += migrate_compressed;
        for (dst, src) in
            self.latency_breakdown.cycles.iter_mut().zip(latency_breakdown.cycles.iter())
        {
            *dst += *src;
        }
        self.latency_breakdown.sectors += latency_breakdown.sectors;
        self.walk_latency_hist.merge(walk_latency_hist);
        self.validation_latency_hist.merge(validation_latency_hist);
        self.queue_latency_hist.merge(queue_latency_hist);
        self.dram_service_hist.merge(dram_service_hist);
        self.shard_events.extend_from_slice(shard_events);
    }

    /// Restores every field written by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, r: &mut Reader) -> Result<(), CkptError> {
        for v in [
            &mut self.cycles,
            &mut self.events_processed,
            &mut self.idle_cycles_skipped,
            &mut self.instructions,
            &mut self.loads,
            &mut self.stores,
            &mut self.writebacks,
            &mut self.sector_requests,
            &mut self.fast_path_hits,
            &mut self.fast_path_sectors,
            &mut self.lost_requests,
            &mut self.stall_cycles,
            &mut self.l1_tlb_lookups,
            &mut self.l1_tlb_hits,
            &mut self.l2_tlb_lookups,
            &mut self.l2_tlb_hits,
            &mut self.page_walks,
            &mut self.walks_aborted,
            &mut self.walk_merges,
            &mut self.walk_memory_accesses,
            &mut self.eaf_cross_sm_fills,
            &mut self.eaf_fills,
            &mut self.l1_tlb_mshr_full,
            &mut self.l2_tlb_mshr_full,
            &mut self.cache_mshr_full,
            &mut self.pw_buffer_full,
            &mut self.eaf_releases,
            &mut self.l1d_lookups,
            &mut self.l1d_hits,
            &mut self.l2_lookups,
            &mut self.l2_hits,
            &mut self.dram_read_bytes,
            &mut self.dram_write_bytes,
            &mut self.dram_row_hits,
            &mut self.dram_row_misses,
            &mut self.page_faults,
            &mut self.pages_migrated,
            &mut self.remote_accesses,
            &mut self.chunks_evicted,
            &mut self.tlb_shootdowns,
            &mut self.promotions,
            &mut self.splinters,
            &mut self.merge_memory_accesses,
            &mut self.speculations,
            &mut self.spec_correct,
            &mut self.spec_false,
            &mut self.spec_fetches,
            &mut self.spec_compressed,
            &mut self.cava_mismatches,
            &mut self.rapid_validations,
            &mut self.policy_installs,
            &mut self.policy_evictions,
            &mut self.policy_hits,
        ] {
            *v = r.u64()?;
        }
        self.outcomes.fast_translation = r.u64()?;
        self.outcomes.l1d_hit = r.u64()?;
        self.outcomes.l1d_merge = r.u64()?;
        self.outcomes.l1d_miss = r.u64()?;
        r.u64_slice_into(&mut self.coverage_hits)?;
        self.load_latency.load_state(r)?;
        self.sector_latency.load_state(r)?;
        self.sector_latency_hist.load_state(r)?;
        self.walk_latency.load_state(r)?;
        self.migrate_sectors = r.u64()?;
        self.migrate_compressed = r.u64()?;
        r.u64_slice_into(&mut self.latency_breakdown.cycles)?;
        self.latency_breakdown.sectors = r.u64()?;
        self.walk_latency_hist.load_state(r)?;
        self.validation_latency_hist.load_state(r)?;
        self.queue_latency_hist.load_state(r)?;
        self.dram_service_hist.load_state(r)?;
        self.horizon_barriers = r.u64()?;
        self.horizon_stalls = r.u64()?;
        self.exchange_enqueued = r.u64()?;
        self.exchange_dequeued = r.u64()?;
        self.exchange_bypass = r.u64()?;
        self.shard_events = r.u64_vec()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.add(100); // bucket [64,128) -> upper edge 128
        }
        for _ in 0..10 {
            h.add(10_000); // bucket [8192,16384) -> upper edge 16384
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 128);
        assert_eq!(h.percentile(0.99), 16384);
        assert_eq!(Histogram::default().percentile(0.5), 0);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::default();
        h.add(0); // clamped to 1
        h.add(u64::MAX); // clamped to the top bucket
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) >= 1 << 31);
    }

    #[test]
    fn coverage_bucketing() {
        assert_eq!(CoverageBucket::of_pages(1), CoverageBucket::Pages4K);
        assert_eq!(CoverageBucket::of_pages(2), CoverageBucket::To32K);
        assert_eq!(CoverageBucket::of_pages(8), CoverageBucket::To32K);
        assert_eq!(CoverageBucket::of_pages(16), CoverageBucket::To256K);
        assert_eq!(CoverageBucket::of_pages(128), CoverageBucket::To1M);
        assert_eq!(CoverageBucket::of_pages(512), CoverageBucket::From2M);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = Mean::default();
        assert_eq!(m.value(), 0.0);
        m.add(10);
        m.add(20);
        assert_eq!(m.value(), 15.0);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn outcome_fractions() {
        let mut o = OutcomeCounts::default();
        o.record(SpecOutcome::FastTranslation);
        o.record(SpecOutcome::FastTranslation);
        o.record(SpecOutcome::L1dHit);
        o.record(SpecOutcome::L1dMiss);
        assert_eq!(o.total(), 4);
        assert_eq!(o.fraction(o.fast_translation), 0.5);
    }

    #[test]
    fn accuracy_and_coverage() {
        let s = Stats {
            speculations: 10,
            spec_correct: 9,
            l1_tlb_lookups: 100,
            l1_tlb_hits: 88,
            ..Stats::default()
        };
        assert!((s.spec_accuracy() - 0.9).abs() < 1e-9);
        assert!((s.spec_coverage() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn digest_covers_counters_and_float_state() {
        assert_eq!(Stats::default().digest(), Stats::default().digest());
        let bumped = Stats { loads: 1, ..Stats::default() };
        assert_ne!(Stats::default().digest(), bumped.digest());
        let mut with_mean = Stats::default();
        with_mean.load_latency.add(1);
        assert_ne!(Stats::default().digest(), with_mean.digest());
        let mut with_hist = Stats::default();
        with_hist.sector_latency_hist.add(100);
        assert_ne!(Stats::default().digest(), with_hist.digest());
    }

    #[test]
    fn digest_excludes_probe_fed_fields() {
        // The probes-on/off differential relies on these fields never
        // reaching the digest; pin that here so a refactor folding
        // "every field" back in fails fast.
        let base = Stats::default().digest();
        let mut s = Stats::default();
        s.latency_breakdown.add(crate::probe::Phase::Walk, 123);
        s.latency_breakdown.sectors = 1;
        s.walk_latency_hist.add(100);
        s.validation_latency_hist.add(7);
        s.queue_latency_hist.add(3);
        s.dram_service_hist.add(250);
        assert_eq!(base, s.digest(), "probe-fed fields leaked into the digest");
    }

    #[test]
    fn digest_excludes_shard_structure_counters() {
        // The shards-1/2/4/8 parity gate pins digests identical across
        // shard counts; the calendar-structure counters necessarily
        // differ, so they must never reach the digest.
        let base = Stats::default().digest();
        let s = Stats {
            horizon_barriers: 12,
            horizon_stalls: 3,
            exchange_enqueued: 40,
            exchange_dequeued: 38,
            exchange_bypass: 7,
            shard_events: vec![100, 200, 50],
            ..Stats::default()
        };
        assert_eq!(base, s.digest(), "shard-structure counters leaked into the digest");
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.add(10);
        b.add(10);
        b.add(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(0.5), 16);
        assert_eq!(a.percentile(1.0), 16384);
    }

    #[test]
    fn save_load_round_trips_every_field() {
        let mut s = Stats { loads: 3, cycles: 99, spec_correct: 4, ..Stats::default() };
        s.load_latency.add(10);
        s.sector_latency_hist.add(100);
        s.coverage_hits[2] = 7;
        s.outcomes.record(SpecOutcome::L1dMerge);
        s.latency_breakdown.add(crate::probe::Phase::Walk, 55);
        s.walk_latency_hist.add(200);
        s.shard_events = vec![5, 6];
        s.horizon_barriers = 2;
        let mut w = Writer::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Stats::default();
        restored.load_state(&mut Reader::new(&bytes)).expect("stats round-trip decodes");
        assert_eq!(s.digest(), restored.digest());
        assert_eq!(format!("{s:?}"), format!("{restored:?}"), "full-field equality");
        // A flipped byte must change the digest or fail the decode —
        // never silently restore.
        let mut tampered = bytes.clone();
        tampered[0] ^= 0xFF;
        let mut t = Stats::default();
        if t.load_state(&mut Reader::new(&tampered)).is_ok() {
            assert_ne!(s.digest(), t.digest());
        }
    }

    #[test]
    fn merge_folds_lane_stats_exactly() {
        let mut a = Stats { cycles: 50, loads: 3, l1_tlb_lookups: 9, ..Stats::default() };
        a.load_latency.add(10);
        a.sector_latency_hist.add(100);
        a.coverage_hits[1] = 2;
        a.shard_events = vec![4];
        let mut b = Stats { cycles: 80, loads: 5, spec_correct: 2, ..Stats::default() };
        b.load_latency.add(30);
        b.outcomes.record(SpecOutcome::L1dHit);
        b.shard_events = vec![9];
        a.merge(&b);
        assert_eq!(a.cycles, 80, "cycles take the max");
        assert_eq!(a.loads, 8);
        assert_eq!(a.spec_correct, 2);
        assert_eq!(a.load_latency.count(), 2);
        assert_eq!(a.load_latency.sum(), 40);
        assert_eq!(a.outcomes.l1d_hit, 1);
        assert_eq!(a.shard_events, vec![4, 9]);
    }

    #[test]
    fn mpmi() {
        let s = Stats {
            instructions: 1_000_000,
            l2_tlb_lookups: 500,
            l2_tlb_hits: 440,
            ..Stats::default()
        };
        assert!((s.l2_tlb_mpmi() - 60.0).abs() < 1e-9);
    }
}
