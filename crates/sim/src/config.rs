//! Simulated system configuration (paper Table II, RTX3070-like).

/// A simulation timestamp in GPU core cycles (1132 MHz).
pub type Cycle = u64;

/// L1 data-cache arrangement relative to address translation (paper
/// §III-D "Cache Designs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheArrangement {
    /// Virtually indexed, physically tagged (the baseline): the L1 lookup
    /// proceeds in parallel with the L1 TLB, so a TLB hit only pays the
    /// non-overlapped part of the cache latency.
    Vipt,
    /// Physically indexed, physically tagged: the data lookup starts only
    /// after translation completes.
    Pipt,
}

/// Base page size selector (paper §IV-C1 evaluates 4KB and 64KB bases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasePage {
    /// 4KB base pages (default UVM fault granularity).
    Size4K,
    /// 64KB base pages (prefetch-enlarged fault granularity).
    Size64K,
}

impl BasePage {
    /// Number of 4KB pages covered by one base page.
    pub fn pages(self) -> u64 {
        match self {
            BasePage::Size4K => 1,
            BasePage::Size64K => 16,
        }
    }
}

/// TLB hierarchy sizing and latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct TlbConfig {
    /// Entries for base-page translations.
    pub base_entries: usize,
    /// Entries for 2MB large-page translations.
    pub large_entries: usize,
    /// Access latency in cycles.
    pub latency: Cycle,
    /// Associativity (0 = fully associative).
    pub assoc: usize,
    /// Lookups that may start per cycle.
    pub ports: u32,
    /// Outstanding misses.
    pub mshr_entries: usize,
}

/// Cache sizing and latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Access latency in cycles.
    pub latency: Cycle,
    /// Set associativity.
    pub assoc: usize,
    /// Outstanding line misses.
    pub mshr_entries: usize,
    /// Accesses that may start per cycle.
    pub ports: u32,
}

impl CacheConfig {
    /// Number of 128B lines.
    pub fn lines(&self) -> u64 {
        self.bytes / crate::addr::LINE_BYTES
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.lines() / self.assoc as u64).max(1)
    }
}

/// GDDR6 DRAM timing (converted to core cycles at 1132 MHz).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// DRAM row (page) size in bytes.
    pub row_bytes: u64,
    /// Row activate latency (tRCD) in core cycles.
    pub t_rcd: Cycle,
    /// Column access latency (tCL) in core cycles.
    pub t_cl: Cycle,
    /// Precharge latency (tRP) in core cycles.
    pub t_rp: Cycle,
    /// Write latency (tWL) in core cycles.
    pub t_wl: Cycle,
    /// Read-to-write turnaround (tRTW) in core cycles.
    pub t_rtw: Cycle,
    /// Data-bus occupancy per 32B sector burst, in core cycles.
    pub burst: Cycle,
}

/// Page-walk system parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerConfig {
    /// Concurrent page-table walkers.
    pub walkers: usize,
    /// Page-walk buffer entries.
    pub buffer_entries: usize,
    /// Page-walk cache entries.
    pub pw_cache_entries: usize,
    /// Page-walk cache ports.
    pub pw_cache_ports: u32,
}

/// UVM memory-management behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct UvmConfig {
    /// GPU memory capacity in bytes. `u64::MAX` disables oversubscription.
    pub gpu_memory_bytes: u64,
    /// Base page (fault granularity) size.
    pub base_page: BasePage,
    /// Enable the tree-based neighborhood (TBN-style) prefetcher: faults
    /// migrate the surrounding 64KB block.
    pub tbn_prefetch: bool,
    /// Enable page promotion to 2MB when a chunk is fully resident and
    /// physically contiguous (Mosaic-style; adopted by all non-baseline
    /// configurations in the paper's Fig 15).
    pub promotion: bool,
    /// Probability that a 2MB chunk reservation fails and the chunk's pages
    /// are scattered to arbitrary free frames (physical fragmentation).
    pub fragmentation: f64,
    /// Probability that consecutive virtual chunks are placed in
    /// consecutive physical chunks (cross-chunk contiguity).
    pub cross_chunk_contiguity: f64,
    /// Compress sectors and embed page info at migration (CAVA support).
    pub embed_page_info: bool,
    /// Access-counter migration threshold (paper §III-D): a page migrates
    /// only after this many touches; earlier accesses are served remotely
    /// from host memory over the interconnect. 1 = migrate on first touch
    /// (the default UVM behaviour).
    pub migration_threshold: u32,
    /// Latency of a remote (host-memory) access over PCIe/NVLink, in core
    /// cycles.
    pub remote_latency: Cycle,
}

/// Speculation-related parameters (paper Table II, CAST/CAVA rows).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecConfig {
    /// MOD (or VPN-T) entries.
    pub mod_entries: usize,
    /// State-counter confidence threshold.
    pub confidence_threshold: u8,
    /// Decompression latency added at the L2 for compressed sectors.
    pub decompression_latency: Cycle,
    /// Per-SM seed-table entries for hash-based speculative translation
    /// (Revelator-class policies). Ignored by offset predictors.
    pub seed_entries: usize,
    /// Latency of the rapid validation-on-use check, from speculative
    /// dispatch to verdict ([`ValidationKind::Rapid`]).
    ///
    /// [`ValidationKind::Rapid`]: crate::hooks::ValidationKind::Rapid
    pub rapid_latency: Cycle,
}

/// Full system configuration (paper Table II defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub warps_per_sm: usize,
    /// Per-SM private L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Per-SM private L1 data cache (sectored, VIPT).
    pub l1_cache: CacheConfig,
    /// Shared L2 cache (sectored).
    pub l2_cache: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Page-walk system.
    pub walker: WalkerConfig,
    /// UVM behaviour.
    pub uvm: UvmConfig,
    /// Speculation parameters.
    pub spec: SpecConfig,
    /// L1 cache arrangement (VIPT default, PIPT for the §III-D study).
    pub l1_arrangement: CacheArrangement,
    /// Spatially shared tenants (paper §III-D multi-tenancy): SMs are
    /// partitioned contiguously among `tenants` isolated address spaces,
    /// each with its own page table, physical region, and ASID.
    pub tenants: usize,
    /// Ideal-TLB mode: every translation resolves instantly (used for the
    /// Fig 3 ideal baseline).
    pub ideal_tlb: bool,
    /// Deterministic seed for allocation randomness.
    pub seed: u64,
    /// Let the event calendar jump over cycles with no pending events
    /// (host-side speed knob; simulated behaviour is identical either way,
    /// and the skipped cycles are reported in
    /// [`Stats::idle_cycles_skipped`](crate::stats::Stats::idle_cycles_skipped)).
    pub fast_forward: bool,
    /// Resolve all-hit warp memory instructions inline at issue instead of
    /// routing them through the event calendar (host-side speed knob; the
    /// resulting statistics are identical either way — a CI-enforced
    /// property). Defaults to on; set `AVATAR_NO_FASTPATH=1` to default it
    /// off for debugging.
    pub inline_hit_path: bool,
    /// SM shard groups for the bounded-lag sharded calendar (host-side
    /// structure knob; simulated behaviour — and `Stats::digest()` — is
    /// identical for every shard count, a CI-enforced property). 1 keeps
    /// the classic single-calendar path. Values above `num_sms` are
    /// clamped by the engine. Defaults to 1; set `AVATAR_SHARDS=<n>` to
    /// default it differently.
    pub shards: usize,
    /// Bounded-lag window span in cycles for the parallel shard engine
    /// (`None` uses [`DEFAULT_RESPONSE_LOOKAHEAD`]). This is a modeled
    /// latency — the shared domain's response turnaround — so it applies
    /// at every shard count, including 1.
    pub lookahead: Option<Cycle>,
}

/// Default bounded-lag window span (cycles): the modeled turnaround of
/// the SM↔shared-domain interconnect. Shard→shared hops take 1 cycle;
/// shared→shard responses are deferred by one full window plus the
/// device latency, so this is the effective round-trip overhead added
/// to every cross-domain exchange.
pub const DEFAULT_RESPONSE_LOOKAHEAD: Cycle = 8;

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 46,
            warps_per_sm: 48,
            l1_tlb: TlbConfig {
                base_entries: 32,
                large_entries: 16,
                latency: 25,
                assoc: 0,
                ports: 4,
                mshr_entries: 32,
            },
            l2_tlb: TlbConfig {
                base_entries: 1024,
                large_entries: 128,
                latency: 90,
                assoc: 8,
                ports: 8,
                mshr_entries: 128,
            },
            l1_cache: CacheConfig {
                bytes: 128 * 1024,
                latency: 39,
                assoc: 4,
                // Outstanding 32B sector fetches per SM. Modern GPUs keep
                // hundreds of sectors in flight per SM; a tight file here
                // would artificially suppress speculative fetches.
                mshr_entries: 512,
                ports: 8,
            },
            l2_cache: CacheConfig {
                bytes: 4 * 1024 * 1024,
                latency: 187,
                assoc: 16,
                mshr_entries: 2048,
                // One slice per memory channel with dual-ported tag pipes.
                ports: 32,
            },
            dram: DramConfig {
                channels: 16,
                banks_per_channel: 16,
                row_bytes: 4096,
                // Table II nanoseconds at 1132MHz core clock:
                // 13.7ns ≈ 16, 15.3ns ≈ 17, 4.6ns ≈ 5, 6.3ns ≈ 7 cycles.
                t_rcd: 16,
                t_cl: 16,
                t_rp: 17,
                t_wl: 5,
                t_rtw: 7,
                // 32B at 28GB/s ≈ 1.14ns ≈ 2 core cycles.
                burst: 2,
            },
            walker: WalkerConfig {
                walkers: 16,
                buffer_entries: 128,
                pw_cache_entries: 64,
                pw_cache_ports: 8,
            },
            uvm: UvmConfig {
                gpu_memory_bytes: u64::MAX,
                base_page: BasePage::Size4K,
                tbn_prefetch: true,
                promotion: false,
                fragmentation: 0.03,
                cross_chunk_contiguity: 0.93,
                embed_page_info: false,
                migration_threshold: 1,
                // ~700ns PCIe round trip at 1132MHz.
                remote_latency: 800,
            },
            spec: SpecConfig {
                mod_entries: 32,
                confidence_threshold: 2,
                decompression_latency: 7,
                seed_entries: 256,
                rapid_latency: 20,
            },
            l1_arrangement: CacheArrangement::Vipt,
            tenants: 1,
            ideal_tlb: false,
            seed: 0x5EED,
            fast_forward: true,
            // Read once at config construction, never on the event path.
            inline_hit_path: std::env::var_os("AVATAR_NO_FASTPATH").is_none(),
            // Read once at config construction, never on the event path.
            shards: std::env::var("AVATAR_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            lookahead: None,
        }
    }
}

impl GpuConfig {
    /// Table II configuration with default knobs.
    pub fn rtx3070() -> Self {
        Self::default()
    }

    /// A typed, validating builder starting from the Table II defaults.
    /// Struct-literal / field-mutation construction keeps working; the
    /// builder adds `validate()` at the end so impossible geometries
    /// fail loudly at configuration time instead of as simulation bugs.
    pub fn builder() -> GpuConfigBuilder {
        GpuConfigBuilder { cfg: GpuConfig::default() }
    }

    /// The bounded-lag window span the parallel shard engine will use:
    /// the explicit `lookahead` knob, else
    /// [`DEFAULT_RESPONSE_LOOKAHEAD`]. Shard→shared messages travel on a
    /// fixed 1-cycle hop and shared→shard responses are deferred by at
    /// least one full window, so — unlike the old sharded calendar — the
    /// window span is itself a modeled interconnect latency rather than
    /// something that must stay below the minimum L2 latency. A short
    /// window keeps the response latency small; making it longer trades
    /// response latency for fewer barriers.
    pub fn effective_lookahead(&self) -> Cycle {
        self.lookahead.unwrap_or(DEFAULT_RESPONSE_LOOKAHEAD).max(1)
    }

    /// GPU memory capacity in 4KB frames.
    pub fn gpu_frames(&self) -> u64 {
        if self.uvm.gpu_memory_bytes == u64::MAX {
            u64::MAX
        } else {
            self.uvm.gpu_memory_bytes / crate::addr::PAGE_BYTES
        }
    }

    /// FNV-1a digest over every configuration field, in declaration
    /// order. This is the simulation-identity component of the bench
    /// result-cache key, and [`Engine::restore_checkpoint`]
    /// (crate::engine::Engine::restore_checkpoint) verifies it so a
    /// checkpoint can never be overlaid onto a differently-configured
    /// engine.
    ///
    /// Every struct is folded through an *exhaustive* destructuring
    /// pattern: adding a field to any configuration section fails
    /// compilation here until the new field is folded, so the cache key
    /// cannot silently omit simulation-relevant state (avatar-lint's
    /// `cache-key-completeness` rule additionally rejects `..` in these
    /// patterns).
    pub fn key_digest(&self) -> u64 {
        let mut h = crate::invariant::Fnv64::new();
        let GpuConfig {
            num_sms,
            warps_per_sm,
            l1_tlb,
            l2_tlb,
            l1_cache,
            l2_cache,
            dram,
            walker,
            uvm,
            spec,
            l1_arrangement,
            tenants,
            ideal_tlb,
            seed,
            fast_forward,
            inline_hit_path,
            shards,
            lookahead,
        } = self;
        h.write_u64(*num_sms as u64);
        h.write_u64(*warps_per_sm as u64);
        for tlb in [l1_tlb, l2_tlb] {
            let TlbConfig { base_entries, large_entries, latency, assoc, ports, mshr_entries } =
                tlb;
            h.write_u64(*base_entries as u64);
            h.write_u64(*large_entries as u64);
            h.write_u64(*latency);
            h.write_u64(*assoc as u64);
            h.write_u64(u64::from(*ports));
            h.write_u64(*mshr_entries as u64);
        }
        for cache in [l1_cache, l2_cache] {
            let CacheConfig { bytes, latency, assoc, mshr_entries, ports } = cache;
            h.write_u64(*bytes);
            h.write_u64(*latency);
            h.write_u64(*assoc as u64);
            h.write_u64(*mshr_entries as u64);
            h.write_u64(u64::from(*ports));
        }
        let DramConfig {
            channels,
            banks_per_channel,
            row_bytes,
            t_rcd,
            t_cl,
            t_rp,
            t_wl,
            t_rtw,
            burst,
        } = dram;
        h.write_u64(*channels as u64);
        h.write_u64(*banks_per_channel as u64);
        h.write_u64(*row_bytes);
        h.write_u64(*t_rcd);
        h.write_u64(*t_cl);
        h.write_u64(*t_rp);
        h.write_u64(*t_wl);
        h.write_u64(*t_rtw);
        h.write_u64(*burst);
        let WalkerConfig { walkers, buffer_entries, pw_cache_entries, pw_cache_ports } = walker;
        h.write_u64(*walkers as u64);
        h.write_u64(*buffer_entries as u64);
        h.write_u64(*pw_cache_entries as u64);
        h.write_u64(u64::from(*pw_cache_ports));
        let UvmConfig {
            gpu_memory_bytes,
            base_page,
            tbn_prefetch,
            promotion,
            fragmentation,
            cross_chunk_contiguity,
            embed_page_info,
            migration_threshold,
            remote_latency,
        } = uvm;
        h.write_u64(*gpu_memory_bytes);
        h.write_u64(base_page.pages());
        h.write_u64(u64::from(*tbn_prefetch));
        h.write_u64(u64::from(*promotion));
        h.write_u64(fragmentation.to_bits());
        h.write_u64(cross_chunk_contiguity.to_bits());
        h.write_u64(u64::from(*embed_page_info));
        h.write_u64(u64::from(*migration_threshold));
        h.write_u64(*remote_latency);
        let SpecConfig {
            mod_entries,
            confidence_threshold,
            decompression_latency,
            seed_entries,
            rapid_latency,
        } = spec;
        h.write_u64(*mod_entries as u64);
        h.write_u64(u64::from(*confidence_threshold));
        h.write_u64(*decompression_latency);
        h.write_u64(*seed_entries as u64);
        h.write_u64(*rapid_latency);
        h.write_u64(match l1_arrangement {
            CacheArrangement::Vipt => 0,
            CacheArrangement::Pipt => 1,
        });
        h.write_u64(*tenants as u64);
        h.write_u64(u64::from(*ideal_tlb));
        h.write_u64(*seed);
        h.write_u64(u64::from(*fast_forward));
        h.write_u64(u64::from(*inline_hit_path));
        h.write_u64(*shards as u64);
        h.write_u64(u64::from(lookahead.is_some()));
        h.write_u64(lookahead.unwrap_or(0));
        h.finish()
    }

    /// Rejects impossible geometries: zero-sized structures, sector/set
    /// counts that break the power-of-two indexing the caches assume,
    /// more tenants than SMs to partition among them, and out-of-range
    /// probabilities. Called by [`GpuConfigBuilder::build`]; harnesses
    /// that mutate fields directly can call it themselves.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn fail(msg: String) -> Result<(), ConfigError> {
            Err(ConfigError(msg))
        }
        if self.num_sms == 0 {
            return fail("num_sms must be at least 1".into());
        }
        if self.warps_per_sm == 0 {
            return fail("warps_per_sm must be at least 1".into());
        }
        if self.tenants == 0 || self.tenants > self.num_sms {
            return fail(format!(
                "tenants must be in 1..={} (one SM cannot be shared), got {}",
                self.num_sms, self.tenants
            ));
        }
        for (name, tlb) in [("l1_tlb", &self.l1_tlb), ("l2_tlb", &self.l2_tlb)] {
            if tlb.base_entries == 0 {
                return fail(format!("{name}.base_entries must be at least 1"));
            }
            if tlb.assoc > 0 && tlb.base_entries % tlb.assoc != 0 {
                return fail(format!(
                    "{name}: base_entries {} not divisible by assoc {}",
                    tlb.base_entries, tlb.assoc
                ));
            }
            if tlb.ports == 0 {
                return fail(format!("{name}.ports must be at least 1"));
            }
            if tlb.mshr_entries == 0 {
                return fail(format!("{name}.mshr_entries must be at least 1"));
            }
        }
        for (name, cache) in [("l1_cache", &self.l1_cache), ("l2_cache", &self.l2_cache)] {
            if cache.bytes < crate::addr::LINE_BYTES || cache.bytes % crate::addr::LINE_BYTES != 0
            {
                return fail(format!(
                    "{name}.bytes {} is not a positive multiple of the {}B line",
                    cache.bytes,
                    crate::addr::LINE_BYTES
                ));
            }
            if cache.assoc == 0 {
                return fail(format!("{name}.assoc must be at least 1"));
            }
            if !cache.sets().is_power_of_two() {
                return fail(format!(
                    "{name}: {} sets ({} lines / {}-way) is not a power of two, breaking set indexing",
                    cache.sets(),
                    cache.lines(),
                    cache.assoc
                ));
            }
            if cache.ports == 0 {
                return fail(format!("{name}.ports must be at least 1"));
            }
            if cache.mshr_entries == 0 {
                return fail(format!("{name}.mshr_entries must be at least 1"));
            }
        }
        if self.dram.channels == 0 || self.dram.banks_per_channel == 0 {
            return fail("dram needs at least one channel and one bank per channel".into());
        }
        if !self.dram.row_bytes.is_power_of_two() || self.dram.row_bytes < crate::addr::LINE_BYTES
        {
            return fail(format!(
                "dram.row_bytes {} must be a power of two of at least one {}B line",
                self.dram.row_bytes,
                crate::addr::LINE_BYTES
            ));
        }
        if self.walker.walkers == 0 {
            return fail("walker.walkers must be at least 1".into());
        }
        if self.walker.buffer_entries < self.walker.walkers {
            return fail(format!(
                "walker.buffer_entries {} below walkers {} would starve idle walkers",
                self.walker.buffer_entries, self.walker.walkers
            ));
        }
        if self.walker.pw_cache_entries == 0 || self.walker.pw_cache_ports == 0 {
            return fail("page-walk cache needs at least one entry and one port".into());
        }
        for (name, p) in [
            ("uvm.fragmentation", self.uvm.fragmentation),
            ("uvm.cross_chunk_contiguity", self.uvm.cross_chunk_contiguity),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return fail(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if self.uvm.migration_threshold == 0 {
            return fail("uvm.migration_threshold must be at least 1 (1 = first touch)".into());
        }
        if self.spec.mod_entries == 0 {
            return fail("spec.mod_entries must be at least 1".into());
        }
        if self.spec.seed_entries == 0 {
            return fail("spec.seed_entries must be at least 1".into());
        }
        if !self.spec.seed_entries.is_power_of_two() {
            return fail(format!(
                "spec.seed_entries must be a power of two (the seed table is hash-masked), \
                 got {}",
                self.spec.seed_entries
            ));
        }
        if self.spec.rapid_latency == 0 {
            return fail("spec.rapid_latency must be at least 1 cycle".into());
        }
        if self.shards == 0 {
            return fail("shards must be at least 1 (1 = single calendar)".into());
        }
        if self.lookahead == Some(0) {
            return fail("lookahead must be at least 1 cycle (or None to derive it)".into());
        }
        Ok(())
    }
}

/// A rejected [`GpuConfig::validate`] geometry, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid GpuConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Typed builder for [`GpuConfig`] (see [`GpuConfig::builder`]).
///
/// Scalar knobs get direct setters; structured sections are tweaked
/// in place through closures so a caller changes only what it means
/// to change:
///
/// ```
/// use avatar_sim::config::GpuConfig;
/// let cfg = GpuConfig::builder()
///     .num_sms(4)
///     .warps_per_sm(8)
///     .uvm(|u| u.migration_threshold = 8)
///     .build()
///     .expect("valid geometry");
/// assert_eq!(cfg.uvm.migration_threshold, 8);
/// assert!(GpuConfig::builder().num_sms(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct GpuConfigBuilder {
    cfg: GpuConfig,
}

impl GpuConfigBuilder {
    /// Number of streaming multiprocessors.
    pub fn num_sms(mut self, n: usize) -> Self {
        self.cfg.num_sms = n;
        self
    }

    /// Maximum resident warps per SM.
    pub fn warps_per_sm(mut self, n: usize) -> Self {
        self.cfg.warps_per_sm = n;
        self
    }

    /// Spatially shared tenants (must not exceed `num_sms`).
    pub fn tenants(mut self, n: usize) -> Self {
        self.cfg.tenants = n;
        self
    }

    /// Deterministic seed for allocation randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Ideal-TLB mode (Fig 3 baseline).
    pub fn ideal_tlb(mut self, on: bool) -> Self {
        self.cfg.ideal_tlb = on;
        self
    }

    /// Calendar fast-forward (host-side speed knob).
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.cfg.fast_forward = on;
        self
    }

    /// Inline hit fast path (host-side speed knob).
    pub fn inline_hit_path(mut self, on: bool) -> Self {
        self.cfg.inline_hit_path = on;
        self
    }

    /// SM shard groups for the bounded-lag sharded calendar (host-side
    /// structure knob; 1 = classic single calendar).
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Bounded-lag window span in cycles (must be at least 1; see
    /// [`GpuConfig::effective_lookahead`] for the derived default).
    pub fn lookahead(mut self, cycles: Cycle) -> Self {
        self.cfg.lookahead = Some(cycles);
        self
    }

    /// L1 cache arrangement (VIPT default, PIPT for the §III-D study).
    pub fn l1_arrangement(mut self, a: CacheArrangement) -> Self {
        self.cfg.l1_arrangement = a;
        self
    }

    /// Base page size (shorthand for `uvm(|u| u.base_page = ...)`).
    pub fn base_page(mut self, p: BasePage) -> Self {
        self.cfg.uvm.base_page = p;
        self
    }

    /// Tweak the per-SM L1 TLB section.
    pub fn l1_tlb(mut self, f: impl FnOnce(&mut TlbConfig)) -> Self {
        f(&mut self.cfg.l1_tlb);
        self
    }

    /// Tweak the shared L2 TLB section.
    pub fn l2_tlb(mut self, f: impl FnOnce(&mut TlbConfig)) -> Self {
        f(&mut self.cfg.l2_tlb);
        self
    }

    /// Tweak the per-SM L1 data-cache section.
    pub fn l1_cache(mut self, f: impl FnOnce(&mut CacheConfig)) -> Self {
        f(&mut self.cfg.l1_cache);
        self
    }

    /// Tweak the shared L2 cache section.
    pub fn l2_cache(mut self, f: impl FnOnce(&mut CacheConfig)) -> Self {
        f(&mut self.cfg.l2_cache);
        self
    }

    /// Tweak DRAM timing.
    pub fn dram(mut self, f: impl FnOnce(&mut DramConfig)) -> Self {
        f(&mut self.cfg.dram);
        self
    }

    /// Tweak the page-walk system.
    pub fn walker(mut self, f: impl FnOnce(&mut WalkerConfig)) -> Self {
        f(&mut self.cfg.walker);
        self
    }

    /// Tweak UVM behaviour.
    pub fn uvm(mut self, f: impl FnOnce(&mut UvmConfig)) -> Self {
        f(&mut self.cfg.uvm);
        self
    }

    /// Tweak speculation parameters.
    pub fn spec(mut self, f: impl FnOnce(&mut SpecConfig)) -> Self {
        f(&mut self.cfg.spec);
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<GpuConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_defaults() {
        let c = GpuConfig::rtx3070();
        assert_eq!(c.num_sms, 46);
        assert_eq!(c.warps_per_sm, 48);
        assert_eq!(c.l1_tlb.base_entries, 32);
        assert_eq!(c.l2_tlb.base_entries, 1024);
        assert_eq!(c.l1_cache.bytes, 128 * 1024);
        assert_eq!(c.l2_cache.bytes, 4 * 1024 * 1024);
        assert_eq!(c.dram.channels, 16);
        assert_eq!(c.walker.walkers, 16);
        assert_eq!(c.spec.mod_entries, 32);
    }

    #[test]
    fn cache_geometry() {
        let c = GpuConfig::default();
        assert_eq!(c.l1_cache.lines(), 1024);
        assert_eq!(c.l1_cache.sets(), 256);
        assert_eq!(c.l2_cache.lines(), 32768);
    }

    #[test]
    fn base_page_sizes() {
        assert_eq!(BasePage::Size4K.pages(), 1);
        assert_eq!(BasePage::Size64K.pages(), 16);
    }

    #[test]
    fn defaults_validate_clean() {
        assert_eq!(GpuConfig::default().validate(), Ok(()));
        let built = GpuConfig::builder().build().expect("Table II defaults are valid");
        assert_eq!(built, GpuConfig::default());
    }

    #[test]
    fn builder_rejects_impossible_geometries() {
        let cases: [(&str, GpuConfigBuilder); 11] = [
            ("zero SMs", GpuConfig::builder().num_sms(0)),
            ("zero warps", GpuConfig::builder().warps_per_sm(0)),
            ("tenants over SMs", GpuConfig::builder().num_sms(4).tenants(5)),
            // 3 sets below: 384 lines / 4-way = 96 sets, not a power of two.
            ("non-pow2 sets", GpuConfig::builder().l1_cache(|c| c.bytes = 48 * 1024)),
            ("walkers over buffer", GpuConfig::builder().walker(|w| w.buffer_entries = 4)),
            ("probability out of range", GpuConfig::builder().uvm(|u| u.fragmentation = 1.5)),
            ("zero migration threshold", GpuConfig::builder().uvm(|u| u.migration_threshold = 0)),
            // The Revelator seed table is hash-masked: size must be 2^k.
            ("non-pow2 seed entries", GpuConfig::builder().spec(|s| s.seed_entries = 48)),
            ("zero rapid latency", GpuConfig::builder().spec(|s| s.rapid_latency = 0)),
            ("zero shards", GpuConfig::builder().shards(0)),
            ("zero lookahead", GpuConfig::builder().lookahead(0)),
        ];
        for (what, builder) in cases {
            assert!(builder.build().is_err(), "validate accepted {what}");
        }
    }

    #[test]
    fn builder_sets_scalars_and_sections() {
        let cfg = GpuConfig::builder()
            .num_sms(8)
            .warps_per_sm(16)
            .tenants(2)
            .seed(99)
            .ideal_tlb(true)
            .l1_arrangement(CacheArrangement::Pipt)
            .base_page(BasePage::Size64K)
            .l2_tlb(|t| t.base_entries = 2048)
            .dram(|d| d.channels = 8)
            .spec(|s| s.mod_entries = 64)
            .build()
            .expect("valid custom geometry");
        assert_eq!(cfg.num_sms, 8);
        assert_eq!(cfg.tenants, 2);
        assert_eq!(cfg.seed, 99);
        assert!(cfg.ideal_tlb);
        assert_eq!(cfg.l1_arrangement, CacheArrangement::Pipt);
        assert_eq!(cfg.uvm.base_page, BasePage::Size64K);
        assert_eq!(cfg.l2_tlb.base_entries, 2048);
        assert_eq!(cfg.dram.channels, 8);
        assert_eq!(cfg.spec.mod_entries, 64);
    }

    #[test]
    fn config_error_displays_reason() {
        let err = GpuConfig::builder().num_sms(0).build().expect_err("zero SMs must fail");
        let text = format!("{err}");
        assert!(text.contains("num_sms"), "unhelpful error: {text}");
    }

    #[test]
    fn key_digest_is_stable_and_field_sensitive() {
        let base = GpuConfig::default();
        assert_eq!(base.key_digest(), base.clone().key_digest());
        // Every class of field flips the digest: scalar, nested-section,
        // enum, float, and Option knobs.
        let variants: [GpuConfig; 6] = [
            GpuConfig { seed: base.seed + 1, ..base.clone() },
            GpuConfig { num_sms: base.num_sms + 1, ..base.clone() },
            GpuConfig { l1_arrangement: CacheArrangement::Pipt, ..base.clone() },
            GpuConfig {
                uvm: UvmConfig { fragmentation: 0.5, ..base.uvm.clone() },
                ..base.clone()
            },
            GpuConfig { lookahead: Some(90), ..base.clone() },
            GpuConfig {
                l2_tlb: TlbConfig { mshr_entries: 64, ..base.l2_tlb.clone() },
                ..base.clone()
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base.key_digest(), v.key_digest(), "variant {i} digest collided");
        }
        // lookahead None vs Some(0) must differ (presence is folded).
        let some0 = GpuConfig { lookahead: Some(1), ..base.clone() };
        let some1 = GpuConfig { lookahead: Some(2), ..base.clone() };
        assert_ne!(some0.key_digest(), some1.key_digest());
    }

    #[test]
    fn unlimited_memory_means_unlimited_frames() {
        let c = GpuConfig::default();
        assert_eq!(c.gpu_frames(), u64::MAX);
        let mut c2 = c.clone();
        c2.uvm.gpu_memory_bytes = 8 << 20;
        assert_eq!(c2.gpu_frames(), 2048);
    }
}
