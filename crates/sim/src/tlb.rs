//! TLB models: the pluggable interface and the baseline two-array design.
//!
//! The baseline TLB (Table II) keeps separate entry arrays for base pages
//! (4KB, or 64KB in the §IV-C1 sensitivity study) and promoted 2MB pages.
//! Prior-work designs (CoLT, SnakeByte) replace the base array's fill and
//! lookup behaviour via the [`TlbModel`] trait — they live in the
//! `avatar-baselines` crate.

use crate::addr::{Ppn, Vpn, PAGES_PER_CHUNK};
use crate::checkpoint::{CkptError, Reader, Writer};

/// A physically contiguous virtual→physical run around a translated page,
/// computed by the page table at walk completion. Coalescing TLBs use it to
/// widen their entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContigRun {
    /// First VPN of the run.
    pub start_vpn: u64,
    /// PPN mapped to `start_vpn`.
    pub start_ppn: u64,
    /// Run length in 4KB pages.
    pub len: u64,
}

impl ContigRun {
    /// Whether `vpn` is covered by this run.
    pub fn covers(&self, vpn: u64) -> bool {
        vpn >= self.start_vpn && vpn < self.start_vpn + self.len
    }

    /// Translates a covered VPN.
    pub fn translate(&self, vpn: u64) -> u64 {
        debug_assert!(self.covers(vpn));
        self.start_ppn + (vpn - self.start_vpn)
    }
}

/// Information delivered to a TLB on fill (from the walker, the L2 TLB, or
/// Avatar's EAF path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbFill {
    /// The translated page.
    pub vpn: Vpn,
    /// Its frame.
    pub ppn: Ppn,
    /// Pages covered by the installed translation: 1 for a base 4KB PTE,
    /// 16 for a 64KB base page, 512 for a promoted 2MB page.
    pub pages: u64,
    /// Contiguity neighbourhood from the page table, if known (EAF fills
    /// have none).
    pub run: Option<ContigRun>,
}

/// Replacement-priority hint a translation policy attaches to an L1 TLB
/// fill (the dead-entry-aware replacement axis, after "Dead on Arrival").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPriority {
    /// Ordinary most-recently-used insertion.
    #[default]
    Normal,
    /// Predicted dead-on-arrival: install as the set's immediate LRU
    /// victim. The demanded access completes off the fill itself, so a
    /// correct prediction leaves the entry untouched until it is evicted;
    /// a later hit promotes it to MRU, so mispredictions self-correct.
    Transient,
}

/// A successful TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbHit {
    /// Translated frame for the requested page.
    pub ppn: Ppn,
    /// Reach of the entry that hit, in 4KB pages (for Fig 5 coverage).
    pub coverage_pages: u64,
    /// First VPN covered by the hit entry.
    pub entry_vpn: u64,
    /// PPN mapped to `entry_vpn`.
    pub entry_ppn: u64,
}

impl TlbHit {
    /// The contiguity run described by the hit entry (used to propagate
    /// coalesced reach from the L2 TLB into L1 fills).
    pub fn run(&self) -> ContigRun {
        ContigRun { start_vpn: self.entry_vpn, start_ppn: self.entry_ppn, len: self.coverage_pages }
    }
}

/// The pluggable TLB interface. `Send` because per-SM L1 TLBs are owned
/// by shard lanes that may execute on worker threads.
pub trait TlbModel: std::fmt::Debug + Send {
    /// Looks up a page, updating replacement state.
    fn lookup(&mut self, vpn: Vpn) -> Option<TlbHit>;

    /// Whether [`TlbModel::lookup`] would hit for `vpn`, without touching
    /// replacement state or any other model state. `None` means the model
    /// cannot answer non-destructively (the engine's inline fast path then
    /// falls back to the event path); `Some(hit)` must equal exactly what
    /// `lookup` would return. The default is `None`, so coalescing models
    /// (CoLT, SnakeByte) opt out automatically.
    fn probe(&self, _vpn: Vpn) -> Option<Option<TlbHit>> {
        None
    }

    /// Installs a translation.
    fn fill(&mut self, fill: &TlbFill);

    /// Installs a translation with a replacement-priority hint. The
    /// default discards the hint and installs normally — models without
    /// priority support treat every fill as [`FillPriority::Normal`], so
    /// the hint is advisory and never changes hit/miss correctness.
    fn fill_prioritized(&mut self, fill: &TlbFill, _priority: FillPriority) {
        self.fill(fill);
    }

    /// Invalidates any entries overlapping `[vpn, vpn + pages)`; returns
    /// the number of entries dropped. Coalesced/merged entries overlapping
    /// the range are dropped entirely (the shootdown cost the paper
    /// discusses).
    fn invalidate(&mut self, vpn: Vpn, pages: u64) -> u64;

    /// Drops every entry.
    fn flush(&mut self);

    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Extra page-table memory references this model has accrued (e.g.
    /// SnakeByte merge traffic). Drained by the engine each time it is read.
    fn drain_extra_memory_refs(&mut self) -> u64 {
        0
    }

    /// Asserts the model's internal consistency (checked-mode audits).
    /// Must be read-only. Models with no auditable state keep the default
    /// no-op.
    fn audit_invariants(&self) {}

    /// Serializes the model's mutable state for a checkpoint. The default
    /// writes nothing — correct only for stateless models; every model
    /// holding entries must override this together with
    /// [`load_state`](TlbModel::load_state).
    fn save_state(&self, _w: &mut Writer) {}

    /// Restores state written by [`save_state`](TlbModel::save_state).
    /// The default reads nothing (stateless models).
    fn load_state(&mut self, _r: &mut Reader<'_>) -> Result<(), CkptError> {
        Ok(())
    }
}

/// Sentinel VPN for an unoccupied way. Salted VPNs stay far below 2^63, so
/// the all-ones tag can never collide with a real entry.
const VPN_EMPTY: u64 = u64::MAX;

/// One set-associative (or fully associative) array of TLB entries.
///
/// Four flat parallel arrays indexed `set * ways + way` (vpn, ppn, reach,
/// LRU stamp) — one allocation each, replacing the seed's `Vec<Vec<Entry>>`
/// so lookups scan contiguous words instead of chasing per-set vectors.
#[derive(Debug, Clone)]
pub(crate) struct EntryArray {
    /// First VPN covered per way, or [`VPN_EMPTY`].
    vpns: Vec<u64>,
    /// PPN mapped to the way's first VPN.
    ppns: Vec<u64>,
    /// Reach in 4KB pages per way.
    spans: Vec<u64>,
    /// Last-use stamp per way (valid only while occupied).
    stamps: Vec<u64>,
    nsets: usize,
    ways: usize,
    stamp: u64,
    /// Granularity used for set indexing (pages per entry).
    index_pages: u64,
    live: usize,
    /// Last way that hit, per set — checked first on the next lookup.
    /// Coalesced sectors land in the same page back to back, so this
    /// short-circuits most scans; a stale hint costs one wasted compare
    /// (the hit is re-verified), never a wrong result, because entry
    /// ranges within a set are disjoint.
    hints: Vec<u32>,
}

/// First way index in `0..n` satisfying `pred`, via 64-wide branchless
/// match masks: each chunk builds a bitmask with one compare-and-or per
/// way, then takes a single `trailing_zeros`. The mask loop vectorizes
/// where the early-exit scan it replaces defeated autovectorization —
/// fully associative arrays (the L2 TLB scans hundreds of ways per
/// lookup) are the win. First-match order is preserved exactly.
#[inline]
fn mask_scan(n: usize, mut pred: impl FnMut(usize) -> bool) -> Option<usize> {
    let mut w = 0;
    while w < n {
        let lim = (n - w).min(64);
        let mut mask = 0u64;
        for i in 0..lim {
            mask |= u64::from(pred(w + i)) << i;
        }
        if mask != 0 {
            return Some(w + mask.trailing_zeros() as usize);
        }
        w += lim;
    }
    None
}

impl EntryArray {
    pub(crate) fn new(entries: usize, assoc: usize, index_pages: u64) -> Self {
        let (nsets, ways) = if assoc == 0 || assoc >= entries {
            (1, entries.max(1))
        } else {
            ((entries / assoc).max(1), assoc)
        };
        let cap = nsets * ways;
        Self {
            vpns: vec![VPN_EMPTY; cap],
            ppns: vec![0; cap],
            spans: vec![0; cap],
            stamps: vec![0; cap],
            nsets,
            ways,
            stamp: 0,
            index_pages: index_pages.max(1),
            live: 0,
            hints: vec![0; nsets],
        }
    }

    /// One-compare range check: `vpn - evpn` wraps for `vpn < evpn` (and
    /// for the [`VPN_EMPTY`] sentinel) to a huge value no real span
    /// reaches.
    #[inline]
    fn covers(evpn: u64, span: u64, vpn: u64) -> bool {
        vpn.wrapping_sub(evpn) < span
    }

    #[inline]
    fn set_base(&self, vpn: u64) -> usize {
        ((vpn / self.index_pages) % self.nsets as u64) as usize * self.ways
    }

    #[inline]
    fn hit_at(&self, w: usize, vpn: u64) -> TlbHit {
        let evpn = self.vpns[w];
        TlbHit {
            ppn: Ppn(self.ppns[w] + (vpn - evpn)),
            coverage_pages: self.spans[w],
            entry_vpn: evpn,
            entry_ppn: self.ppns[w],
        }
    }

    /// The way holding `vpn`, if any. Checks the set's last-hit hint
    /// first — coalesced sector streams resolve in one compare — then
    /// falls back to the way scan. Empty arrays return immediately
    /// (the 2MB side of a [`BaseTlb`] is empty in every non-promotion
    /// configuration, and it used to pay a full scan per lookup).
    #[inline]
    fn find(&self, vpn: u64) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        let base = self.set_base(vpn);
        let hint = base + self.hints[base / self.ways] as usize;
        if Self::covers(self.vpns[hint], self.spans[hint], vpn) {
            return Some(hint);
        }
        mask_scan(self.ways, |i| Self::covers(self.vpns[base + i], self.spans[base + i], vpn))
            .map(|i| base + i)
    }

    fn lookup(&mut self, vpn: u64) -> Option<TlbHit> {
        self.stamp += 1;
        let w = self.find(vpn)?;
        self.stamps[w] = self.stamp;
        self.hints[w / self.ways] = (w % self.ways) as u32;
        Some(self.hit_at(w, vpn))
    }

    /// The hit [`EntryArray::lookup`] would return, with no LRU update.
    fn probe(&self, vpn: u64) -> Option<TlbHit> {
        self.find(vpn).map(|w| self.hit_at(w, vpn))
    }

    fn insert(&mut self, vpn: u64, ppn: u64, pages: u64) {
        self.insert_prio(vpn, ppn, pages, FillPriority::Normal);
    }

    fn insert_prio(&mut self, vpn: u64, ppn: u64, pages: u64, priority: FillPriority) {
        self.stamp += 1;
        // A transient install is stamped as the set's oldest entry, so the
        // next conflict eviction takes it first; any later lookup hit
        // re-stamps it MRU (misprediction self-corrects).
        let stamp = match priority {
            FillPriority::Normal => self.stamp,
            FillPriority::Transient => 0,
        };
        let base = self.set_base(vpn);
        // Two batched scans (exact-entry refresh, then first empty way)
        // replace the fused early-exit loop; the empty scan only runs on
        // the install path.
        if let Some(i) =
            mask_scan(self.ways, |i| self.vpns[base + i] == vpn && self.spans[base + i] == pages)
        {
            let w = base + i;
            self.ppns[w] = ppn;
            self.stamps[w] = stamp;
            return;
        }
        let empty = mask_scan(self.ways, |i| self.vpns[base + i] == VPN_EMPTY).map(|i| base + i);
        let w = match empty {
            Some(w) => {
                self.live += 1;
                w
            }
            None => (base..base + self.ways)
                .min_by_key(|&i| self.stamps[i])
                .expect("nonempty set"),
        };
        self.vpns[w] = vpn;
        self.ppns[w] = ppn;
        self.spans[w] = pages;
        self.stamps[w] = stamp;
        // A fill is usually followed by the lookup that wanted it.
        self.hints[w / self.ways] = (w % self.ways) as u32;
    }

    fn invalidate(&mut self, vpn: u64, pages: u64) -> u64 {
        let mut dropped = 0;
        for w in 0..self.vpns.len() {
            let evpn = self.vpns[w];
            if evpn != VPN_EMPTY && evpn < vpn + pages && vpn < evpn + self.spans[w] {
                self.vpns[w] = VPN_EMPTY;
                // A free way must have zero reach so the one-compare
                // `covers` check can never match it.
                self.spans[w] = 0;
                self.live -= 1;
                dropped += 1;
            }
        }
        dropped
    }

    fn flush(&mut self) {
        self.vpns.fill(VPN_EMPTY);
        self.spans.fill(0);
        self.live = 0;
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Serializes the array's mutable state (entries, LRU stamps, hints).
    /// Geometry (`nsets`, `ways`, `index_pages`) is configuration-derived
    /// and not serialized; the slice length checks on load catch a
    /// geometry mismatch.
    // lint:exempt(checkpoint-field-parity: ways is construction-time geometry; load_state reads it only to validate the restored entry layout against the live config)
    pub(crate) fn save_state(&self, w: &mut Writer) {
        w.u64_slice(&self.vpns);
        w.u64_slice(&self.ppns);
        w.u64_slice(&self.spans);
        w.u64_slice(&self.stamps);
        w.u64(self.stamp);
        w.usize(self.live);
        w.u32_slice(&self.hints);
    }

    /// Restores state saved by [`EntryArray::save_state`], verifying the
    /// live count against actual occupancy and every hint's range.
    pub(crate) fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        r.u64_slice_into(&mut self.vpns)?;
        r.u64_slice_into(&mut self.ppns)?;
        r.u64_slice_into(&mut self.spans)?;
        r.u64_slice_into(&mut self.stamps)?;
        self.stamp = r.u64()?;
        self.live = r.usize()?;
        r.u32_slice_into(&mut self.hints)?;
        let occupied = self.vpns.iter().filter(|&&v| v != VPN_EMPTY).count();
        if occupied != self.live {
            return Err(CkptError::Corrupt("TLB live counter disagrees with occupancy"));
        }
        if self.hints.iter().any(|&h| h as usize >= self.ways) {
            return Err(CkptError::Corrupt("TLB hit hint out of way range"));
        }
        Ok(())
    }

    /// Asserts array consistency: the live counter matches the occupied
    /// ways, every occupied way has a non-zero reach and indexes into its
    /// own set, and no LRU stamp is ahead of the global counter.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub(crate) fn audit_invariants(&self) {
        assert_eq!(self.vpns.len(), self.nsets * self.ways);
        assert_eq!(self.hints.len(), self.nsets);
        for (set, &h) in self.hints.iter().enumerate() {
            assert!(
                (h as usize) < self.ways,
                "set {set} hint {h} out of range for {}-way array",
                self.ways
            );
        }
        let mut occupied = 0usize;
        for (w, &vpn) in self.vpns.iter().enumerate() {
            if vpn == VPN_EMPTY {
                assert_eq!(self.spans[w], 0, "free way {w} keeps a non-zero reach");
                continue;
            }
            occupied += 1;
            let set = w / self.ways;
            assert!(self.spans[w] > 0, "way {w} live with zero reach");
            assert_eq!(
                self.set_base(vpn) / self.ways,
                set,
                "entry for vpn {vpn} resident in set {set}, indexes elsewhere"
            );
            assert!(
                self.stamps[w] <= self.stamp,
                "way {w} stamp {} ahead of global stamp {}",
                self.stamps[w],
                self.stamp
            );
        }
        assert_eq!(occupied, self.live, "live counter desynchronized");
    }
}

/// The baseline TLB: a base-page array plus a 2MB large-page array.
#[derive(Debug, Clone)]
pub struct BaseTlb {
    base: EntryArray,
    large: EntryArray,
    /// Pages covered by one base entry (1 for 4KB, 16 for 64KB).
    base_pages: u64,
}

impl BaseTlb {
    /// Creates a baseline TLB.
    ///
    /// `assoc` of 0 means fully associative. `base_pages` is the base-page
    /// size in 4KB pages (1 or 16).
    pub fn new(base_entries: usize, large_entries: usize, assoc: usize, base_pages: u64) -> Self {
        Self {
            base: EntryArray::new(base_entries, assoc, base_pages),
            large: EntryArray::new(large_entries, assoc, PAGES_PER_CHUNK),
            base_pages,
        }
    }

    /// Total live entries (both arrays).
    pub fn len(&self) -> usize {
        self.base.len() + self.large.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TlbModel for BaseTlb {
    fn lookup(&mut self, vpn: Vpn) -> Option<TlbHit> {
        if let Some(hit) = self.large.lookup(vpn.0) {
            return Some(hit);
        }
        self.base.lookup(vpn.0)
    }

    fn probe(&self, vpn: Vpn) -> Option<Option<TlbHit>> {
        if let Some(hit) = self.large.probe(vpn.0) {
            return Some(Some(hit));
        }
        Some(self.base.probe(vpn.0))
    }

    fn fill(&mut self, fill: &TlbFill) {
        self.fill_prioritized(fill, FillPriority::Normal);
    }

    fn fill_prioritized(&mut self, fill: &TlbFill, priority: FillPriority) {
        if fill.pages >= PAGES_PER_CHUNK {
            // Align the 2MB entry on its natural boundary. Promoted pages
            // aggregate many uses, so the dead-entry hint only applies to
            // the base array.
            let base_vpn = fill.vpn.0 & !(PAGES_PER_CHUNK - 1);
            let base_ppn = fill.ppn.0 - (fill.vpn.0 - base_vpn);
            self.large.insert(base_vpn, base_ppn, PAGES_PER_CHUNK);
        } else {
            // Align on the base-page boundary.
            let base_vpn = fill.vpn.0 & !(self.base_pages - 1);
            let base_ppn = fill.ppn.0 - (fill.vpn.0 - base_vpn);
            self.base.insert_prio(base_vpn, base_ppn, self.base_pages, priority);
        }
    }

    fn invalidate(&mut self, vpn: Vpn, pages: u64) -> u64 {
        self.base.invalidate(vpn.0, pages) + self.large.invalidate(vpn.0, pages)
    }

    fn flush(&mut self) {
        self.base.flush();
        self.large.flush();
    }

    fn name(&self) -> &'static str {
        "base"
    }

    fn audit_invariants(&self) {
        self.base.audit_invariants();
        self.large.audit_invariants();
    }

    fn save_state(&self, w: &mut Writer) {
        self.base.save_state(w);
        self.large.save_state(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        self.base.load_state(r)?;
        self.large.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill4k(vpn: u64, ppn: u64) -> TlbFill {
        TlbFill { vpn: Vpn(vpn), ppn: Ppn(ppn), pages: 1, run: None }
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = BaseTlb::new(4, 2, 0, 1);
        assert!(t.lookup(Vpn(5)).is_none());
        t.fill(&fill4k(5, 100));
        let hit = t.lookup(Vpn(5)).unwrap();
        assert_eq!(hit.ppn, Ppn(100));
        assert_eq!(hit.coverage_pages, 1);
    }

    #[test]
    fn lru_in_fully_associative_array() {
        let mut t = BaseTlb::new(2, 1, 0, 1);
        t.fill(&fill4k(1, 11));
        t.fill(&fill4k(2, 22));
        t.lookup(Vpn(1)); // make 2 the LRU
        t.fill(&fill4k(3, 33));
        assert!(t.lookup(Vpn(1)).is_some());
        assert!(t.lookup(Vpn(2)).is_none());
        assert!(t.lookup(Vpn(3)).is_some());
    }

    #[test]
    fn large_page_covers_whole_chunk() {
        let mut t = BaseTlb::new(4, 2, 0, 1);
        // Fill reported for a page in the middle of the chunk.
        t.fill(&TlbFill { vpn: Vpn(512 + 37), ppn: Ppn(1024 + 37), pages: 512, run: None });
        let hit = t.lookup(Vpn(512)).unwrap();
        assert_eq!(hit.ppn, Ppn(1024));
        assert_eq!(hit.coverage_pages, 512);
        let hit2 = t.lookup(Vpn(512 + 511)).unwrap();
        assert_eq!(hit2.ppn, Ppn(1024 + 511));
    }

    #[test]
    fn base_64k_entry_covers_16_pages() {
        let mut t = BaseTlb::new(4, 2, 0, 16);
        t.fill(&TlbFill { vpn: Vpn(19), ppn: Ppn(119), pages: 1, run: None });
        // Entry aligned to vpn 16 → ppn 116.
        let hit = t.lookup(Vpn(16)).unwrap();
        assert_eq!(hit.ppn, Ppn(116));
        assert_eq!(hit.coverage_pages, 16);
        assert!(t.lookup(Vpn(32)).is_none());
    }

    #[test]
    fn invalidate_range_drops_overlapping() {
        let mut t = BaseTlb::new(8, 2, 0, 1);
        t.fill(&fill4k(10, 110));
        t.fill(&fill4k(11, 111));
        t.fill(&fill4k(20, 120));
        assert_eq!(t.invalidate(Vpn(10), 2), 2);
        assert!(t.lookup(Vpn(10)).is_none());
        assert!(t.lookup(Vpn(20)).is_some());
    }

    #[test]
    fn invalidate_drops_large_entry_overlapping_page() {
        let mut t = BaseTlb::new(4, 2, 0, 1);
        t.fill(&TlbFill { vpn: Vpn(512), ppn: Ppn(0), pages: 512, run: None });
        assert_eq!(t.invalidate(Vpn(600), 1), 1);
        assert!(t.lookup(Vpn(512)).is_none());
    }

    #[test]
    fn flush_empties() {
        let mut t = BaseTlb::new(4, 2, 0, 1);
        t.fill(&fill4k(1, 2));
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn set_associative_indexing_separates_sets() {
        let mut t = BaseTlb::new(8, 0, 2, 1); // 4 sets x 2 ways
        // VPNs 0,4,8 map to set 0 with 4 sets — capacity 2.
        t.fill(&fill4k(0, 10));
        t.fill(&fill4k(4, 14));
        t.fill(&fill4k(8, 18));
        let present = [0u64, 4, 8].iter().filter(|&&v| t.lookup(Vpn(v)).is_some()).count();
        assert_eq!(present, 2, "one conflict eviction in the set");
    }

    #[test]
    fn refill_same_page_updates_mapping() {
        let mut t = BaseTlb::new(4, 2, 0, 1);
        t.fill(&fill4k(7, 70));
        t.fill(&fill4k(7, 77));
        assert_eq!(t.lookup(Vpn(7)).unwrap().ppn, Ppn(77));
    }

    #[test]
    fn audit_passes_under_fill_invalidate_churn() {
        let mut t = BaseTlb::new(8, 4, 2, 1);
        t.audit_invariants();
        for i in 0..200u64 {
            t.fill(&fill4k(i % 37, i + 100));
            if i % 9 == 0 {
                t.fill(&TlbFill {
                    vpn: Vpn((i % 5) * PAGES_PER_CHUNK),
                    ppn: Ppn(i * 1000),
                    pages: PAGES_PER_CHUNK,
                    run: None,
                });
            }
            if i % 5 == 0 {
                t.invalidate(Vpn(i % 37), 2);
            }
            t.audit_invariants();
        }
        t.flush();
        t.audit_invariants();
    }

    #[test]
    fn probe_previews_lookup_without_lru_update() {
        let mut t = BaseTlb::new(2, 1, 0, 1);
        t.fill(&fill4k(1, 11));
        t.fill(&fill4k(2, 22));
        // Probe agrees with lookup on both hit and miss...
        assert_eq!(t.probe(Vpn(1)), Some(t.lookup(Vpn(1))));
        assert_eq!(t.probe(Vpn(9)), Some(None));
        // ...and probing vpn 2 must NOT refresh its LRU position: after a
        // lookup of 1, a probe of 2, and a capacity fill, 2 (not 1) is the
        // victim.
        t.lookup(Vpn(1));
        t.probe(Vpn(2));
        t.fill(&fill4k(3, 33));
        assert!(t.lookup(Vpn(1)).is_some());
        assert!(t.lookup(Vpn(2)).is_none());
    }

    #[test]
    fn mask_scan_agrees_with_linear_scan() {
        // The batched scan must be a drop-in for `(0..n).find(pred)`,
        // including first-match tie-breaking and >64-way arrays.
        let hits: &[&[usize]] = &[&[], &[0], &[2], &[1, 5], &[63], &[64], &[67, 69], &[0, 130]];
        for &set in hits {
            for n in [0usize, 1, 3, 64, 65, 130, 131] {
                let pred = |i: usize| set.contains(&i);
                assert_eq!(mask_scan(n, pred), (0..n).find(|&i| pred(i)), "hits {set:?}, n {n}");
            }
        }
    }

    #[test]
    fn checkpoint_round_trip_preserves_entries_and_lru() {
        let mut t = BaseTlb::new(2, 1, 0, 1);
        t.fill(&fill4k(1, 11));
        t.fill(&fill4k(2, 22));
        t.lookup(Vpn(1)); // make 2 the LRU victim
        let mut w = Writer::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut u = BaseTlb::new(2, 1, 0, 1);
        let mut r = Reader::new(&bytes);
        u.load_state(&mut r).expect("TLB checkpoint round-trip");
        assert!(r.is_exhausted());
        u.audit_invariants();
        assert_eq!(u.lookup(Vpn(2)).map(|h| h.ppn), Some(Ppn(22)));
        // LRU state carried over: a capacity fill into the restored copy
        // evicts the same victim the original would have chosen.
        let mut v = BaseTlb::new(2, 1, 0, 1);
        v.load_state(&mut Reader::new(&bytes)).expect("TLB checkpoint round-trip");
        v.fill(&fill4k(3, 33));
        assert!(v.lookup(Vpn(1)).is_some());
        assert!(v.lookup(Vpn(2)).is_none());
        // A differently sized TLB refuses the bytes.
        let mut wrong = BaseTlb::new(4, 1, 0, 1);
        assert!(matches!(
            wrong.load_state(&mut Reader::new(&bytes)),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn transient_fill_is_preferred_victim_until_rehit() {
        let mut t = BaseTlb::new(2, 1, 0, 1);
        t.fill(&fill4k(1, 11));
        t.fill_prioritized(&fill4k(2, 22), FillPriority::Transient);
        // Entry 2 is the victim despite being the most recent fill.
        t.fill(&fill4k(3, 33));
        assert!(t.lookup(Vpn(1)).is_some());
        assert!(t.lookup(Vpn(2)).is_none());
        assert!(t.lookup(Vpn(3)).is_some());
        t.audit_invariants();
        // A hit on a transient entry promotes it: now 4 survives over 5.
        let mut u = BaseTlb::new(2, 1, 0, 1);
        u.fill_prioritized(&fill4k(4, 44), FillPriority::Transient);
        u.fill(&fill4k(5, 55));
        assert!(u.lookup(Vpn(4)).is_some()); // promote
        u.fill(&fill4k(6, 66));
        assert!(u.lookup(Vpn(4)).is_some());
        assert!(u.lookup(Vpn(5)).is_none());
        u.audit_invariants();
    }

    #[test]
    fn normal_priority_matches_plain_fill() {
        let mut a = BaseTlb::new(4, 2, 2, 1);
        let mut b = BaseTlb::new(4, 2, 2, 1);
        for i in 0..50u64 {
            a.fill(&fill4k(i % 7, i + 100));
            b.fill_prioritized(&fill4k(i % 7, i + 100), FillPriority::Normal);
            if i % 3 == 0 {
                a.lookup(Vpn(i % 7));
                b.lookup(Vpn(i % 7));
            }
        }
        let mut wa = Writer::new();
        let mut wb = Writer::new();
        a.save_state(&mut wa);
        b.save_state(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn contig_run_translation() {
        let r = ContigRun { start_vpn: 100, start_ppn: 500, len: 8 };
        assert!(r.covers(100) && r.covers(107) && !r.covers(108));
        assert_eq!(r.translate(103), 503);
    }
}
