//! Streaming multiprocessors: warp programs, the coalescer, and per-SM
//! occupancy/stall accounting.

use crate::addr::{VirtAddr, SECTOR_BYTES};
use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::Cycle;

/// One warp-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// A warp load: per-thread byte addresses (up to 32), coalesced into
    /// sector requests by the load/store unit.
    Load {
        /// Program counter of the load instruction (the MOD tag).
        pc: u64,
        /// Per-thread addresses.
        addrs: Vec<VirtAddr>,
    },
    /// A warp store: write-allocate, write-back; never speculated (GPUs
    /// cannot roll back erroneous writes).
    Store {
        /// Program counter of the store instruction.
        pc: u64,
        /// Per-thread addresses.
        addrs: Vec<VirtAddr>,
    },
    /// Non-memory work: the warp is busy for `cycles` before its next op.
    Compute {
        /// Busy time in cycles.
        cycles: Cycle,
    },
}

/// A supplier of per-warp instruction streams — implemented by the workload
/// generators.
///
/// Programs must be `Send` (each shard lane owns a clone and may be
/// advanced on a worker thread) and cloneable via
/// [`clone_box`](WarpProgram::clone_box): warp-stream state is per
/// `(sm, warp)` slot, and each lane only ever calls `next_op` for the
/// SMs it owns, so independent per-lane clones observe exactly the
/// per-slot subsequences a single shared instance would.
pub trait WarpProgram: Send {
    /// The next operation for warp `warp` of SM `sm`; `None` retires the
    /// warp.
    fn next_op(&mut self, sm: usize, warp: usize) -> Option<WarpOp>;

    /// A boxed deep copy of the program, used to hand each shard lane
    /// its own instance.
    fn clone_box(&self) -> Box<dyn WarpProgram>;

    /// Serializes the program's mutable state for a checkpoint. The
    /// default writes nothing — correct only for stateless programs;
    /// every generator that advances internal state across `next_op`
    /// calls must override this together with
    /// [`load_state`](WarpProgram::load_state).
    fn save_state(&self, _w: &mut Writer) {}

    /// Restores state written by [`save_state`](WarpProgram::save_state).
    /// The default reads nothing (stateless programs).
    fn load_state(&mut self, _r: &mut Reader<'_>) -> Result<(), CkptError> {
        Ok(())
    }
}

/// Coalesces a warp's per-thread addresses into unique 32B sector requests,
/// preserving first-appearance order (deterministic).
pub fn coalesce(addrs: &[VirtAddr]) -> Vec<VirtAddr> {
    let mut out = Vec::new();
    coalesce_into(addrs, &mut out);
    out
}

/// Coalesces into a caller-owned vector (cleared first), so per-instruction
/// hot loops can reuse one scratch buffer instead of allocating. Keeps the
/// first-appearance order of [`coalesce`].
pub fn coalesce_into(addrs: &[VirtAddr], out: &mut Vec<VirtAddr>) {
    out.clear();
    for a in addrs {
        let sector = VirtAddr(a.0 & !(SECTOR_BYTES - 1));
        if !out.contains(&sector) {
            out.push(sector);
        }
    }
}

/// The shard group owning SM `sm` when `num_sms` SMs are partitioned
/// into `shards` contiguous groups (the sharded calendar's SM→domain
/// map). Balanced to within one SM and monotone in `sm`, so shard
/// domains always cover contiguous SM ranges.
pub fn shard_of(sm: usize, shards: usize, num_sms: usize) -> usize {
    debug_assert!(sm < num_sms, "SM {sm} out of range for {num_sms} SMs");
    debug_assert!(shards >= 1 && shards <= num_sms);
    sm * shards / num_sms
}

/// Execution state of one warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Ready to issue its next operation.
    Ready,
    /// Waiting on outstanding memory requests.
    WaitingMemory {
        /// Sector requests still in flight.
        outstanding: u32,
    },
    /// Busy computing until the recorded cycle.
    Computing,
    /// Program exhausted.
    Retired,
}

/// Per-SM bookkeeping: warp states and stall-cycle accounting.
///
/// An SM is *stalled* while it has unretired warps but none ready or
/// computing — every live warp is blocked on memory. The paper's Fig 3a
/// "stall cycles waiting for memory" is the sum of these intervals.
#[derive(Debug, Clone)]
pub struct SmState {
    warps: Vec<WarpState>,
    stall_started: Option<Cycle>,
    /// Accumulated stall cycles.
    pub stall_cycles: u64,
    /// Next free issue slot (1 op/cycle issue throughput).
    pub issue_free_at: Cycle,
}

impl SmState {
    /// Creates an SM with `warps` warp slots, all ready.
    pub fn new(warps: usize) -> Self {
        Self {
            warps: vec![WarpState::Ready; warps],
            stall_started: None,
            stall_cycles: 0,
            issue_free_at: 0,
        }
    }

    /// Current state of a warp.
    pub fn warp(&self, w: usize) -> WarpState {
        self.warps[w]
    }

    /// Updates a warp's state and the stall clock.
    pub fn set_warp(&mut self, w: usize, state: WarpState, now: Cycle) {
        self.warps[w] = state;
        self.update_stall(now);
    }

    fn is_stalled(&self) -> bool {
        let mut any_live = false;
        for w in &self.warps {
            match w {
                WarpState::Ready | WarpState::Computing => return false,
                WarpState::WaitingMemory { .. } => any_live = true,
                WarpState::Retired => {}
            }
        }
        any_live
    }

    fn update_stall(&mut self, now: Cycle) {
        let stalled = self.is_stalled();
        match (self.stall_started, stalled) {
            (None, true) => self.stall_started = Some(now),
            (Some(start), false) => {
                self.stall_cycles += now.saturating_sub(start);
                self.stall_started = None;
            }
            _ => {}
        }
    }

    /// Closes any open stall interval at end of simulation.
    pub fn finish(&mut self, now: Cycle) {
        if let Some(start) = self.stall_started.take() {
            self.stall_cycles += now.saturating_sub(start);
        }
    }

    /// Serializes the SM's mutable state: every warp slot, the open
    /// stall interval (if any), and the accounting counters.
    pub fn save_state(&self, w: &mut Writer) {
        w.usize(self.warps.len());
        for warp in &self.warps {
            match warp {
                WarpState::Ready => w.u8(0),
                WarpState::WaitingMemory { outstanding } => {
                    w.u8(1);
                    w.u32(*outstanding);
                }
                WarpState::Computing => w.u8(2),
                WarpState::Retired => w.u8(3),
            }
        }
        w.opt_u64(self.stall_started);
        w.u64(self.stall_cycles);
        w.u64(self.issue_free_at);
    }

    /// Restores state saved by [`SmState::save_state`]. The warp-slot
    /// count is configuration geometry; a mismatch is corruption.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let n = r.usize()?;
        if n != self.warps.len() {
            return Err(CkptError::Corrupt("SM warp slot count mismatch"));
        }
        for warp in &mut self.warps {
            *warp = match r.u8()? {
                0 => WarpState::Ready,
                1 => WarpState::WaitingMemory { outstanding: r.u32()? },
                2 => WarpState::Computing,
                3 => WarpState::Retired,
                _ => return Err(CkptError::Corrupt("warp state tag out of range")),
            };
        }
        self.stall_started = r.opt_u64()?;
        self.stall_cycles = r.u64()?;
        self.issue_free_at = r.u64()?;
        Ok(())
    }

    /// Whether every warp has retired.
    pub fn all_retired(&self) -> bool {
        self.warps.iter().all(|w| matches!(w, WarpState::Retired))
    }

    /// Number of warp slots.
    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_same_sector() {
        let addrs: Vec<VirtAddr> = (0..32).map(|i| VirtAddr(i * 4)).collect();
        let sectors = coalesce(&addrs);
        assert_eq!(sectors.len(), 4, "32 consecutive 4B accesses span 4 sectors");
        assert_eq!(sectors[0], VirtAddr(0));
        assert_eq!(sectors[3], VirtAddr(96));
    }

    #[test]
    fn coalesce_strided_accesses_stay_separate() {
        let addrs: Vec<VirtAddr> = (0..8).map(|i| VirtAddr(i * 128)).collect();
        assert_eq!(coalesce(&addrs).len(), 8);
    }

    #[test]
    fn coalesce_preserves_first_appearance_order() {
        let addrs = vec![VirtAddr(100), VirtAddr(0), VirtAddr(101)];
        let sectors = coalesce(&addrs);
        assert_eq!(sectors, vec![VirtAddr(96), VirtAddr(0)]);
    }

    #[test]
    fn shard_of_partitions_contiguously_and_covers_every_shard() {
        for &(shards, num_sms) in &[(1usize, 46usize), (2, 46), (4, 46), (8, 46), (4, 4), (3, 8)] {
            let mut seen = vec![0usize; shards];
            let mut prev = 0;
            for sm in 0..num_sms {
                let s = shard_of(sm, shards, num_sms);
                assert!(s < shards, "shard {s} out of range");
                assert!(s >= prev, "shard map must be monotone in SM id");
                prev = s;
                seen[s] += 1;
            }
            assert!(seen.iter().all(|&n| n > 0), "{shards}/{num_sms}: empty shard");
            let (min, max) = (seen.iter().min().unwrap(), seen.iter().max().unwrap());
            assert!(max - min <= 1, "{shards}/{num_sms}: unbalanced split {seen:?}");
        }
    }

    #[test]
    fn stall_accounting_counts_only_fully_blocked_intervals() {
        let mut sm = SmState::new(2);
        sm.set_warp(0, WarpState::WaitingMemory { outstanding: 1 }, 10);
        assert_eq!(sm.stall_cycles, 0);
        // Warp 1 still Ready → not stalled yet.
        sm.set_warp(1, WarpState::WaitingMemory { outstanding: 1 }, 20);
        // Both waiting → stall starts at 20.
        sm.set_warp(0, WarpState::Ready, 50);
        assert_eq!(sm.stall_cycles, 30);
    }

    #[test]
    fn retired_warps_do_not_stall() {
        let mut sm = SmState::new(2);
        sm.set_warp(0, WarpState::Retired, 0);
        sm.set_warp(1, WarpState::Retired, 5);
        sm.finish(100);
        assert_eq!(sm.stall_cycles, 0);
        assert!(sm.all_retired());
    }

    #[test]
    fn finish_closes_open_interval() {
        let mut sm = SmState::new(1);
        sm.set_warp(0, WarpState::WaitingMemory { outstanding: 2 }, 10);
        sm.finish(25);
        assert_eq!(sm.stall_cycles, 15);
    }
}
