//! The shared, multi-threaded page-walk system: walkers, the page-walk
//! buffer, and the page-walk cache.
//!
//! The walker system is a state machine driven by the engine: the engine
//! performs each walk's memory references through the L2 cache and DRAM
//! (page-structure entries are cacheable) and advances the walk as each
//! reference completes. EAF can abort an in-flight walk to release the
//! walker and buffer resources early.

use crate::addr::{PhysAddr, Vpn};
use crate::checkpoint::{CkptError, Reader, Writer};
use crate::config::{Cycle, WalkerConfig};
use crate::page_table::PageTable;
use std::collections::VecDeque;

/// A queued walk request: the page plus the number of radix levels the
/// walk must reference (captured at enqueue; 4 for a 4KB leaf, 3 for a
/// promoted 2MB leaf).
#[derive(Debug, Clone, Copy)]
struct QueuedWalk {
    id: WalkId,
    vpn: Vpn,
    levels: usize,
    enqueued: Cycle,
}

/// Identifier of an in-flight walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkId(pub u64);

/// Progress report after a walk memory reference completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkProgress {
    /// The walk needs another page-structure reference at this address.
    Access(PhysAddr),
    /// The walk has reached the leaf PTE; translation can be resolved.
    Done,
}

/// An in-flight walk, flattened to fixed-width fields: the level cursor
/// replaces the seed's per-walk `VecDeque<usize>` (levels advance strictly
/// in order, so a counter suffices — no per-walk heap allocation).
#[derive(Debug, Clone, Copy)]
struct ActiveWalk {
    id: WalkId,
    vpn: Vpn,
    /// Level currently being referenced.
    level: u8,
    /// Total levels in this walk (for prefix insertion on completion).
    levels: u8,
    started_at: Cycle,
}

/// An LRU cache of page-structure pointer entries, keyed (level, prefix).
///
/// Keys are packed into one word (`prefix << 2 | level`; levels fit in two
/// bits, prefixes stay far below 2^62), so the scan compares a flat `u64`
/// array instead of tuples.
#[derive(Debug, Clone)]
pub struct PwCache {
    capacity: usize,
    entries: Vec<(u64, u64)>,
    stamp: u64,
}

#[inline]
fn pw_key(level: usize, prefix: u64) -> u64 {
    debug_assert!(level < 4);
    (prefix << 2) | level as u64
}

impl PwCache {
    /// Creates a cache with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: Vec::with_capacity(capacity), stamp: 0 }
    }

    /// Whether (level, prefix) is cached; touches LRU on hit.
    pub fn contains(&mut self, level: usize, prefix: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let key = pw_key(level, prefix);
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = stamp;
            true
        } else {
            false
        }
    }

    /// Inserts (level, prefix), evicting LRU at capacity.
    pub fn insert(&mut self, level: usize, prefix: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let key = pw_key(level, prefix);
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = stamp;
            return;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((key, stamp));
    }

    /// Drops every entry (full shootdown).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the cache's entries in insertion order plus the LRU
    /// clock (capacity is configuration-derived).
    // lint:exempt(checkpoint-field-parity: capacity is construction-time geometry; load_state reads it only to reject streams larger than the live cache)
    pub fn save_state(&self, w: &mut Writer) {
        w.usize(self.entries.len());
        for &(k, t) in &self.entries {
            w.u64(k);
            w.u64(t);
        }
        w.u64(self.stamp);
    }

    /// Restores state saved by [`PwCache::save_state`].
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let n = r.seq_len()?;
        if n > self.capacity {
            return Err(CkptError::Corrupt("page-walk cache entry count exceeds capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            let k = r.u64()?;
            let t = r.u64()?;
            self.entries.push((k, t));
        }
        self.stamp = r.u64()?;
        Ok(())
    }

    /// Asserts cache consistency: within capacity, unique keys, no LRU
    /// stamp ahead of the global counter.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        assert!(self.entries.len() <= self.capacity, "pw cache over capacity");
        for (i, &(k, t)) in self.entries.iter().enumerate() {
            assert!(t <= self.stamp, "pw cache stamp {t} ahead of global {}", self.stamp);
            assert!(
                !self.entries[..i].iter().any(|&(k2, _)| k2 == k),
                "pw cache key {k} present twice"
            );
        }
    }
}

/// The page-walk system: finite walkers fed from a finite walk buffer.
///
/// Active walks live in a small flat vector (there are at most
/// `cfg.walkers` ≈ 16): a linear id scan beats hashing at this size and
/// keeps the per-walk state in two cache lines.
#[derive(Debug)]
pub struct PageWalkSystem {
    cfg: WalkerConfig,
    pw_cache: PwCache,
    queue: VecDeque<QueuedWalk>,
    active: Vec<ActiveWalk>,
    next_id: u64,
}

impl PageWalkSystem {
    /// Creates the system from configuration.
    pub fn new(cfg: WalkerConfig) -> Self {
        let pw_cache = PwCache::new(cfg.pw_cache_entries);
        let active = Vec::with_capacity(cfg.walkers);
        Self { cfg, pw_cache, queue: VecDeque::new(), active, next_id: 0 }
    }

    /// Whether the walk buffer can accept another request.
    pub fn has_buffer_space(&self) -> bool {
        self.queue.len() + self.active.len() < self.cfg.buffer_entries
    }

    /// Whether a walker is idle.
    pub fn has_free_walker(&self) -> bool {
        self.active.len() < self.cfg.walkers
    }

    /// Enqueues a walk request for a walk of `levels` radix levels;
    /// `None` if the buffer is full.
    pub fn enqueue(&mut self, vpn: Vpn, levels: usize, now: Cycle) -> Option<WalkId> {
        if !self.has_buffer_space() {
            return None;
        }
        let id = WalkId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedWalk { id, vpn, levels, enqueued: now });
        Some(id)
    }

    /// Dispatches one queued walk onto a free walker, consulting the
    /// page-walk cache to skip already-cached upper levels.
    ///
    /// Returns the walk id and its first memory reference. Every walk
    /// performs at least the leaf PTE reference.
    pub fn dispatch(&mut self) -> Option<(WalkId, PhysAddr)> {
        if !self.has_free_walker() {
            return None;
        }
        let QueuedWalk { id, vpn, levels, enqueued: started_at } = self.queue.pop_front()?;
        // Deepest cached pointer level (pointers are levels 0..levels-1).
        let mut start = 0;
        for level in (0..levels - 1).rev() {
            if self.pw_cache.contains(level, PageTable::prefix(vpn, level)) {
                start = level + 1;
                break;
            }
        }
        let addr = PageTable::entry_address(vpn, start);
        self.active.push(ActiveWalk {
            id,
            vpn,
            level: start as u8,
            levels: levels as u8,
            started_at,
        });
        Some((id, addr))
    }

    /// Advances a walk after its current memory reference completed.
    ///
    /// On `Done` the walk is retired: its pointer prefixes enter the PW
    /// cache and the walker frees. Returns `None` for unknown (e.g.
    /// aborted) walks.
    pub fn step(&mut self, id: WalkId) -> Option<WalkProgress> {
        let i = self.active.iter().position(|w| w.id == id)?;
        let walk = &mut self.active[i];
        walk.level += 1;
        if walk.level < walk.levels {
            let addr = PageTable::entry_address(walk.vpn, walk.level as usize);
            return Some(WalkProgress::Access(addr));
        }
        let walk = self.active.swap_remove(i);
        for level in 0..walk.levels as usize - 1 {
            self.pw_cache.insert(level, PageTable::prefix(walk.vpn, level));
        }
        Some(WalkProgress::Done)
    }

    /// The VPN of a live (queued or active) walk.
    pub fn vpn_of(&self, id: WalkId) -> Option<Vpn> {
        if let Some(w) = self.active.iter().find(|w| w.id == id) {
            return Some(w.vpn);
        }
        self.queue.iter().find(|q| q.id == id).map(|q| q.vpn)
    }

    /// Start cycle of a live walk (for latency stats).
    pub fn started_at(&self, id: WalkId) -> Option<Cycle> {
        self.active.iter().find(|w| w.id == id).map(|w| w.started_at)
    }

    /// Aborts a walk (EAF early release). Returns `true` if it was live.
    ///
    /// Queued entries are removed from the buffer; active walks free their
    /// walker immediately — subsequent [`step`](Self::step) calls for the
    /// id are ignored by returning `None`.
    pub fn abort(&mut self, id: WalkId) -> bool {
        if let Some(i) = self.active.iter().position(|w| w.id == id) {
            self.active.swap_remove(i);
            return true;
        }
        let before = self.queue.len();
        self.queue.retain(|q| q.id != id);
        before != self.queue.len()
    }

    /// Flushes the page-walk cache (shootdown of page-structure entries).
    pub fn flush_pw_cache(&mut self) {
        self.pw_cache.flush();
    }

    /// Queued (not yet dispatched) walks.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Active (dispatched) walks.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Access to the page-walk cache (tests, stats).
    pub fn pw_cache(&self) -> &PwCache {
        &self.pw_cache
    }

    /// Ids of every live (queued or active) walk, queued first. Checked
    /// mode cross-checks these against the engine's walk-to-VPN maps.
    pub fn pending_walk_ids(&self) -> impl Iterator<Item = WalkId> + '_ {
        self.queue.iter().map(|q| q.id).chain(self.active.iter().map(|w| w.id))
    }

    /// Serializes the walk system's mutable state: the queued and active
    /// walks, the id allocation cursor, and the page-walk cache.
    // lint:exempt(checkpoint-field-parity: cfg is fixed at construction; load_state reads it only to validate stream compatibility with the live walker configuration)
    pub fn save_state(&self, w: &mut Writer) {
        w.usize(self.queue.len());
        for q in &self.queue {
            w.u64(q.id.0);
            w.u64(q.vpn.0);
            w.usize(q.levels);
            w.u64(q.enqueued);
        }
        w.usize(self.active.len());
        for a in &self.active {
            w.u64(a.id.0);
            w.u64(a.vpn.0);
            w.u8(a.level);
            w.u8(a.levels);
            w.u64(a.started_at);
        }
        w.u64(self.next_id);
        self.pw_cache.save_state(w);
    }

    /// Restores state saved by [`PageWalkSystem::save_state`]. Walker and
    /// buffer limits are configuration-derived; exceeding them is
    /// corruption.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let nq = r.seq_len()?;
        self.queue.clear();
        for _ in 0..nq {
            let id = WalkId(r.u64()?);
            let vpn = Vpn(r.u64()?);
            let levels = r.usize()?;
            let enqueued = r.u64()?;
            self.queue.push_back(QueuedWalk { id, vpn, levels, enqueued });
        }
        let na = r.seq_len()?;
        if na > self.cfg.walkers {
            return Err(CkptError::Corrupt("active walk count exceeds walker limit"));
        }
        if nq + na > self.cfg.buffer_entries {
            return Err(CkptError::Corrupt("live walk count exceeds walk buffer"));
        }
        self.active.clear();
        for _ in 0..na {
            let id = WalkId(r.u64()?);
            let vpn = Vpn(r.u64()?);
            let level = r.u8()?;
            let levels = r.u8()?;
            let started_at = r.u64()?;
            if level >= levels {
                return Err(CkptError::Corrupt("active walk level cursor past its last level"));
            }
            self.active.push(ActiveWalk { id, vpn, level, levels, started_at });
        }
        self.next_id = r.u64()?;
        if self.pending_walk_ids().any(|id| id.0 >= self.next_id) {
            return Err(CkptError::Corrupt("live walk id at or past the allocation cursor"));
        }
        self.pw_cache.load_state(r)
    }

    /// Asserts system consistency: walker and buffer limits respected,
    /// every live walk id unique and below the allocation cursor, every
    /// active walk's level cursor inside its walk, and the page-walk
    /// cache internally consistent. Read-only; called periodically by the
    /// engine in checked (`invariants` feature) builds.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn audit_invariants(&self) {
        assert!(
            self.active.len() <= self.cfg.walkers,
            "{} active walks exceed {} walkers",
            self.active.len(),
            self.cfg.walkers
        );
        assert!(
            self.queue.len() + self.active.len() <= self.cfg.buffer_entries,
            "walk buffer over capacity: {} queued + {} active > {}",
            self.queue.len(),
            self.active.len(),
            self.cfg.buffer_entries
        );
        let ids: Vec<WalkId> = self.pending_walk_ids().collect();
        for (i, id) in ids.iter().enumerate() {
            assert!(id.0 < self.next_id, "walk id {} from the future", id.0);
            assert!(!ids[..i].contains(id), "walk id {} live twice", id.0);
        }
        for w in &self.active {
            assert!(
                (w.level as usize) < w.levels as usize,
                "active walk {} past its last level",
                w.id.0
            );
        }
        self.pw_cache.audit_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ppn;
    use crate::config::GpuConfig;

    fn system() -> PageWalkSystem {
        PageWalkSystem::new(GpuConfig::default().walker)
    }

    fn mapped_pt(vpn: u64) -> PageTable {
        let mut pt = PageTable::new();
        pt.map_page(Vpn(vpn), Ppn(vpn + 1000));
        pt
    }

    fn enqueue_for(ws: &mut PageWalkSystem, pt: &PageTable, vpn: Vpn) -> WalkId {
        ws.enqueue(vpn, pt.walk_levels(vpn), 0).expect("buffer space")
    }

    fn drive_to_completion(ws: &mut PageWalkSystem, id: WalkId) -> usize {
        let mut accesses = 1; // the dispatch access
        loop {
            match ws.step(id).expect("walk live") {
                WalkProgress::Access(_) => accesses += 1,
                WalkProgress::Done => return accesses,
            }
        }
    }

    #[test]
    fn cold_walk_references_four_levels() {
        let mut ws = system();
        let pt = mapped_pt(42);
        let id = enqueue_for(&mut ws, &pt, Vpn(42));
        let (id2, _first) = ws.dispatch().unwrap();
        assert_eq!(id, id2);
        assert_eq!(drive_to_completion(&mut ws, id), 4);
        assert_eq!(ws.active(), 0);
    }

    #[test]
    fn warm_pw_cache_shortens_walk() {
        let mut ws = system();
        let pt = mapped_pt(42);
        let id = enqueue_for(&mut ws, &pt, Vpn(42));
        ws.dispatch();
        drive_to_completion(&mut ws, id);
        // Neighbouring page shares all pointer levels: only the leaf ref.
        let id2 = enqueue_for(&mut ws, &pt, Vpn(43));
        ws.dispatch();
        assert_eq!(drive_to_completion(&mut ws, id2), 1);
    }

    #[test]
    fn promoted_chunk_walks_three_levels() {
        let mut ws = system();
        let mut pt = PageTable::new();
        pt.promote_chunk(5, Ppn(0));
        let vpn = Vpn(5 * crate::addr::PAGES_PER_CHUNK);
        let id = enqueue_for(&mut ws, &pt, vpn);
        ws.dispatch();
        assert_eq!(drive_to_completion(&mut ws, id), 3);
    }

    #[test]
    fn walker_limit_respected() {
        let mut cfg = GpuConfig::default().walker;
        cfg.walkers = 2;
        let mut ws = PageWalkSystem::new(cfg);
        let _pt = mapped_pt(1);
        for v in 0..3 {
            ws.enqueue(Vpn(1000 + v), 4, 0).unwrap();
        }
        assert!(ws.dispatch().is_some());
        assert!(ws.dispatch().is_some());
        assert!(ws.dispatch().is_none(), "third walk must wait for a walker");
        assert_eq!(ws.queued(), 1);
    }

    #[test]
    fn buffer_capacity_respected() {
        let mut cfg = GpuConfig::default().walker;
        cfg.buffer_entries = 2;
        let mut ws = PageWalkSystem::new(cfg);
        assert!(ws.enqueue(Vpn(1), 4, 0).is_some());
        assert!(ws.enqueue(Vpn(2), 4, 0).is_some());
        assert!(ws.enqueue(Vpn(3), 4, 0).is_none());
    }

    #[test]
    fn abort_frees_walker_and_ignores_steps() {
        let mut ws = system();
        let pt = mapped_pt(7);
        let id = enqueue_for(&mut ws, &pt, Vpn(7));
        ws.dispatch();
        assert_eq!(ws.active(), 1);
        assert!(ws.abort(id));
        assert_eq!(ws.active(), 0);
        assert_eq!(ws.step(id), None);
    }

    #[test]
    fn abort_queued_walk() {
        let mut ws = system();
        let id = ws.enqueue(Vpn(9), 4, 0).unwrap();
        assert!(ws.abort(id));
        assert_eq!(ws.queued(), 0);
        assert!(!ws.abort(id));
    }

    #[test]
    fn pw_cache_lru_eviction() {
        let mut c = PwCache::new(2);
        c.insert(0, 1);
        c.insert(0, 2);
        assert!(c.contains(0, 1)); // touch 1
        c.insert(0, 3);
        assert!(c.contains(0, 1));
        assert!(!c.contains(0, 2));
        assert!(c.contains(0, 3));
    }

    #[test]
    fn pw_cache_flush() {
        let mut c = PwCache::new(4);
        c.insert(1, 1);
        c.flush();
        assert!(c.is_empty());
    }
}
